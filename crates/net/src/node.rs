//! Node identifiers and key hashing for the DHT key space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit identifier in the DHT key space.
///
/// Both overlay nodes and stored keys (epoch numbers, transaction
/// identifiers) are mapped into the same space; a key is owned by the node
/// whose identifier is its clockwise successor on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u128);

impl NodeId {
    /// Number of hexadecimal digits in an identifier (used by prefix
    /// routing).
    pub const DIGITS: usize = 32;

    /// Derives a node identifier from an arbitrary byte string, using a
    /// SplitMix64-based hash expanded to 128 bits. The construction is
    /// deterministic so simulations are reproducible.
    pub fn hash_bytes(bytes: &[u8]) -> NodeId {
        let mut h1: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut h2: u64 = 0xD1B5_4A32_D192_ED03;
        for &b in bytes {
            h1 = splitmix64(h1 ^ u64::from(b));
            h2 = splitmix64(h2.rotate_left(7) ^ u64::from(b).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
        }
        NodeId(((h1 as u128) << 64) | (h2 as u128))
    }

    /// Derives a node identifier from a string key.
    pub fn hash_str(key: &str) -> NodeId {
        NodeId::hash_bytes(key.as_bytes())
    }

    /// Derives a node identifier from a 64-bit value (e.g. an epoch number).
    pub fn hash_u64(value: u64) -> NodeId {
        NodeId::hash_bytes(&value.to_le_bytes())
    }

    /// The hexadecimal digit at position `i` (0 is the most significant).
    pub fn digit(&self, i: usize) -> u8 {
        debug_assert!(i < Self::DIGITS);
        ((self.0 >> ((Self::DIGITS - 1 - i) * 4)) & 0xF) as u8
    }

    /// Length of the shared hexadecimal prefix between two identifiers.
    pub fn shared_prefix_len(&self, other: &NodeId) -> usize {
        for i in 0..Self::DIGITS {
            if self.digit(i) != other.digit(i) {
                return i;
            }
        }
        Self::DIGITS
    }

    /// Ring distance from `self` clockwise to `other`.
    pub fn distance_to(&self, other: &NodeId) -> u128 {
        other.0.wrapping_sub(self.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hashing_is_deterministic_and_spread_out() {
        assert_eq!(NodeId::hash_str("peer-1"), NodeId::hash_str("peer-1"));
        assert_ne!(NodeId::hash_str("peer-1"), NodeId::hash_str("peer-2"));
        assert_ne!(NodeId::hash_u64(1), NodeId::hash_u64(2));

        // No collisions over a reasonable key population.
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(NodeId::hash_u64(i)));
        }
    }

    #[test]
    fn digits_and_prefixes() {
        let id = NodeId(0xABCD_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(id.digit(0), 0xA);
        assert_eq!(id.digit(1), 0xB);
        assert_eq!(id.digit(2), 0xC);
        assert_eq!(id.digit(3), 0xD);
        assert_eq!(id.digit(4), 0x0);

        let other = NodeId(0xABCE_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(id.shared_prefix_len(&other), 3);
        assert_eq!(id.shared_prefix_len(&id), NodeId::DIGITS);
        let far = NodeId(0x1000_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(id.shared_prefix_len(&far), 0);
    }

    #[test]
    fn ring_distance_wraps() {
        let a = NodeId(10);
        let b = NodeId(3);
        assert_eq!(a.distance_to(&NodeId(15)), 5);
        // Wrapping distance goes the long way around.
        assert_eq!(a.distance_to(&b), u128::MAX - 6);
        assert_eq!(a.distance_to(&a), 0);
    }

    #[test]
    fn display_is_32_hex_digits() {
        let s = NodeId::hash_str("x").to_string();
        assert_eq!(s.len(), 32);
    }
}
