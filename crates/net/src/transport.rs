//! The transport seam under the framed service protocol.
//!
//! [`Transport`] is the narrow interface a store service (or a client stub)
//! uses to move one framed message between two endpoints and to observe the
//! cumulative traffic it generated. The simulated network implements it by
//! charging virtual latency and byte counters; a real deployment would
//! implement it over sockets. Keeping the seam this small means the service
//! and its wire protocol ([`orchestra-store`'s `protocol` module]) never
//! depend on how frames physically travel — only on the fact that sending a
//! frame has a cost.
//!
//! Frames themselves are delivered out of band (in the simulator, through
//! in-process channels; over sockets, as the encoded payload): `send_frame`
//! accounts for the transmission, it does not carry the bytes.

use crate::node::NodeId;
use crate::simnet::{NetworkStats, SimNetwork};

/// Moves framed messages between endpoints and meters the traffic.
///
/// Implementations must be cheap to call from many concurrent sessions
/// (interior-mutable accounting), mirroring [`SimNetwork`].
pub trait Transport {
    /// Charges one framed message of `bytes` bytes travelling directly from
    /// `from` to `to`.
    fn send_frame(&self, from: NodeId, to: NodeId, bytes: u64);

    /// Cumulative traffic statistics accumulated so far.
    fn stats(&self) -> NetworkStats;
}

impl Transport for SimNetwork {
    fn send_frame(&self, from: NodeId, to: NodeId, bytes: u64) {
        self.send_direct(from, to, bytes);
    }

    fn stats(&self) -> NetworkStats {
        SimNetwork::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simnet_implements_the_transport_seam() {
        let nodes: Vec<NodeId> = (0..2).map(NodeId::hash_u64).collect();
        let net = SimNetwork::new(nodes.clone());
        let transport: &dyn Transport = &net;
        transport.send_frame(nodes[0], nodes[1], 128);
        let stats = transport.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 128);
        // A frame is a direct message: exactly one hop of latency.
        assert_eq!(stats.latency_us, SimNetwork::PAPER_LATENCY_US);
    }

    #[test]
    fn transport_objects_can_be_shared() {
        use std::rc::Rc;
        let nodes: Vec<NodeId> = (0..2).map(NodeId::hash_u64).collect();
        let net = Rc::new(SimNetwork::new(nodes.clone()));
        let transport: Rc<dyn Transport> = net.clone();
        transport.send_frame(nodes[1], nodes[0], 7);
        // The concrete handle observes traffic charged through the trait
        // object — it is the same network.
        assert_eq!(net.stats().bytes, 7);
        assert_eq!(net.link_traffic_for(nodes[1], nodes[0]).bytes, 7);
    }
}
