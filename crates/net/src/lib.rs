//! Deterministic simulated network and Pastry-style DHT overlay.
//!
//! The paper's distributed update store is built on FreePastry; its
//! experiments run all nodes on one machine with a delay of at least 500 µs
//! added to every message and reply. This crate is the substitute substrate:
//!
//! * [`NodeId`] — 128-bit identifiers in the DHT key space, plus key hashing.
//! * [`Ring`] — overlay membership with successor lookup and Pastry-style
//!   prefix routing (hex digits, routing table + leaf-set fallback), so the
//!   number of overlay hops grows logarithmically with the number of nodes.
//! * [`SimNetwork`] — a virtual-time network that charges a configurable
//!   latency per message hop and counts messages, so a store built on it can
//!   report the communication component of reconciliation time exactly the
//!   way the paper's Figures 10 and 12 do.
//! * [`Transport`] — the seam under the framed service protocol: one method
//!   to charge a framed message between two endpoints, implemented by
//!   [`SimNetwork`] today and by real sockets later.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod node;
pub mod ring;
pub mod simnet;
pub mod transport;

pub use node::NodeId;
pub use ring::{Ring, RoutePath};
pub use simnet::{LinkTraffic, NetworkStats, PeerTraffic, SimNetwork};
pub use transport::Transport;
