//! Virtual-time network simulation: per-message latency charging and
//! message/byte accounting.

use crate::node::NodeId;
use crate::ring::Ring;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Cumulative statistics of a simulated network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of application-level messages sent (requests and replies).
    pub messages: u64,
    /// Number of overlay hops traversed by those messages.
    pub hops: u64,
    /// Approximate bytes transferred (as reported by callers).
    pub bytes: u64,
    /// Total virtual latency accumulated, in microseconds.
    pub latency_us: u64,
}

impl NetworkStats {
    /// The accumulated virtual latency as a [`Duration`].
    pub fn latency(&self) -> Duration {
        Duration::from_micros(self.latency_us)
    }
}

/// A deterministic virtual-time network over a DHT overlay.
///
/// Every message charged through the network adds `latency_per_message` per
/// overlay hop to the virtual clock, mirroring the paper's setup where every
/// message (and reply) transmission is delayed by at least 500 µs. Replies are
/// modelled as direct (single-hop) messages, as in Pastry, where the reply is
/// sent straight back to the requester.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimNetwork {
    ring: Ring,
    latency_per_message_us: u64,
    stats: NetworkStats,
}

impl SimNetwork {
    /// The latency used by the paper's experimental setup (500 µs).
    pub const PAPER_LATENCY_US: u64 = 500;

    /// Creates a simulated network over the given overlay members with the
    /// paper's 500 µs per-message latency.
    pub fn new(members: Vec<NodeId>) -> SimNetwork {
        SimNetwork::with_latency(members, Duration::from_micros(Self::PAPER_LATENCY_US))
    }

    /// Creates a simulated network with a custom per-message latency.
    pub fn with_latency(members: Vec<NodeId>, latency: Duration) -> SimNetwork {
        SimNetwork {
            ring: Ring::new(members),
            latency_per_message_us: latency.as_micros() as u64,
            stats: NetworkStats::default(),
        }
    }

    /// The overlay.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Adds a node to the overlay.
    pub fn join(&mut self, node: NodeId) {
        self.ring.join(node);
    }

    /// The per-message latency.
    pub fn latency_per_message(&self) -> Duration {
        Duration::from_micros(self.latency_per_message_us)
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Resets the statistics (e.g. between measured reconciliations).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
    }

    /// Charges a request routed from `from` to the owner of `key`, returning
    /// the owner. Each overlay hop counts as one message transmission.
    pub fn send_to_key(&mut self, from: NodeId, key: NodeId, bytes: u64) -> Option<NodeId> {
        let path = self.ring.route(from, key)?;
        let hops = path.hop_count() as u64;
        self.stats.messages += 1;
        self.stats.hops += hops;
        self.stats.bytes += bytes;
        self.stats.latency_us += hops * self.latency_per_message_us;
        path.destination()
    }

    /// Charges a direct (single-hop) message from one node to another, e.g. a
    /// reply to a request.
    pub fn send_direct(&mut self, _from: NodeId, _to: NodeId, bytes: u64) {
        self.stats.messages += 1;
        self.stats.hops += 1;
        self.stats.bytes += bytes;
        self.stats.latency_us += self.latency_per_message_us;
    }

    /// Charges a request/reply round trip: a routed request to the owner of
    /// `key` followed by a direct reply. Returns the owner.
    pub fn round_trip(
        &mut self,
        from: NodeId,
        key: NodeId,
        request_bytes: u64,
        reply_bytes: u64,
    ) -> Option<NodeId> {
        let owner = self.send_to_key(from, key, request_bytes)?;
        self.send_direct(owner, from, reply_bytes);
        Some(owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: usize) -> SimNetwork {
        SimNetwork::new((0..n).map(|i| NodeId::hash_str(&format!("node-{i}"))).collect())
    }

    #[test]
    fn default_latency_matches_the_paper() {
        let net = network(4);
        assert_eq!(net.latency_per_message(), Duration::from_micros(500));
    }

    #[test]
    fn sending_accumulates_stats() {
        let mut net = network(8);
        let from = net.ring().members()[0];
        let owner = net.send_to_key(from, NodeId::hash_u64(7), 100).unwrap();
        assert_eq!(Some(owner), net.ring().owner_of(NodeId::hash_u64(7)));
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert!(stats.hops >= 1);
        assert_eq!(stats.bytes, 100);
        assert_eq!(stats.latency_us, stats.hops * 500);
    }

    #[test]
    fn round_trip_counts_request_and_reply() {
        let mut net = network(8);
        let from = net.ring().members()[0];
        net.round_trip(from, NodeId::hash_u64(9), 64, 256).unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages, 2);
        assert!(stats.hops >= 2);
        assert_eq!(stats.bytes, 320);
        assert!(stats.latency().as_micros() as u64 == stats.latency_us);
    }

    #[test]
    fn reset_clears_stats() {
        let mut net = network(4);
        let from = net.ring().members()[0];
        net.round_trip(from, NodeId::hash_u64(1), 1, 1);
        assert!(net.stats().messages > 0);
        net.reset_stats();
        assert_eq!(net.stats(), NetworkStats::default());
    }

    #[test]
    fn custom_latency_is_charged() {
        let mut net = SimNetwork::with_latency(
            (0..4).map(NodeId::hash_u64).collect(),
            Duration::from_millis(2),
        );
        let from = net.ring().members()[0];
        net.send_direct(from, net.ring().members()[1], 10);
        assert_eq!(net.stats().latency_us, 2_000);
    }

    #[test]
    fn join_extends_the_overlay() {
        let mut net = network(2);
        assert_eq!(net.ring().len(), 2);
        net.join(NodeId::hash_str("late-joiner"));
        assert_eq!(net.ring().len(), 3);
    }
}
