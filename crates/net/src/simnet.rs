//! Virtual-time network simulation: per-message latency charging and
//! message/byte accounting.
//!
//! Accounting is interior-mutable: every charge method takes `&self` and
//! updates atomics, so many concurrent service sessions can charge traffic
//! through one shared network without a global lock. Per-peer counters live
//! behind an `RwLock`ed map that is only write-locked the first time a peer
//! is seen; the hot path takes the read lock and bumps atomics.

use crate::node::NodeId;
use crate::ring::Ring;
use orchestra_obs::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

/// Cumulative statistics of a simulated network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of application-level messages sent (requests and replies).
    pub messages: u64,
    /// Number of overlay hops traversed by those messages.
    pub hops: u64,
    /// Approximate bytes transferred (as reported by callers).
    pub bytes: u64,
    /// Total virtual latency accumulated, in microseconds.
    pub latency_us: u64,
}

impl NetworkStats {
    /// The accumulated virtual latency as a [`Duration`].
    pub fn latency(&self) -> Duration {
        Duration::from_micros(self.latency_us)
    }
}

/// Per-peer traffic counters, as returned by [`SimNetwork::peer_traffic`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerTraffic {
    /// Messages this peer originated.
    pub sent: u64,
    /// Messages delivered to this peer.
    pub received: u64,
    /// Bytes this peer originated.
    pub bytes_out: u64,
    /// Bytes delivered to this peer.
    pub bytes_in: u64,
}

/// Per-link traffic counters for one directed `(from, to)` endpoint pair, as
/// returned by [`SimNetwork::link_traffic`].
///
/// [`PeerTraffic`] aggregates everything a node sent or received regardless
/// of the other endpoint; per-link counters keep each directed pair separate,
/// which is what a sharded deployment needs to report traffic *skew* (how
/// unevenly clients load each shard server).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTraffic {
    /// Messages sent from the link's source to its destination.
    pub messages: u64,
    /// Bytes sent from the link's source to its destination.
    pub bytes: u64,
}

/// Atomic counterpart of [`NetworkStats`], backed by `orchestra-obs`
/// counters — either detached (the default) or, via
/// [`SimNetwork::with_observability`], the shared cells a
/// [`MetricsRegistry`] snapshots under `net.*` keys. A per-instance
/// baseline keeps [`SimNetwork::stats`] / [`SimNetwork::reset_stats`]
/// scoped to this network while the registry keeps cumulative totals.
#[derive(Debug, Default)]
struct AtomicStats {
    messages: Counter,
    hops: Counter,
    bytes: Counter,
    latency_us: Counter,
    base: Mutex<NetworkStats>,
}

impl AtomicStats {
    fn resolved(registry: &MetricsRegistry) -> AtomicStats {
        let stats = AtomicStats {
            messages: registry.counter("net.messages"),
            hops: registry.counter("net.hops"),
            bytes: registry.counter("net.bytes"),
            latency_us: registry.counter("net.latency_us"),
            base: Mutex::new(NetworkStats::default()),
        };
        // The registry cells may already carry traffic from earlier
        // networks; start this instance's view at zero.
        let raw = stats.raw();
        *stats.base.lock().expect("stats base lock") = raw;
        stats
    }

    fn raw(&self) -> NetworkStats {
        NetworkStats {
            messages: self.messages.get(),
            hops: self.hops.get(),
            bytes: self.bytes.get(),
            latency_us: self.latency_us.get(),
        }
    }

    fn snapshot(&self) -> NetworkStats {
        let raw = self.raw();
        let base = *self.base.lock().expect("stats base lock");
        NetworkStats {
            messages: raw.messages.saturating_sub(base.messages),
            hops: raw.hops.saturating_sub(base.hops),
            bytes: raw.bytes.saturating_sub(base.bytes),
            latency_us: raw.latency_us.saturating_sub(base.latency_us),
        }
    }

    fn reset(&self) {
        let raw = self.raw();
        *self.base.lock().expect("stats base lock") = raw;
    }
}

/// Atomic counterpart of [`PeerTraffic`].
#[derive(Debug, Default)]
struct PeerCounters {
    sent: AtomicU64,
    received: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

impl PeerCounters {
    fn snapshot(&self) -> PeerTraffic {
        PeerTraffic {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
        }
    }
}

/// Atomic counterpart of [`LinkTraffic`].
#[derive(Debug, Default)]
struct LinkCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl LinkCounters {
    fn snapshot(&self) -> LinkTraffic {
        LinkTraffic {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A deterministic virtual-time network over a DHT overlay.
///
/// Every message charged through the network adds `latency_per_message` per
/// overlay hop to the virtual clock, mirroring the paper's setup where every
/// message (and reply) transmission is delayed by at least 500 µs. Replies are
/// modelled as direct (single-hop) messages, as in Pastry, where the reply is
/// sent straight back to the requester.
#[derive(Debug)]
pub struct SimNetwork {
    ring: Ring,
    latency_per_message_us: u64,
    stats: AtomicStats,
    peers: RwLock<BTreeMap<NodeId, PeerCounters>>,
    links: RwLock<BTreeMap<(NodeId, NodeId), LinkCounters>>,
}

impl SimNetwork {
    /// The latency used by the paper's experimental setup (500 µs).
    pub const PAPER_LATENCY_US: u64 = 500;

    /// Creates a simulated network over the given overlay members with the
    /// paper's 500 µs per-message latency.
    pub fn new(members: Vec<NodeId>) -> SimNetwork {
        SimNetwork::with_latency(members, Duration::from_micros(Self::PAPER_LATENCY_US))
    }

    /// Creates a simulated network with a custom per-message latency.
    pub fn with_latency(members: Vec<NodeId>, latency: Duration) -> SimNetwork {
        SimNetwork {
            ring: Ring::new(members),
            latency_per_message_us: latency.as_micros() as u64,
            stats: AtomicStats::default(),
            peers: RwLock::new(BTreeMap::new()),
            links: RwLock::new(BTreeMap::new()),
        }
    }

    /// Like [`SimNetwork::with_latency`], but aggregate traffic counters are
    /// the registry's `net.messages` / `net.hops` / `net.bytes` /
    /// `net.latency_us` cells, so the network reports into the shared
    /// metrics sink. [`SimNetwork::stats`] still reads only this instance's
    /// traffic (the registry keeps cumulative totals across networks).
    pub fn with_observability(
        members: Vec<NodeId>,
        latency: Duration,
        registry: &MetricsRegistry,
    ) -> SimNetwork {
        SimNetwork {
            ring: Ring::new(members),
            latency_per_message_us: latency.as_micros() as u64,
            stats: AtomicStats::resolved(registry),
            peers: RwLock::new(BTreeMap::new()),
            links: RwLock::new(BTreeMap::new()),
        }
    }

    /// The overlay.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Adds a node to the overlay.
    pub fn join(&mut self, node: NodeId) {
        self.ring.join(node);
    }

    /// The per-message latency.
    pub fn latency_per_message(&self) -> Duration {
        Duration::from_micros(self.latency_per_message_us)
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats.snapshot()
    }

    /// Per-peer traffic counters so far, keyed by peer identifier.
    pub fn peer_traffic(&self) -> BTreeMap<NodeId, PeerTraffic> {
        let peers = self.peers.read().expect("peer lock");
        peers.iter().map(|(node, counters)| (*node, counters.snapshot())).collect()
    }

    /// Traffic counters of a single peer (zero if the peer never moved a
    /// message).
    pub fn peer_traffic_for(&self, node: NodeId) -> PeerTraffic {
        let peers = self.peers.read().expect("peer lock");
        peers.get(&node).map(PeerCounters::snapshot).unwrap_or_default()
    }

    /// Per-link traffic counters so far, keyed by directed `(from, to)`
    /// endpoint pair.
    pub fn link_traffic(&self) -> BTreeMap<(NodeId, NodeId), LinkTraffic> {
        let links = self.links.read().expect("link lock");
        links.iter().map(|(link, counters)| (*link, counters.snapshot())).collect()
    }

    /// Traffic counters of a single directed link (zero if no message ever
    /// travelled from `from` to `to`).
    pub fn link_traffic_for(&self, from: NodeId, to: NodeId) -> LinkTraffic {
        let links = self.links.read().expect("link lock");
        links.get(&(from, to)).map(LinkCounters::snapshot).unwrap_or_default()
    }

    /// Resets the statistics (e.g. between measured reconciliations).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.peers.write().expect("peer lock").clear();
        self.links.write().expect("link lock").clear();
    }

    fn with_peer(&self, node: NodeId, f: impl Fn(&PeerCounters)) {
        {
            let peers = self.peers.read().expect("peer lock");
            if let Some(counters) = peers.get(&node) {
                f(counters);
                return;
            }
        }
        let mut peers = self.peers.write().expect("peer lock");
        f(peers.entry(node).or_default());
    }

    fn with_link(&self, from: NodeId, to: NodeId, f: impl Fn(&LinkCounters)) {
        {
            let links = self.links.read().expect("link lock");
            if let Some(counters) = links.get(&(from, to)) {
                f(counters);
                return;
            }
        }
        let mut links = self.links.write().expect("link lock");
        f(links.entry((from, to)).or_default());
    }

    fn charge(&self, from: NodeId, to: NodeId, hops: u64, bytes: u64) {
        self.stats.messages.inc();
        self.stats.hops.add(hops);
        self.stats.bytes.add(bytes);
        self.stats.latency_us.add(hops * self.latency_per_message_us);
        self.with_peer(from, |c| {
            c.sent.fetch_add(1, Ordering::Relaxed);
            c.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        });
        self.with_peer(to, |c| {
            c.received.fetch_add(1, Ordering::Relaxed);
            c.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        });
        self.with_link(from, to, |c| {
            c.messages.fetch_add(1, Ordering::Relaxed);
            c.bytes.fetch_add(bytes, Ordering::Relaxed);
        });
    }

    /// Charges a request routed from `from` to the owner of `key`, returning
    /// the owner. Each overlay hop counts as one message transmission.
    pub fn send_to_key(&self, from: NodeId, key: NodeId, bytes: u64) -> Option<NodeId> {
        let path = self.ring.route(from, key)?;
        let hops = path.hop_count() as u64;
        let destination = path.destination()?;
        self.charge(from, destination, hops, bytes);
        Some(destination)
    }

    /// Charges a direct (single-hop) message from one node to another, e.g. a
    /// reply to a request or a framed service request.
    pub fn send_direct(&self, from: NodeId, to: NodeId, bytes: u64) {
        self.charge(from, to, 1, bytes);
    }

    /// Charges a request/reply round trip: a routed request to the owner of
    /// `key` followed by a direct reply. Returns the owner.
    pub fn round_trip(
        &self,
        from: NodeId,
        key: NodeId,
        request_bytes: u64,
        reply_bytes: u64,
    ) -> Option<NodeId> {
        let owner = self.send_to_key(from, key, request_bytes)?;
        self.send_direct(owner, from, reply_bytes);
        Some(owner)
    }
}

impl Clone for SimNetwork {
    fn clone(&self) -> SimNetwork {
        // The clone gets detached counters seeded with this instance's
        // visible values: it keeps the numbers but stops reporting into any
        // registry the original was bound to (no double counting).
        let snap = self.stats.snapshot();
        let stats = AtomicStats::default();
        stats.messages.set(snap.messages);
        stats.hops.set(snap.hops);
        stats.bytes.set(snap.bytes);
        stats.latency_us.set(snap.latency_us);
        SimNetwork {
            ring: self.ring.clone(),
            latency_per_message_us: self.latency_per_message_us,
            stats,
            peers: RwLock::new(
                self.peers
                    .read()
                    .expect("peer lock")
                    .iter()
                    .map(|(node, counters)| {
                        let t = counters.snapshot();
                        (
                            *node,
                            PeerCounters {
                                sent: AtomicU64::new(t.sent),
                                received: AtomicU64::new(t.received),
                                bytes_out: AtomicU64::new(t.bytes_out),
                                bytes_in: AtomicU64::new(t.bytes_in),
                            },
                        )
                    })
                    .collect(),
            ),
            links: RwLock::new(
                self.links
                    .read()
                    .expect("link lock")
                    .iter()
                    .map(|(link, counters)| {
                        let t = counters.snapshot();
                        (
                            *link,
                            LinkCounters {
                                messages: AtomicU64::new(t.messages),
                                bytes: AtomicU64::new(t.bytes),
                            },
                        )
                    })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: usize) -> SimNetwork {
        SimNetwork::new((0..n).map(|i| NodeId::hash_str(&format!("node-{i}"))).collect())
    }

    #[test]
    fn default_latency_matches_the_paper() {
        let net = network(4);
        assert_eq!(net.latency_per_message(), Duration::from_micros(500));
    }

    #[test]
    fn sending_accumulates_stats() {
        let net = network(8);
        let from = net.ring().members()[0];
        let owner = net.send_to_key(from, NodeId::hash_u64(7), 100).unwrap();
        assert_eq!(Some(owner), net.ring().owner_of(NodeId::hash_u64(7)));
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert!(stats.hops >= 1);
        assert_eq!(stats.bytes, 100);
        assert_eq!(stats.latency_us, stats.hops * 500);
    }

    #[test]
    fn round_trip_counts_request_and_reply() {
        let net = network(8);
        let from = net.ring().members()[0];
        net.round_trip(from, NodeId::hash_u64(9), 64, 256).unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages, 2);
        assert!(stats.hops >= 2);
        assert_eq!(stats.bytes, 320);
        assert!(stats.latency().as_micros() as u64 == stats.latency_us);
    }

    #[test]
    fn reset_clears_stats() {
        let net = network(4);
        let from = net.ring().members()[0];
        net.round_trip(from, NodeId::hash_u64(1), 1, 1);
        assert!(net.stats().messages > 0);
        assert!(!net.peer_traffic().is_empty());
        net.reset_stats();
        assert_eq!(net.stats(), NetworkStats::default());
        assert!(net.peer_traffic().is_empty());
    }

    #[test]
    fn custom_latency_is_charged() {
        let net = SimNetwork::with_latency(
            (0..4).map(NodeId::hash_u64).collect(),
            Duration::from_millis(2),
        );
        let from = net.ring().members()[0];
        net.send_direct(from, net.ring().members()[1], 10);
        assert_eq!(net.stats().latency_us, 2_000);
    }

    #[test]
    fn join_extends_the_overlay() {
        let mut net = network(2);
        assert_eq!(net.ring().len(), 2);
        net.join(NodeId::hash_str("late-joiner"));
        assert_eq!(net.ring().len(), 3);
    }

    #[test]
    fn send_direct_records_both_peers() {
        let net = network(4);
        let a = net.ring().members()[0];
        let b = net.ring().members()[1];
        net.send_direct(a, b, 64);
        net.send_direct(a, b, 16);
        net.send_direct(b, a, 8);

        let from_a = net.peer_traffic_for(a);
        assert_eq!(from_a.sent, 2);
        assert_eq!(from_a.received, 1);
        assert_eq!(from_a.bytes_out, 80);
        assert_eq!(from_a.bytes_in, 8);

        let from_b = net.peer_traffic_for(b);
        assert_eq!(from_b.sent, 1);
        assert_eq!(from_b.received, 2);
        assert_eq!(from_b.bytes_out, 8);
        assert_eq!(from_b.bytes_in, 80);
    }

    #[test]
    fn link_counters_keep_directions_separate() {
        let net = network(4);
        let a = net.ring().members()[0];
        let b = net.ring().members()[1];
        let c = net.ring().members()[2];
        net.send_direct(a, b, 64);
        net.send_direct(a, b, 16);
        net.send_direct(b, a, 8);
        net.send_direct(a, c, 4);

        let ab = net.link_traffic_for(a, b);
        assert_eq!(ab.messages, 2);
        assert_eq!(ab.bytes, 80);
        let ba = net.link_traffic_for(b, a);
        assert_eq!(ba.messages, 1);
        assert_eq!(ba.bytes, 8);
        assert_eq!(net.link_traffic_for(a, c).bytes, 4);
        assert_eq!(net.link_traffic_for(c, a), LinkTraffic::default());

        // The link map partitions the peer aggregates: summing every link a
        // node originates reproduces its PeerTraffic sent counters.
        let links = net.link_traffic();
        let a_out: u64 = links.iter().filter(|((f, _), _)| *f == a).map(|(_, t)| t.bytes).sum();
        assert_eq!(a_out, net.peer_traffic_for(a).bytes_out);

        net.reset_stats();
        assert!(net.link_traffic().is_empty());
    }

    #[test]
    fn clone_preserves_link_counters() {
        let net = network(4);
        let a = net.ring().members()[0];
        let b = net.ring().members()[1];
        net.send_direct(a, b, 32);
        let copy = net.clone();
        net.send_direct(a, b, 32);
        assert_eq!(copy.link_traffic_for(a, b).messages, 1);
        assert_eq!(net.link_traffic_for(a, b).messages, 2);
    }

    #[test]
    fn routed_sends_credit_the_destination_peer() {
        let net = network(8);
        let from = net.ring().members()[0];
        let owner = net.send_to_key(from, NodeId::hash_u64(3), 32).unwrap();
        assert_eq!(net.peer_traffic_for(from).sent, 1);
        if owner != from {
            assert_eq!(net.peer_traffic_for(owner).received, 1);
        }
        let traffic = net.peer_traffic();
        let total_sent: u64 = traffic.values().map(|t| t.sent).sum();
        assert_eq!(total_sent, net.stats().messages);
    }

    #[test]
    fn registry_backed_networks_report_into_the_shared_sink() {
        let registry = MetricsRegistry::new();
        let members: Vec<NodeId> = (0..4).map(NodeId::hash_u64).collect();
        let net1 =
            SimNetwork::with_observability(members.clone(), Duration::from_micros(500), &registry);
        let a = net1.ring().members()[0];
        let b = net1.ring().members()[1];
        net1.send_direct(a, b, 10);
        net1.send_direct(a, b, 10);
        // A second network on the same registry starts its *view* at zero
        // while the registry keeps the cumulative total.
        let net2 = SimNetwork::with_observability(members, Duration::from_micros(500), &registry);
        assert_eq!(net2.stats(), NetworkStats::default());
        net2.send_direct(a, b, 5);
        assert_eq!(net1.stats().messages, 3, "net1 sees its cells move");
        assert_eq!(net2.stats().messages, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["net.messages"], 3);
        assert_eq!(snap.counters["net.bytes"], 25);
        // reset_stats rebaselines the view without clearing the registry.
        net2.reset_stats();
        assert_eq!(net2.stats(), NetworkStats::default());
        assert_eq!(registry.snapshot().counters["net.messages"], 3);
    }

    #[test]
    fn concurrent_sessions_charge_through_a_shared_reference() {
        let net = network(4);
        let a = net.ring().members()[0];
        let b = net.ring().members()[1];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        net.send_direct(a, b, 10);
                    }
                });
            }
        });
        let stats = net.stats();
        assert_eq!(stats.messages, 800);
        assert_eq!(stats.bytes, 8_000);
        assert_eq!(stats.latency_us, 800 * 500);
        assert_eq!(net.peer_traffic_for(a).sent, 800);
        assert_eq!(net.peer_traffic_for(b).received, 800);
    }
}
