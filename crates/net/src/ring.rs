//! DHT overlay membership, key ownership and Pastry-style prefix routing.

use crate::node::NodeId;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// The route a message takes through the overlay: the sequence of nodes
/// visited after the source, ending at the node that owns the key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutePath {
    /// Nodes visited, in order (the final element owns the key).
    pub hops: Vec<NodeId>,
}

impl RoutePath {
    /// Number of message transmissions required.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The destination node (owner of the routed key).
    pub fn destination(&self) -> Option<NodeId> {
        self.hops.last().copied()
    }
}

/// Per-node Pastry-style routing state: a routing table indexed by
/// (shared-prefix length, next digit) plus a leaf set of ring neighbours.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RoutingState {
    /// `table[row]` maps a hexadecimal digit to a node sharing `row` prefix
    /// digits with the owner and having that digit at position `row`.
    table: Vec<FxHashMap<u8, NodeId>>,
    /// Nearest ring neighbours (both directions).
    leaf_set: Vec<NodeId>,
}

/// The DHT overlay: the full membership, key ownership, and per-node routing
/// state built from that membership.
///
/// In a real deployment routing tables are maintained by join/maintenance
/// protocols; in this simulation they are derived from global knowledge,
/// which yields the same routing behaviour (O(log₁₆ N) hops) without
/// modelling churn, faithful to the paper's assumption of successful message
/// delivery and no failures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ring {
    members: Vec<NodeId>,
    routing: FxHashMap<NodeId, RoutingState>,
    leaf_set_size: usize,
}

impl Ring {
    /// Builds an overlay over the given members with the default leaf-set
    /// size of 8.
    pub fn new(members: Vec<NodeId>) -> Ring {
        Ring::with_leaf_set(members, 8)
    }

    /// Builds an overlay with a specific leaf-set size.
    pub fn with_leaf_set(mut members: Vec<NodeId>, leaf_set_size: usize) -> Ring {
        members.sort_unstable();
        members.dedup();
        let mut ring = Ring { members, routing: FxHashMap::default(), leaf_set_size };
        ring.rebuild_routing();
        ring
    }

    fn rebuild_routing(&mut self) {
        self.routing.clear();
        for &node in &self.members {
            let mut state = RoutingState {
                table: vec![FxHashMap::default(); NodeId::DIGITS],
                leaf_set: Vec::new(),
            };
            for &other in &self.members {
                if other == node {
                    continue;
                }
                let row = node.shared_prefix_len(&other);
                if row < NodeId::DIGITS {
                    let digit = other.digit(row);
                    state.table[row].entry(digit).or_insert(other);
                }
            }
            // Leaf set: nearest neighbours on either side in ring order.
            if self.members.len() > 1 {
                let idx = self.members.binary_search(&node).expect("member present");
                let n = self.members.len();
                let half = (self.leaf_set_size / 2).max(1);
                for off in 1..=half.min(n - 1) {
                    state.leaf_set.push(self.members[(idx + off) % n]);
                    state.leaf_set.push(self.members[(idx + n - off) % n]);
                }
                state.leaf_set.dedup();
            }
            self.routing.insert(node, state);
        }
    }

    /// The overlay members, in identifier order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns true if the overlay has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a member and rebuilds routing state.
    pub fn join(&mut self, node: NodeId) {
        if let Err(pos) = self.members.binary_search(&node) {
            self.members.insert(pos, node);
            self.rebuild_routing();
        }
    }

    /// The node that owns a key: the key's clockwise successor on the ring.
    pub fn owner_of(&self, key: NodeId) -> Option<NodeId> {
        if self.members.is_empty() {
            return None;
        }
        match self.members.binary_search(&key) {
            Ok(i) => Some(self.members[i]),
            Err(i) => Some(self.members[i % self.members.len()]),
        }
    }

    /// Routes from `from` towards the owner of `key`, Pastry-style: at each
    /// step prefer a routing-table entry sharing a strictly longer prefix
    /// with the key; otherwise move to the leaf-set/ring node numerically
    /// closest to the key. Returns the path of nodes visited after `from`.
    pub fn route(&self, from: NodeId, key: NodeId) -> Option<RoutePath> {
        let destination = self.owner_of(key)?;
        let mut hops = Vec::new();
        let mut current = from;
        // Bounded by the identifier length; in practice O(log16 N).
        for _ in 0..=NodeId::DIGITS {
            if current == destination {
                break;
            }
            let next = self.next_hop(current, key, destination);
            if next == current {
                break;
            }
            hops.push(next);
            current = next;
        }
        if current != destination {
            // Fall back to delivering directly (global knowledge); counts as
            // one more hop.
            hops.push(destination);
        }
        if hops.is_empty() {
            // Source already owns the key; still a local "delivery".
            hops.push(destination);
        }
        Some(RoutePath { hops })
    }

    fn next_hop(&self, current: NodeId, key: NodeId, destination: NodeId) -> NodeId {
        let Some(state) = self.routing.get(&current) else { return destination };
        let shared = current.shared_prefix_len(&key);
        if shared < NodeId::DIGITS {
            let wanted_digit = key.digit(shared);
            if let Some(&next) = state.table[shared].get(&wanted_digit) {
                return next;
            }
        }
        // Leaf-set fallback: the known node numerically closest to the key
        // that is strictly closer than the current node.
        let mut best = current;
        let mut best_dist = current.distance_to(&key).min(key.distance_to(&current));
        for &cand in state.leaf_set.iter().chain(std::iter::once(&destination)) {
            let dist = cand.distance_to(&key).min(key.distance_to(&cand));
            if dist < best_dist {
                best = cand;
                best_dist = dist;
            }
        }
        best
    }

    /// Number of hops a request from `from` to the owner of `key` takes.
    pub fn hop_count(&self, from: NodeId, key: NodeId) -> usize {
        self.route(from, key).map(|p| p.hop_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: usize) -> Ring {
        Ring::new((0..n).map(|i| NodeId::hash_str(&format!("node-{i}"))).collect())
    }

    #[test]
    fn ownership_is_successor_based() {
        let members = vec![NodeId(10), NodeId(20), NodeId(30)];
        let ring = Ring::new(members);
        assert_eq!(ring.owner_of(NodeId(5)), Some(NodeId(10)));
        assert_eq!(ring.owner_of(NodeId(10)), Some(NodeId(10)));
        assert_eq!(ring.owner_of(NodeId(11)), Some(NodeId(20)));
        assert_eq!(ring.owner_of(NodeId(25)), Some(NodeId(30)));
        // Wraps around past the largest member.
        assert_eq!(ring.owner_of(NodeId(31)), Some(NodeId(10)));
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(vec![]);
        assert!(ring.is_empty());
        assert_eq!(ring.owner_of(NodeId(1)), None);
        assert!(ring.route(NodeId(1), NodeId(2)).is_none());
    }

    #[test]
    fn join_keeps_members_sorted_and_deduplicated() {
        let mut ring = Ring::new(vec![NodeId(30), NodeId(10)]);
        ring.join(NodeId(20));
        ring.join(NodeId(20));
        assert_eq!(ring.members(), &[NodeId(10), NodeId(20), NodeId(30)]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn routing_terminates_at_the_owner() {
        let ring = ring_of(50);
        for i in 0..100u64 {
            let key = NodeId::hash_u64(i);
            let from = ring.members()[i as usize % ring.len()];
            let path = ring.route(from, key).unwrap();
            assert_eq!(path.destination(), ring.owner_of(key));
            assert!(path.hop_count() >= 1);
            assert!(path.hop_count() <= NodeId::DIGITS + 1);
        }
    }

    #[test]
    fn routing_hops_grow_slowly_with_membership() {
        // Average hop count over many keys should stay small (prefix routing
        // gives O(log16 N)); with 64 nodes it should comfortably stay below 5.
        let ring = ring_of(64);
        let total: usize = (0..200u64)
            .map(|i| ring.hop_count(ring.members()[i as usize % ring.len()], NodeId::hash_u64(i)))
            .sum();
        let avg = total as f64 / 200.0;
        assert!(avg < 5.0, "average hop count {avg} too high");
    }

    #[test]
    fn routing_from_owner_is_a_single_local_hop() {
        let ring = ring_of(10);
        let key = NodeId::hash_u64(42);
        let owner = ring.owner_of(key).unwrap();
        let path = ring.route(owner, key).unwrap();
        assert_eq!(path.hop_count(), 1);
        assert_eq!(path.destination(), Some(owner));
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = ring_of(1);
        let only = ring.members()[0];
        assert_eq!(ring.owner_of(NodeId::hash_u64(7)), Some(only));
        assert_eq!(ring.hop_count(only, NodeId::hash_u64(7)), 1);
    }
}
