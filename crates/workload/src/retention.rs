//! The long-horizon retention scenario: the churn schedule with periodic
//! convergence-horizon pruning, sampling the store's **live set** as history
//! grows.
//!
//! The live set is what a bounded-memory store actually has to hold: live
//! transaction-log entries plus live relevance-index entries. Under
//! [`RetentionPolicy::KeepAll`] both grow linearly with history; under
//! [`RetentionPolicy::ConvergedOnly`] the converged prefix is pruned down to
//! the pinned-ancestor set, so the live set tracks the size of the *data*
//! (live value lineage + undecided suffix), not the length of the history.
//! Decisions must be identical between the two policies — pruning is
//! decision-invariant by construction, and the benchmark gate
//! (`BENCH_churn_retention.json`) checks both that and the boundedness of
//! the `ConvergedOnly` live set.

use crate::crash::{fresh_system, make_generators, reconcile_one, step};
use crate::scenario::ChurnConfig;
use crate::ChurnTotals;
use orchestra::CdssSystem;
use orchestra_model::ParticipantId;
use orchestra_store::{CentralStore, RetentionPolicy};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of one retention run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetentionChurnConfig {
    /// The underlying churn schedule (participants, rounds, workload, seed).
    pub churn: ChurnConfig,
    /// The retention policy the store runs under.
    pub retention: RetentionPolicy,
    /// Call `prune_to_horizon` every this many rounds (0 = never; the
    /// final catch-up prune still runs unless the policy is `KeepAll`).
    pub prune_every_rounds: usize,
}

impl RetentionChurnConfig {
    /// A run over the given schedule and policy, pruning roughly a dozen
    /// times over the history.
    pub fn for_churn(churn: ChurnConfig, retention: RetentionPolicy) -> Self {
        RetentionChurnConfig { prune_every_rounds: (churn.rounds / 12).max(1), retention, churn }
    }
}

/// One per-round sample of the store's memory footprint.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetentionSample {
    /// The round just finished.
    pub round: usize,
    /// Transactions ever published (the history-length axis).
    pub total_published: u64,
    /// Live transaction-log entries.
    pub live_log_entries: usize,
    /// Live relevance-index entries, summed over shards.
    pub live_relevance_entries: usize,
    /// The epoch pruned through so far.
    pub pruned_through: u64,
}

impl RetentionSample {
    /// Log plus relevance entries — the store's live set.
    pub fn live_set(&self) -> usize {
        self.live_log_entries + self.live_relevance_entries
    }
}

/// Aggregate results of one retention run.
#[derive(Debug, Clone, Default)]
pub struct RetentionChurnResult {
    /// Decision totals (must be identical across retention policies).
    pub totals: ChurnTotals,
    /// Effective (non-no-op) prune passes.
    pub prunes: usize,
    /// Log entries removed across all passes.
    pub pruned_log_entries: u64,
    /// Relevance entries removed across all passes.
    pub pruned_relevance_entries: u64,
    /// Sub-horizon entries retained as pinned ancestors by the last
    /// effective pass.
    pub last_pinned: u64,
    /// Largest live set observed at any sample.
    pub peak_live_set: usize,
    /// Transactions ever published by the end of the run.
    pub total_published: u64,
    /// Store-side time summed over every participant.
    pub store_time: Duration,
    /// Local (client algorithm) time summed over every participant.
    pub local_time: Duration,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-round samples, in order, plus one final post-catch-up sample.
    pub samples: Vec<RetentionSample>,
}

impl RetentionChurnResult {
    /// The live set at the sample closest to the given fraction of the run
    /// (0.5 = mid-history). Used by the boundedness gate: a bounded live set
    /// stops growing between mid-history and the end.
    pub fn live_set_at(&self, fraction: f64) -> usize {
        if self.samples.is_empty() {
            return 0;
        }
        let idx = ((self.samples.len() - 1) as f64 * fraction.clamp(0.0, 1.0)).round() as usize;
        self.samples[idx].live_set()
    }

    /// The final live set (after catch-up reconciliation, resolution and the
    /// last prune).
    pub fn final_live_set(&self) -> usize {
        self.samples.last().map(|s| s.live_set()).unwrap_or(0)
    }
}

fn sample(system: &CdssSystem<CentralStore>, round: usize) -> RetentionSample {
    let catalog = system.store().catalog();
    RetentionSample {
        round,
        total_published: catalog.log_total_published(),
        live_log_entries: catalog.log_len(),
        live_relevance_entries: catalog.relevance_len(),
        pruned_through: catalog.pruned_through().as_u64(),
    }
}

fn prune_pass(system: &mut CdssSystem<CentralStore>, result: &mut RetentionChurnResult) {
    let report = system.store().prune_to_horizon().expect("prune succeeds");
    if !report.is_noop() {
        result.prunes += 1;
        result.pruned_log_entries += report.pruned_log_entries;
        result.pruned_relevance_entries += report.pruned_relevance_entries;
        result.last_pinned = report.pinned;
        // Client-side counterpart: shrink every participant's extension
        // cache to its still-deferred chains.
        for id in system.participant_ids() {
            if let Some(participant) = system.participant_mut(id) {
                participant.prune_caches();
            }
        }
    }
}

/// Resolves every open conflict group at every participant, keeping the
/// first option — the curation pass that lets the horizon reach the end of
/// the schedule. Participants can also hold deferred transactions that
/// belong to *no* conflict group (a candidate deferred over a dirty value
/// whose only relatives subsume it never forms a group of its own); an
/// empty-choices resolution re-runs the whole deferred set and decides
/// those too, so the pass fires whenever anything at all is deferred.
pub(crate) fn resolve_everything(system: &mut CdssSystem<CentralStore>, totals: &mut ChurnTotals) {
    for id in system.participant_ids() {
        let participant = system.participant(id).expect("participant exists");
        if participant.soft_state().deferred().is_empty() {
            continue;
        }
        let choices: Vec<orchestra_recon::ResolutionChoice> = participant
            .deferred_conflicts()
            .iter()
            .map(|g| orchestra_recon::ResolutionChoice {
                group: g.key.clone(),
                chosen_option: Some(0),
            })
            .collect();
        system.resolve_conflicts(id, &choices).expect("resolution succeeds");
        totals.resolutions += 1;
    }
}

/// Runs the retention scenario: the interleaved churn schedule with periodic
/// pruning, then a catch-up phase (reconcile all → resolve all → reconcile
/// all → final prune) so the last sample shows the fully converged live set.
pub fn run_retention_scenario(
    store: CentralStore,
    config: &RetentionChurnConfig,
) -> RetentionChurnResult {
    store.set_retention(config.retention);
    let churn = &config.churn;
    let start = Instant::now();
    let mut system = fresh_system(store, churn);
    // Every participant of the run is registered up front: declare the
    // membership closed, otherwise the horizon is pinned at zero forever.
    system.store().catalog().close_membership().expect("close membership");
    let ids: Vec<ParticipantId> = system.participant_ids();
    let mut generators = make_generators(churn, &ids);

    let mut result = RetentionChurnResult::default();
    let mut totals = ChurnTotals::default();
    for round in 0..churn.rounds {
        for (idx, &id) in ids.iter().enumerate() {
            step(&mut system, &mut generators, churn, round, idx, id, &mut totals);
        }
        if config.prune_every_rounds > 0 && (round + 1) % config.prune_every_rounds == 0 {
            prune_pass(&mut system, &mut result);
        }
        let s = sample(&system, round);
        result.peak_live_set = result.peak_live_set.max(s.live_set());
        result.samples.push(s);
    }

    // Catch-up: everyone sees the full history, leftover conflicts are
    // curated away, and one more reconcile wave records the rerun decisions
    // before the final prune.
    for &id in &ids {
        reconcile_one(&mut system, id, &mut totals);
    }
    resolve_everything(&mut system, &mut totals);
    for &id in &ids {
        reconcile_one(&mut system, id, &mut totals);
    }
    prune_pass(&mut system, &mut result);
    let last = sample(&system, churn.rounds);
    result.peak_live_set = result.peak_live_set.max(last.live_set());
    result.samples.push(last);

    totals.state_ratio = system.state_ratio_for("Function");
    result.totals = totals;
    result.total_published = system.store().catalog().log_total_published();
    for id in system.participant_ids() {
        let timing = system.participant(id).expect("participant exists").total_timing();
        result.store_time += timing.store;
        result.local_time += timing.local;
    }
    result.wall = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;
    use orchestra_model::schema::bioinformatics_schema;

    fn tiny_churn() -> ChurnConfig {
        ChurnConfig {
            participants: 4,
            rounds: 12,
            transactions_per_publish: 1,
            max_reconcile_interval: 3,
            resolve_every: 3,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 12,
                function_pool: 6,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 1.2,
                xref_mean: 7.3,
            },
            seed: 11,
        }
    }

    #[test]
    fn converged_only_prunes_and_matches_keepall_decisions() {
        let keepall = run_retention_scenario(
            CentralStore::new(bioinformatics_schema()),
            &RetentionChurnConfig::for_churn(tiny_churn(), RetentionPolicy::KeepAll),
        );
        let converged = run_retention_scenario(
            CentralStore::new(bioinformatics_schema()),
            &RetentionChurnConfig::for_churn(tiny_churn(), RetentionPolicy::ConvergedOnly),
        );
        // Pruning must be invisible to the algorithm.
        assert_eq!(keepall.totals, converged.totals, "retention changed decisions");
        assert!(keepall.totals.accepted > 0, "churn must share data");
        // KeepAll never prunes; ConvergedOnly actually removed history.
        assert_eq!(keepall.prunes, 0);
        assert_eq!(keepall.final_live_set(), keepall.peak_live_set);
        assert!(converged.prunes > 0, "schedule must converge enough to prune");
        assert!(converged.pruned_log_entries > 0);
        assert!(converged.final_live_set() < keepall.final_live_set());
        assert_eq!(converged.total_published, keepall.total_published);
        // Samples cover every round plus the final catch-up.
        assert_eq!(converged.samples.len(), tiny_churn().rounds + 1);
        assert!(converged.samples.last().unwrap().pruned_through > 0);
    }

    #[test]
    fn keep_last_n_prunes_less_than_converged_only() {
        let window = run_retention_scenario(
            CentralStore::new(bioinformatics_schema()),
            &RetentionChurnConfig::for_churn(tiny_churn(), RetentionPolicy::KeepLastN(8)),
        );
        let converged = run_retention_scenario(
            CentralStore::new(bioinformatics_schema()),
            &RetentionChurnConfig::for_churn(tiny_churn(), RetentionPolicy::ConvergedOnly),
        );
        assert_eq!(window.totals, converged.totals);
        assert!(window.final_live_set() >= converged.final_live_set());
        assert!(
            window.samples.last().unwrap().pruned_through
                <= converged.samples.last().unwrap().pruned_through
        );
    }
}
