//! The `churn_scale` scenario: confederation-scale churn through the store
//! service.
//!
//! Where [`crate::scenario::run_churn_concurrent`] compares reconciliation
//! drivers on a handful of participants, this module stresses the *service*
//! deployment model at the paper's confederation scale: a thousand-plus
//! participants publishing hundreds of thousands of updates while sustained
//! waves of reconciliation sessions are multiplexed through the framed store
//! service ([`orchestra_store::StoreService`]).
//!
//! Relevance is Zipf-skewed: each participant trusts a small set of
//! publishers drawn from a Zipf distribution over the confederation
//! ([`zipf_fanin_policies`]), so a few popular publishers are relevant to
//! most of the confederation while the long tail is relevant to almost
//! nobody — the interest skew the paper observes in bioinformatics sharing.
//!
//! Four drivers run the *same* publish/reconcile schedule:
//!
//! * [`ScaleDriver::Sequential`] — one session after another; the decision
//!   baseline.
//! * [`ScaleDriver::Threads`] — the thread-per-participant driver
//!   (`reconcile_each_parallel`), the pre-service deployment model.
//! * [`ScaleDriver::Service`] — sessions multiplexed through the bounded
//!   worker pool of the store service on the single-threaded runtime.
//! * the **fabric** driver ([`run_churn_scale_fabric`]) — the same sessions
//!   against a confederation of [`ScaleConfig::fabric_shards`] store
//!   services, each fronting one shard of an
//!   [`orchestra_store::StoreFabric`]; every session merges candidates from
//!   every shard into one virtual timeline.
//!
//! Because publishes are schedule-ordered in every driver and a wave pins
//! the log, all four reach identical decisions; the run result carries an
//! order-invariant [`ScaleRunResult::decision_fingerprint`] so a benchmark
//! can assert that equivalence cheaply at full scale.

use crate::generator::{WorkloadConfig, WorkloadGenerator};
use crate::swissprot::SwissProtPools;
use crate::zipf::ZipfSampler;
use orchestra::{CdssSystem, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TransactionId, TrustPolicy};
use orchestra_obs::{MetricsSnapshot, Obs};
use orchestra_store::{FabricConfig, ServiceConfig, StoreFabric, UpdateStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::{FxHashSet, FxHasher};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one `churn_scale` run.
///
/// The service knobs mirror [`ServiceConfig`] field for field (that struct
/// carries no serde impls; this one must be serialisable into benchmark
/// metadata) — [`ScaleConfig::service_config`] converts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Confederation size.
    pub participants: usize,
    /// Publish/reconcile rounds.
    pub rounds: usize,
    /// Transactions each participant publishes per round.
    pub transactions_per_publish: usize,
    /// Publishers each participant trusts (drawn Zipf-skewed).
    pub trusted_publishers: usize,
    /// Zipf exponent of publisher popularity.
    pub zipf_s: f64,
    /// Reconciliation stagger: participant `idx` reconciles every
    /// `1 + idx % max_reconcile_interval` rounds.
    pub max_reconcile_interval: usize,
    /// Workload generator parameters.
    pub workload: WorkloadConfig,
    /// Base random seed.
    pub seed: u64,
    /// Mirrors [`ServiceConfig::workers`].
    pub service_workers: usize,
    /// Mirrors [`ServiceConfig::inbox_capacity`].
    pub service_inbox_capacity: usize,
    /// Mirrors [`ServiceConfig::max_open_sessions`].
    pub service_max_open_sessions: usize,
    /// Mirrors [`ServiceConfig::max_batch`].
    pub service_max_batch: usize,
    /// Mirrors [`ServiceConfig::frame_latency_us`].
    pub frame_latency_us: u64,
    /// Mirrors [`ServiceConfig::store_latency_us`].
    pub store_latency_us: u64,
    /// Shards in the store fabric (the fabric driver only; mirrors
    /// [`FabricConfig::shards`]).
    pub fabric_shards: usize,
}

impl ScaleConfig {
    /// Reduced scale for tests and the CI quick benchmark: tens of
    /// participants, hundreds of updates, the same schedule shape.
    pub fn quick() -> ScaleConfig {
        ScaleConfig {
            participants: 64,
            rounds: 3,
            transactions_per_publish: 1,
            trusted_publishers: 4,
            zipf_s: 1.1,
            max_reconcile_interval: 3,
            workload: WorkloadConfig {
                transaction_size: 4,
                key_universe: 400,
                function_pool: 60,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.9,
                xref_mean: 0.0,
            },
            seed: 42,
            service_workers: 4,
            service_inbox_capacity: 64,
            service_max_open_sessions: 48,
            service_max_batch: 16,
            frame_latency_us: 500,
            store_latency_us: 200,
            fabric_shards: 4,
        }
    }

    /// Full scale: 4096 participants × 2 rounds × 26-update transactions
    /// ≈ 213k published updates, with an admission cap below the largest
    /// wave so the service sheds and re-admits load under pressure. The
    /// fabric driver spreads the same confederation over 4 shard services.
    ///
    /// The key universe is huge and uniform (`key_zipf_exponent: 0`) so
    /// that most updates are *inserts*: an insert has no antecedent, which
    /// keeps candidate extension closures small. A skewed universe at this
    /// volume makes nearly every update a modify, each 34-update
    /// transaction then carries ~30 antecedent edges, and closures grow
    /// towards the whole history — quadratic reconciliation that drowns
    /// the service-versus-threads comparison this scenario exists for.
    /// (Relevance skew is still Zipf — it lives in the trust fan-in, not
    /// the keys.)
    pub fn full() -> ScaleConfig {
        ScaleConfig {
            participants: 4096,
            rounds: 2,
            transactions_per_publish: 1,
            trusted_publishers: 8,
            zipf_s: 1.1,
            max_reconcile_interval: 3,
            workload: WorkloadConfig {
                transaction_size: 26,
                key_universe: 4_000_000,
                function_pool: 500,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.0,
                xref_mean: 0.0,
            },
            seed: 42,
            service_workers: 8,
            service_inbox_capacity: 128,
            service_max_open_sessions: 512,
            service_max_batch: 16,
            frame_latency_us: 500,
            store_latency_us: 1_000,
            fabric_shards: 4,
        }
    }

    /// The [`ServiceConfig`] these knobs describe.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            workers: self.service_workers,
            inbox_capacity: self.service_inbox_capacity,
            max_open_sessions: self.service_max_open_sessions,
            max_batch: self.service_max_batch,
            frame_latency_us: self.frame_latency_us,
            store_latency_us: self.store_latency_us,
            ..ServiceConfig::default()
        }
    }

    /// The [`FabricConfig`] these knobs describe: [`ScaleConfig::fabric_shards`]
    /// shard services, each running [`ScaleConfig::service_config`].
    pub fn fabric_config(&self) -> FabricConfig {
        FabricConfig { shards: self.fabric_shards, service: self.service_config() }
    }
}

/// How a `churn_scale` run drives its reconciliation waves.
///
/// The sharded fabric deployment is its own entry point
/// ([`run_churn_scale_fabric`]) rather than a variant here: it needs to
/// construct the [`StoreFabric`] itself, while [`run_churn_scale`] is
/// generic over any caller-supplied store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDriver {
    /// One session after another (decision baseline).
    Sequential,
    /// One OS thread per due participant against the shared store.
    Threads,
    /// Sessions multiplexed through the framed store service.
    Service,
}

/// Aggregate results of one `churn_scale` run.
#[derive(Debug, Clone, Default)]
pub struct ScaleRunResult {
    /// Reconciliation sessions completed.
    pub sessions: u64,
    /// Publishes that assigned an epoch.
    pub publishes: u64,
    /// Transactions generated (= published; every round publishes).
    pub transactions: u64,
    /// Updates generated across all transactions.
    pub updates: u64,
    /// Wall clock of the reconciliation waves alone.
    pub reconcile_wall: Duration,
    /// Wall clock of the whole run.
    pub total_wall: Duration,
    /// Per-session virtual latency (begin to commit, including queueing),
    /// microseconds. Populated by the service driver only.
    pub latencies_us: Vec<u64>,
    /// Service request frames served (service driver only).
    pub requests: u64,
    /// `Begin` frames shed by admission control (service driver only).
    pub busy_rejections: u64,
    /// Worker wake-ups; `requests / batches` is the achieved batching
    /// factor (service driver only).
    pub batches: u64,
    /// Simulated-network messages (service driver only).
    pub net_messages: u64,
    /// Simulated-network bytes (service driver only).
    pub net_bytes: u64,
    /// Virtual time consumed by the service rounds, microseconds.
    pub virtual_elapsed_us: u64,
    /// Frames delivered to each shard's server endpoint (fabric driver
    /// only); the spread across entries is the shard-load skew.
    pub shard_frames: Vec<u64>,
    /// `Begin` frames shed by each shard's admission control (fabric driver
    /// only). PR 9 could only *infer* these from frame-count deltas; the
    /// shard services now count them directly, making the shard-0 admission
    /// gate visible without arithmetic.
    pub shard_busy: Vec<u64>,
    /// Snapshot of the run's metrics registry: service, network, WAL and
    /// participant counters plus per-shard batch-size histograms.
    pub metrics: MetricsSnapshot,
    /// Order-invariant hash of every participant's accepted and rejected
    /// sets; equal fingerprints ⇒ identical decisions.
    pub decision_fingerprint: u64,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
}

/// Builds the Zipf-skewed fan-in trust policies: participant popularity
/// follows a Zipf distribution (participant 1 the most popular), and each
/// participant trusts `trusted_publishers` *distinct* publishers, at
/// priority 1, sampled from it.
pub fn zipf_fanin_policies(
    participants: usize,
    trusted_publishers: usize,
    zipf_s: f64,
    seed: u64,
) -> Vec<TrustPolicy> {
    assert!(participants >= 2, "a confederation needs at least 2 participants");
    let sampler = ZipfSampler::new(participants, zipf_s);
    let mut rng = StdRng::seed_from_u64(seed);
    let want = trusted_publishers.min(participants - 1);
    (1..=participants as u32)
        .map(|me| {
            let mut policy = TrustPolicy::new(ParticipantId(me));
            let mut chosen: FxHashSet<u32> = FxHashSet::default();
            // Rejection-sample distinct publishers; under heavy skew the
            // popular ranks repeat, so cap the attempts and top up from the
            // head of the popularity order (never from `me` itself).
            let mut attempts = 0usize;
            while chosen.len() < want && attempts < 64 * want.max(1) {
                attempts += 1;
                let publisher = sampler.sample(&mut rng) as u32 + 1;
                if publisher != me && chosen.insert(publisher) {
                    policy = policy.trusting(ParticipantId(publisher), 1u32);
                }
            }
            let mut rank = 1u32;
            while chosen.len() < want {
                if rank != me && chosen.insert(rank) {
                    policy = policy.trusting(ParticipantId(rank), 1u32);
                }
                rank += 1;
            }
            policy
        })
        .collect()
}

/// Order-invariant fingerprint of every participant's decision record.
fn decision_fingerprint<S: UpdateStore>(store: &S, ids: &[ParticipantId]) -> u64 {
    let mut combined = 0u64;
    for &id in ids {
        let mut hasher = FxHasher::default();
        id.as_u32().hash(&mut hasher);
        for decisions in [store.accepted_set(id), store.rejected_set(id)] {
            let mut sorted: Vec<TransactionId> = decisions.iter().copied().collect();
            sorted.sort();
            sorted.hash(&mut hasher);
        }
        combined = combined.wrapping_add(hasher.finish());
    }
    combined
}

/// Runs the `churn_scale` scenario: every round, every participant executes
/// and publishes a workload batch, then the round's due participants (same
/// stagger as the churn scenarios) reconcile as one wave under the chosen
/// [`ScaleDriver`]; a final catch-up wave converges everybody.
pub fn run_churn_scale<S: UpdateStore + Sync>(
    store: S,
    config: &ScaleConfig,
    driver: ScaleDriver,
) -> ScaleRunResult {
    run_churn_scale_observed(store, config, driver, &Obs::disabled())
}

/// [`run_churn_scale`] reporting into a caller-supplied observability sink:
/// the whole stack (service, network, WAL, participants) shares the sink's
/// registry, and — when its tracer is enabled — the service rounds record a
/// trace stamped in deterministic virtual time. The disabled-sink delegate
/// above measures identically (counters are always live).
pub fn run_churn_scale_observed<S: UpdateStore + Sync>(
    store: S,
    config: &ScaleConfig,
    driver: ScaleDriver,
    obs: &Obs,
) -> ScaleRunResult {
    let service_config = config.service_config();
    run_churn_loop(
        store,
        config,
        obs,
        |system, ids, result| match driver {
            ScaleDriver::Sequential | ScaleDriver::Threads => {
                for &id in ids {
                    if system.publish(id).expect("publish succeeds").is_some() {
                        result.publishes += 1;
                    }
                }
            }
            ScaleDriver::Service => {
                let report = system
                    .run_service_round(ids, &[], &service_config)
                    .expect("service publish phase succeeds");
                result.publishes +=
                    report.published.iter().filter(|(_, epoch)| epoch.is_some()).count() as u64;
                absorb_service_report(result, &report);
            }
        },
        |system, due, result| match driver {
            ScaleDriver::Sequential => {
                let reports = system.reconcile_each(due).expect("sequential wave succeeds");
                result.sessions += reports.len() as u64;
            }
            ScaleDriver::Threads => {
                let reports = system.reconcile_each_parallel(due).expect("threaded wave succeeds");
                result.sessions += reports.len() as u64;
            }
            ScaleDriver::Service => {
                let report = system
                    .run_service_round(&[], due, &service_config)
                    .expect("service wave succeeds");
                result.sessions += report.results.len() as u64;
                result.latencies_us.extend_from_slice(&report.latencies_us);
                absorb_service_report(result, &report);
            }
        },
    )
}

/// Runs the `churn_scale` schedule against a sharded [`StoreFabric`]: the
/// confederation is spread over [`ScaleConfig::fabric_shards`] store
/// services (one per shard of the publication log), publishes fan out from
/// each participant's home shard to every replica, and each reconciliation
/// session pages candidates from every shard into one virtual timeline.
///
/// The schedule — and therefore the decisions — is identical to
/// [`run_churn_scale`]'s; [`ScaleRunResult::shard_frames`] additionally
/// records the per-shard frame load.
pub fn run_churn_scale_fabric(config: &ScaleConfig) -> ScaleRunResult {
    run_churn_scale_fabric_observed(config, &Obs::disabled())
}

/// [`run_churn_scale_fabric`] reporting into a caller-supplied sink; the
/// per-shard services label their metrics (`service.requests{shard=N}`) and
/// stamp their trace events with the shard, so a captured trace shows the
/// shard-0 admission gate directly.
pub fn run_churn_scale_fabric_observed(config: &ScaleConfig, obs: &Obs) -> ScaleRunResult {
    let fabric_config = config.fabric_config();
    run_churn_loop(
        StoreFabric::new(bioinformatics_schema(), config.fabric_shards),
        config,
        obs,
        |system, ids, result| {
            let report = system
                .run_fabric_round(ids, &[], &fabric_config)
                .expect("fabric publish phase succeeds");
            result.publishes +=
                report.published.iter().filter(|(_, epoch)| epoch.is_some()).count() as u64;
            absorb_fabric_report(result, &report);
        },
        |system, due, result| {
            let report =
                system.run_fabric_round(&[], due, &fabric_config).expect("fabric wave succeeds");
            result.sessions += report.results.len() as u64;
            result.latencies_us.extend_from_slice(&report.latencies_us);
            absorb_fabric_report(result, &report);
        },
    )
}

/// The schedule every driver shares: per round, every participant executes
/// a generated batch, `publish` pushes the round's pending transactions to
/// the store, and `wave` reconciles the round's due participants; a final
/// catch-up wave converges everybody.
fn run_churn_loop<S: UpdateStore + Sync>(
    store: S,
    config: &ScaleConfig,
    obs: &Obs,
    mut publish: impl FnMut(&mut CdssSystem<S>, &[ParticipantId], &mut ScaleRunResult),
    mut wave: impl FnMut(&mut CdssSystem<S>, &[ParticipantId], &mut ScaleRunResult),
) -> ScaleRunResult {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    system.set_observability(obs);
    let policies = zipf_fanin_policies(
        config.participants,
        config.trusted_publishers,
        config.zipf_s,
        config.seed.wrapping_add(0x9e37_79b9),
    );
    for policy in policies {
        system.add_participant(ParticipantConfig::new(policy)).expect("unique participants");
    }
    let ids = system.participant_ids();

    // One pool set for the whole confederation: pools depend only on the
    // universe sizes, and a per-participant copy of a multi-million-key
    // universe would dwarf the store itself.
    let pools =
        Arc::new(SwissProtPools::new(config.workload.key_universe, config.workload.function_pool));
    let mut generators: Vec<WorkloadGenerator> = ids
        .iter()
        .map(|id| {
            WorkloadGenerator::with_shared_pools(
                config.workload.clone(),
                Arc::clone(&pools),
                config.seed.wrapping_add(u64::from(id.as_u32()) * 6151),
            )
        })
        .collect();

    let mut result = ScaleRunResult::default();
    let run_start = Instant::now();

    for round in 0..config.rounds {
        // Phase 1: everyone executes its batch. Publishes follow in id
        // order under every driver, so epochs — and decisions — are
        // schedule-determined.
        for (idx, &id) in ids.iter().enumerate() {
            let batch = {
                let participant = system.participant(id).expect("participant exists");
                generators[idx].next_batch(
                    id,
                    participant.instance(),
                    config.transactions_per_publish,
                )
            };
            for updates in batch {
                result.transactions += 1;
                result.updates += updates.len() as u64;
                let _ = system.execute(id, updates);
            }
        }
        publish(&mut system, &ids, &mut result);

        // Phase 2: the round's due participants reconcile as one wave.
        let due: Vec<ParticipantId> = ids
            .iter()
            .enumerate()
            .filter(|(idx, _)| {
                let interval = 1 + idx % config.max_reconcile_interval.max(1);
                (round + idx) % interval == 0
            })
            .map(|(_, &id)| id)
            .collect();
        if !due.is_empty() {
            let wave_start = Instant::now();
            wave(&mut system, &due, &mut result);
            result.reconcile_wall += wave_start.elapsed();
        }
    }

    // Final catch-up wave: everyone reconciles once more, so every driver
    // ends at the same converged frontier.
    let wave_start = Instant::now();
    wave(&mut system, &ids, &mut result);
    result.reconcile_wall += wave_start.elapsed();

    result.total_wall = run_start.elapsed();
    result.state_ratio = system.state_ratio_for("Function");
    result.decision_fingerprint = decision_fingerprint(system.store(), &ids);
    result.metrics = obs.metrics.snapshot();
    result
}

fn absorb_service_report(result: &mut ScaleRunResult, report: &orchestra::ServiceDriveReport) {
    result.requests += report.stats.requests;
    result.busy_rejections += report.stats.busy_rejections;
    result.batches += report.stats.batches;
    result.net_messages += report.net.messages;
    result.net_bytes += report.net.bytes;
    result.virtual_elapsed_us += report.virtual_elapsed_us;
}

fn absorb_fabric_report(result: &mut ScaleRunResult, report: &orchestra::FabricDriveReport) {
    if result.shard_busy.len() < report.shard_stats.len() {
        result.shard_busy.resize(report.shard_stats.len(), 0);
    }
    for (shard, stats) in report.shard_stats.iter().enumerate() {
        result.requests += stats.requests;
        result.busy_rejections += stats.busy_rejections;
        result.batches += stats.batches;
        result.shard_busy[shard] += stats.busy_rejections;
    }
    result.net_messages += report.net.messages;
    result.net_bytes += report.net.bytes;
    result.virtual_elapsed_us += report.virtual_elapsed_us;
    if result.shard_frames.len() < report.shard_frames.len() {
        result.shard_frames.resize(report.shard_frames.len(), 0);
    }
    for (total, frames) in result.shard_frames.iter_mut().zip(&report.shard_frames) {
        *total += frames;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_store::CentralStore;

    fn quick() -> ScaleConfig {
        ScaleConfig::quick()
    }

    #[test]
    fn zipf_fanin_policies_are_distinct_skewed_and_never_self_trusting() {
        use orchestra_model::{Tuple, Update};
        let n = 64;
        let schema = bioinformatics_schema();
        let policies = zipf_fanin_policies(n, 4, 1.1, 7);
        assert_eq!(policies.len(), n);
        let update_from = |p: ParticipantId| {
            Update::insert("Function", Tuple::of_text(&["rat", "prot", "immune"]), p)
        };
        let mut trust_counts = vec![0usize; n + 1];
        for (idx, policy) in policies.iter().enumerate() {
            let me = ParticipantId(idx as u32 + 1);
            assert_eq!(policy.owner(), me);
            let trusted: Vec<ParticipantId> = (1..=n as u32)
                .map(ParticipantId)
                .filter(|&p| {
                    p != me && policy.priority_of_update(&update_from(p), &schema).is_trusted()
                })
                .collect();
            assert_eq!(trusted.len(), 4, "participant {me:?} trusts exactly 4 publishers");
            for p in trusted {
                trust_counts[p.as_u32() as usize] += 1;
            }
        }
        // Zipf skew: the head of the popularity order is trusted far more
        // often than the tail.
        let head: usize = trust_counts[1..=4].iter().sum();
        let tail: usize = trust_counts[n - 3..=n].iter().sum();
        assert!(head > 4 * tail.max(1), "expected skew, head={head} tail={tail}");
    }

    #[test]
    fn all_three_drivers_reach_identical_decisions_at_reduced_scale() {
        let config = quick();
        let sequential = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Sequential,
        );
        let threads = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Threads,
        );
        let service = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Service,
        );

        assert!(sequential.transactions > 0 && sequential.updates > 0);
        assert_eq!(sequential.transactions, threads.transactions);
        assert_eq!(sequential.transactions, service.transactions);
        assert_eq!(sequential.publishes, service.publishes);
        assert_eq!(sequential.sessions, service.sessions);
        assert_eq!(sequential.decision_fingerprint, threads.decision_fingerprint);
        assert_eq!(sequential.decision_fingerprint, service.decision_fingerprint);
        assert_eq!(sequential.state_ratio, service.state_ratio);

        // Only the service driver reports frame traffic and latencies.
        assert_eq!(sequential.requests, 0);
        assert!(service.requests > 0);
        assert_eq!(service.latencies_us.len() as u64, service.sessions);
        assert!(service.latencies_us.iter().all(|&us| us > 0));
        assert!(service.virtual_elapsed_us > 0);
        assert!(service.net_messages >= service.requests);
    }

    #[test]
    fn fabric_driver_matches_sequential_decisions_at_reduced_scale() {
        let mut config = quick();
        config.participants = 24;
        config.rounds = 2;
        let sequential = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Sequential,
        );
        let fabric = run_churn_scale_fabric(&config);

        assert_eq!(fabric.transactions, sequential.transactions);
        assert_eq!(fabric.publishes, sequential.publishes);
        assert_eq!(fabric.sessions, sequential.sessions);
        assert_eq!(fabric.decision_fingerprint, sequential.decision_fingerprint);
        assert_eq!(fabric.state_ratio, sequential.state_ratio);

        // Only the fabric driver reports per-shard frame load, and every
        // shard of the confederation serves traffic.
        assert_eq!(sequential.shard_frames.len(), 0);
        assert_eq!(fabric.shard_frames.len(), config.fabric_shards);
        assert!(fabric.shard_frames.iter().all(|&frames| frames > 0));
        assert!(fabric.requests > 0);
        assert_eq!(fabric.latencies_us.len() as u64, fabric.sessions);

        // A store fabric also satisfies the plain in-process driver
        // contract: driving it sequentially reaches the same decisions.
        let in_process = run_churn_scale(
            StoreFabric::new(bioinformatics_schema(), config.fabric_shards),
            &config,
            ScaleDriver::Sequential,
        );
        assert_eq!(in_process.sessions, sequential.sessions);
        assert_eq!(in_process.decision_fingerprint, sequential.decision_fingerprint);
        assert_eq!(in_process.state_ratio, sequential.state_ratio);
    }

    #[test]
    fn service_driver_metrics_snapshot_matches_the_counters() {
        let mut config = quick();
        config.participants = 16;
        config.rounds = 2;
        let service = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Service,
        );
        // The registry snapshot carries the same totals the per-round
        // absorption accumulated, plus the batch-size histogram.
        assert_eq!(service.metrics.counters["service.requests"], service.requests);
        assert_eq!(service.metrics.counters["service.batches"], service.batches);
        assert_eq!(service.metrics.counters["net.messages"], service.net_messages);
        assert_eq!(service.metrics.histograms["service.batch_frames"].count, service.batches);
        assert!(service.metrics.counters["participant.store_us"] > 0);
    }

    #[test]
    fn fabric_admission_gate_concentrates_sheds_on_shard_zero() {
        // A tight admission cap forces sheds; the fabric client opens its
        // per-shard sessions in shard order, so shard 0 is the gate every
        // session must pass first — it absorbs the Busy retries. PR 9 had
        // to infer this from frame-count deltas; `shard_busy` counts it.
        let mut config = quick();
        config.participants = 24;
        config.rounds = 2;
        config.service_max_open_sessions = 2;
        let obs = Obs::enabled();
        let fabric = run_churn_scale_fabric_observed(&config, &obs);

        assert_eq!(fabric.shard_busy.len(), config.fabric_shards);
        let gate = fabric.shard_busy[0];
        assert!(gate > 0, "the cap of 2 must shed at shard 0: {:?}", fabric.shard_busy);
        assert!(
            fabric.shard_busy[1..].iter().all(|&busy| busy <= gate),
            "shard 0 is the admission gate: {:?}",
            fabric.shard_busy
        );
        assert_eq!(fabric.shard_busy.iter().sum::<u64>(), fabric.busy_rejections);
        // The labelled registry key agrees with the per-shard view, and the
        // captured trace shows the sheds carrying their shard label.
        assert_eq!(
            obs.metrics.counter("service.busy_rejections{shard=0}").get(),
            gate,
            "registry and report must agree"
        );
        let trace = obs.tracer.export();
        assert!(trace.contains("admission.shed"), "sheds must be traced");
        assert!(trace.contains("fabric.publish"), "publish fan-out must be traced");
    }

    #[test]
    fn tight_admission_cap_sheds_load_but_still_converges() {
        let mut config = quick();
        config.participants = 24;
        config.rounds = 2;
        config.service_max_open_sessions = 2;
        let service = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Service,
        );
        let sequential = run_churn_scale(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ScaleDriver::Sequential,
        );
        assert!(service.busy_rejections > 0, "cap of 2 must shed some Begins");
        assert_eq!(service.sessions, sequential.sessions, "every session still completes");
        assert_eq!(service.decision_fingerprint, sequential.decision_fingerprint);
    }
}
