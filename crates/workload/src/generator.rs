//! The synthetic curated-database update generator.

use crate::swissprot::SwissProtPools;
use crate::zipf::ZipfSampler;
use orchestra_model::{KeyValue, ParticipantId, Tuple, Update};
use orchestra_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Parameters of the synthetic workload, matching Section 6 of the paper
/// where specified (Zipf exponent 1.5 over the function pool, 7.3
/// cross-reference tuples per newly inserted key) and configurable where the
/// paper leaves the choice open (size of the key universe, skew of key
/// selection).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of updates per generated transaction.
    pub transaction_size: usize,
    /// Number of distinct `(organism, protein)` keys in the universe.
    pub key_universe: usize,
    /// Number of distinct protein-function values.
    pub function_pool: usize,
    /// Zipf exponent for sampling update values (the paper uses 1.5).
    pub value_zipf_exponent: f64,
    /// Zipf exponent for choosing which key an update touches (higher means
    /// more contention on popular proteins).
    pub key_zipf_exponent: f64,
    /// Mean number of cross-reference tuples inserted per newly inserted key
    /// (the paper observes 7.3).
    pub xref_mean: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            transaction_size: 1,
            key_universe: 2_000,
            function_pool: 500,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        }
    }
}

/// Generates transactions that mimic curators updating a SWISS-PROT-style
/// database: each update either inserts a new protein-function fact (plus its
/// cross-references) or revises the function of a protein already present in
/// the generating participant's instance.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    /// Shared so that confederations with one generator per participant pay
    /// for the key universe once — the pools are a pure function of
    /// `(key_universe, function_pool)`, never of the seed.
    pools: Arc<SwissProtPools>,
    value_sampler: ZipfSampler,
    key_sampler: ZipfSampler,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator with the given configuration and seed. The same
    /// seed produces the same update stream.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        let pools = Arc::new(SwissProtPools::new(config.key_universe, config.function_pool));
        Self::with_shared_pools(config, pools, seed)
    }

    /// Creates a generator that borrows an already-built pool set instead of
    /// materialising its own. At confederation scale (a thousand generators
    /// over millions of keys) the pools dominate memory, and they are
    /// identical across participants, so build them once and share.
    ///
    /// # Panics
    /// Panics if the pool dimensions do not match the configuration — a
    /// mismatch would silently change which keys the samplers can reach.
    pub fn with_shared_pools(
        config: WorkloadConfig,
        pools: Arc<SwissProtPools>,
        seed: u64,
    ) -> Self {
        assert_eq!(pools.key_count(), config.key_universe, "shared pool key universe mismatch");
        assert_eq!(pools.function_count(), config.function_pool, "shared pool function mismatch");
        let value_sampler = ZipfSampler::new(config.function_pool, config.value_zipf_exponent);
        let key_sampler = ZipfSampler::new(config.key_universe, config.key_zipf_exponent);
        WorkloadGenerator {
            config,
            pools,
            value_sampler,
            key_sampler,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The value pools in use.
    pub fn pools(&self) -> &SwissProtPools {
        &self.pools
    }

    /// Number of cross-reference tuples for one newly inserted key, averaging
    /// `xref_mean`.
    fn sample_xref_count(&mut self) -> usize {
        let base = self.config.xref_mean.floor() as usize;
        let frac = self.config.xref_mean - base as f64;
        if self.rng.gen_bool(frac.clamp(0.0, 1.0)) {
            base + 1
        } else {
            base
        }
    }

    /// Generates the updates of one transaction for `participant`, relative
    /// to its current `instance`. Within the transaction, successive updates
    /// to the same key chain correctly (a revision reads the value written by
    /// the previous update).
    pub fn next_transaction(
        &mut self,
        participant: ParticipantId,
        instance: &Database,
    ) -> Vec<Update> {
        let mut updates = Vec::with_capacity(self.config.transaction_size);
        // Values written earlier in this transaction, so later updates chain
        // off them instead of the instance.
        let mut pending: FxHashMap<KeyValue, Tuple> = FxHashMap::default();
        let function_rel = instance
            .schema()
            .relation("Function")
            .expect("workload schema has a Function relation")
            .clone();

        for _ in 0..self.config.transaction_size {
            let key_index = self.key_sampler.sample(&mut self.rng);
            let value_index = self.value_sampler.sample(&mut self.rng);
            let proposed = self.pools.function_tuple(key_index, value_index);
            let key = function_rel.key_of(&proposed);

            let current: Option<Tuple> =
                pending.get(&key).cloned().or_else(|| instance.value_at("Function", &key));

            match current {
                Some(existing) => {
                    if existing == proposed {
                        // Re-curating to the same value would be a no-op;
                        // pick the next-ranked value to make it a revision.
                        let alt_index = (value_index + 1) % self.config.function_pool;
                        let alt = self.pools.function_tuple(key_index, alt_index);
                        if alt == existing {
                            continue;
                        }
                        pending.insert(key.clone(), alt.clone());
                        updates.push(Update::modify("Function", existing, alt, participant));
                    } else {
                        pending.insert(key.clone(), proposed.clone());
                        updates.push(Update::modify("Function", existing, proposed, participant));
                    }
                }
                None => {
                    pending.insert(key.clone(), proposed.clone());
                    updates.push(Update::insert("Function", proposed, participant));
                    let xrefs = self.sample_xref_count();
                    for n in 0..xrefs {
                        let xref = self.pools.xref_tuple(key_index, n);
                        if !instance.contains_tuple_exact("XRef", &xref) {
                            updates.push(Update::insert("XRef", xref, participant));
                        }
                    }
                }
            }
        }
        updates
    }

    /// Generates a whole batch of transactions (each sized per the
    /// configuration), applying each to a scratch copy of the instance so the
    /// batch is internally consistent. Returns the update lists, one per
    /// transaction.
    pub fn next_batch(
        &mut self,
        participant: ParticipantId,
        instance: &Database,
        transactions: usize,
    ) -> Vec<Vec<Update>> {
        let mut scratch = instance.clone();
        let mut batch = Vec::with_capacity(transactions);
        for _ in 0..transactions {
            let updates = self.next_transaction(participant, &scratch);
            if updates.is_empty() {
                continue;
            }
            // Keep the scratch instance in sync so later transactions of the
            // batch observe the earlier ones.
            if scratch.apply_all(&updates).is_ok() {
                batch.push(updates);
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::UpdateKind;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            transaction_size: 1,
            key_universe: 50,
            function_pool: 20,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        }
    }

    #[test]
    fn generated_transactions_apply_cleanly_to_the_instance() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema);
        let mut generator = WorkloadGenerator::new(small_config(), 7);
        for _ in 0..200 {
            let updates = generator.next_transaction(p(1), &db);
            assert!(!updates.is_empty());
            db.apply_all(&updates).expect("generated transaction must apply");
        }
        assert!(db.total_tuples() > 0);
    }

    #[test]
    fn new_keys_come_with_cross_references() {
        let schema = bioinformatics_schema();
        let db = Database::new(schema);
        let mut generator = WorkloadGenerator::new(small_config(), 3);
        let updates = generator.next_transaction(p(1), &db);
        let function_inserts = updates.iter().filter(|u| u.relation == "Function").count();
        let xref_inserts = updates.iter().filter(|u| u.relation == "XRef").count();
        assert_eq!(function_inserts, 1);
        assert!(xref_inserts == 7 || xref_inserts == 8, "got {xref_inserts} xrefs");
    }

    #[test]
    fn xref_count_averages_near_the_configured_mean() {
        let mut generator = WorkloadGenerator::new(small_config(), 11);
        let total: usize = (0..2000).map(|_| generator.sample_xref_count()).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 7.3).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn existing_keys_are_revised_not_reinserted() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema);
        let config = WorkloadConfig { key_universe: 1, ..small_config() };
        let mut generator = WorkloadGenerator::new(config, 5);
        // First transaction inserts the only key.
        let first = generator.next_transaction(p(1), &db);
        db.apply_all(&first).unwrap();
        // Every following transaction must revise it.
        for _ in 0..20 {
            let updates = generator.next_transaction(p(1), &db);
            for u in updates.iter().filter(|u| u.relation == "Function") {
                assert_eq!(u.kind(), UpdateKind::Modify);
            }
            db.apply_all(&updates).unwrap();
        }
    }

    #[test]
    fn multi_update_transactions_chain_within_the_transaction() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema);
        let config = WorkloadConfig { transaction_size: 8, key_universe: 3, ..small_config() };
        let mut generator = WorkloadGenerator::new(config, 9);
        for _ in 0..50 {
            let updates = generator.next_transaction(p(1), &db);
            db.apply_all(&updates).expect("chained transaction must apply");
        }
    }

    #[test]
    fn batches_are_internally_consistent() {
        let schema = bioinformatics_schema();
        let mut db = Database::new(schema);
        let mut generator = WorkloadGenerator::new(small_config(), 21);
        let batch = generator.next_batch(p(2), &db, 25);
        assert_eq!(batch.len(), 25);
        for updates in &batch {
            db.apply_all(updates).expect("batch transactions must apply in order");
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_stream() {
        let schema = bioinformatics_schema();
        let db = Database::new(schema);
        let mut a = WorkloadGenerator::new(small_config(), 99);
        let mut b = WorkloadGenerator::new(small_config(), 99);
        for _ in 0..20 {
            assert_eq!(a.next_transaction(p(1), &db), b.next_transaction(p(1), &db));
        }
    }

    #[test]
    fn shared_pools_reproduce_the_owned_stream() {
        let schema = bioinformatics_schema();
        let db = Database::new(schema);
        let config = small_config();
        let pools = Arc::new(SwissProtPools::new(config.key_universe, config.function_pool));
        let mut owned = WorkloadGenerator::new(config.clone(), 99);
        let mut shared = WorkloadGenerator::with_shared_pools(config, Arc::clone(&pools), 99);
        for _ in 0..20 {
            assert_eq!(owned.next_transaction(p(1), &db), shared.next_transaction(p(1), &db));
        }
        // The sharing is real: no per-generator copy was made.
        assert_eq!(Arc::strong_count(&pools), 2);
    }

    #[test]
    #[should_panic(expected = "shared pool key universe mismatch")]
    fn mismatched_shared_pools_are_rejected() {
        let config = small_config();
        let pools = Arc::new(SwissProtPools::new(config.key_universe + 1, config.function_pool));
        let _ = WorkloadGenerator::with_shared_pools(config, pools, 1);
    }

    #[test]
    fn different_seeds_diverge() {
        let schema = bioinformatics_schema();
        let db = Database::new(schema);
        let mut a = WorkloadGenerator::new(small_config(), 1);
        let mut b = WorkloadGenerator::new(small_config(), 2);
        let streams_differ =
            (0..20).any(|_| a.next_transaction(p(1), &db) != b.next_transaction(p(1), &db));
        assert!(streams_differ);
    }
}
