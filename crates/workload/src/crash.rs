//! The crash-restart churn scenario: kill the store (and every participant's
//! soft state) mid-wave, recover from the write-ahead log, finish the
//! schedule, and check that the confederation ends up exactly where an
//! uninterrupted run would have.
//!
//! This is the end-to-end proof of the durability layer. The same interleaved
//! publish/reconcile/resolve schedule as [`crate::run_churn_scenario`] runs
//! twice with the same seed:
//!
//! * the **baseline** runs uninterrupted over an ephemeral store;
//! * the **durable** run uses a WAL-backed [`CentralStore`]; once the stable
//!   epoch crosses the configured threshold the whole system is dropped
//!   mid-round — simulating a process crash that loses the in-memory
//!   catalogue, every instance, every deferred conflict and every pending
//!   own-publish delta. The store is then recovered from disk
//!   ([`CentralStore::recover`]), every participant is rebuilt from the store
//!   alone ([`Participant::rebuild_from_store`]), and the schedule resumes at
//!   the exact point it was interrupted.
//!
//! The report records whether the recovered run reached identical decisions
//! (accept/reject/defer/resolution totals and final state ratio) and whether
//! the recovered catalogue was byte-identical to the pre-crash one (compared
//! through the canonical durable-state `Debug` rendering).

use crate::generator::WorkloadGenerator;
use crate::scenario::{mutual_trust_policies, ChurnConfig};
use orchestra::{CdssSystem, Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::ParticipantId;
use orchestra_store::CentralStore;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Configuration of one crash-restart run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashChurnConfig {
    /// The underlying churn schedule (participants, rounds, workload, seed).
    pub churn: ChurnConfig,
    /// The crash fires right after the participant step in which the store's
    /// stable epoch reaches this value — mid-round, so some of the round's
    /// due participants have reconciled and the rest have not.
    pub crash_at_epoch: u64,
    /// Take a compacting snapshot every this many rounds (0 = never), so the
    /// recovery path exercises snapshot-load *plus* WAL replay rather than a
    /// full-log replay.
    pub snapshot_every_rounds: usize,
}

impl CrashChurnConfig {
    /// A crash point roughly 60% into the schedule of the given churn
    /// configuration, with a snapshot a few rounds before it.
    pub fn for_churn(churn: ChurnConfig) -> Self {
        let expected_epochs = (churn.participants * churn.rounds) as u64;
        CrashChurnConfig {
            crash_at_epoch: (expected_epochs * 6 / 10).max(1),
            snapshot_every_rounds: (churn.rounds / 3).max(1),
            churn,
        }
    }
}

/// Decision totals of one (possibly interrupted) churn run — everything that
/// must be identical between the baseline and the recovered run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnTotals {
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Publish calls performed.
    pub publishes: usize,
    /// Root transactions accepted.
    pub accepted: usize,
    /// Root transactions rejected.
    pub rejected: usize,
    /// Root transactions deferred.
    pub deferred: usize,
    /// Conflict-resolution rounds performed.
    pub resolutions: usize,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
}

/// The outcome of one crash-restart experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashChurnReport {
    /// Totals of the uninterrupted baseline run.
    pub baseline: ChurnTotals,
    /// Totals of the crashed-and-recovered run.
    pub recovered: ChurnTotals,
    /// Whether the two runs reached identical decisions (they must).
    pub decisions_match: bool,
    /// Whether the recovered catalogue's durable state was byte-identical to
    /// the pre-crash one (canonical `Debug` comparison; it must be).
    pub durable_state_identical: bool,
    /// The round the crash interrupted.
    pub crash_round: usize,
    /// The index of the last participant step completed before the crash.
    pub crash_participant_index: usize,
    /// Stable epoch at the crash.
    pub crash_epoch: u64,
    /// Records in the current WAL generation at the crash.
    pub wal_records_at_crash: u64,
    /// Wall-clock cost of `CentralStore::recover` (snapshot load + replay).
    pub recover_micros: u64,
}

pub(crate) fn make_generators(
    config: &ChurnConfig,
    ids: &[ParticipantId],
) -> Vec<WorkloadGenerator> {
    // Same per-participant seed derivation as `run_churn_scenario`, so the
    // schedules (and therefore the trajectories) stay comparable.
    ids.iter()
        .map(|id| {
            WorkloadGenerator::new(
                config.workload.clone(),
                config.seed.wrapping_add(u64::from(id.as_u32()) * 6151),
            )
        })
        .collect()
}

/// One participant's actions in one round of the churn schedule: execute and
/// publish a batch, reconcile if due, resolve deferred conflicts if due.
/// Mirrors `run_churn_scenario` exactly.
pub(crate) fn step(
    system: &mut CdssSystem<CentralStore>,
    generators: &mut [WorkloadGenerator],
    config: &ChurnConfig,
    round: usize,
    idx: usize,
    id: ParticipantId,
    totals: &mut ChurnTotals,
) {
    let batch = {
        let participant = system.participant(id).expect("participant exists");
        generators[idx].next_batch(id, participant.instance(), config.transactions_per_publish)
    };
    for updates in batch {
        let _ = system.execute(id, updates);
    }
    if system.publish(id).expect("publish succeeds").is_some() {
        totals.publishes += 1;
    }
    let interval = 1 + idx % config.max_reconcile_interval.max(1);
    if (round + idx) % interval == 0 {
        reconcile_one(system, id, totals);
    }
    if config.resolve_every > 0 && (round + idx) % config.resolve_every == 0 {
        let groups: Vec<_> = system
            .participant(id)
            .expect("participant exists")
            .deferred_conflicts()
            .iter()
            .map(|g| g.key.clone())
            .collect();
        if !groups.is_empty() {
            let choices: Vec<orchestra_recon::ResolutionChoice> = groups
                .into_iter()
                .map(|key| orchestra_recon::ResolutionChoice { group: key, chosen_option: Some(0) })
                .collect();
            system.resolve_conflicts(id, &choices).expect("resolution succeeds");
            totals.resolutions += 1;
        }
    }
}

pub(crate) fn reconcile_one(
    system: &mut CdssSystem<CentralStore>,
    id: ParticipantId,
    totals: &mut ChurnTotals,
) {
    let report = system.reconcile(id).expect("reconcile succeeds");
    totals.reconciliations += 1;
    totals.accepted += report.accepted.len();
    totals.rejected += report.rejected.len();
    totals.deferred += report.deferred.len();
}

pub(crate) fn fresh_system(store: CentralStore, config: &ChurnConfig) -> CdssSystem<CentralStore> {
    let mut system = CdssSystem::new(bioinformatics_schema(), store);
    for policy in mutual_trust_policies(config.participants, 1) {
        system.add_participant(ParticipantConfig::new(policy)).expect("unique participants");
    }
    system
}

/// Runs the churn schedule uninterrupted over the given store and returns the
/// decision totals.
fn run_uninterrupted(store: CentralStore, config: &ChurnConfig) -> ChurnTotals {
    let mut system = fresh_system(store, config);
    let ids = system.participant_ids();
    let mut generators = make_generators(config, &ids);
    let mut totals = ChurnTotals::default();
    for round in 0..config.rounds {
        for (idx, &id) in ids.iter().enumerate() {
            step(&mut system, &mut generators, config, round, idx, id, &mut totals);
        }
    }
    for &id in &ids {
        reconcile_one(&mut system, id, &mut totals);
    }
    totals.state_ratio = system.state_ratio_for("Function");
    totals
}

/// Runs the crash-restart experiment in `dir` (which must not already hold a
/// durable store). See the module docs for the full shape.
///
/// Panics if the schedule finishes before the stable epoch reaches
/// `crash_at_epoch` — pick a crash point inside the schedule.
pub fn run_crash_restart_scenario(dir: &Path, config: &CrashChurnConfig) -> CrashChurnReport {
    let churn = &config.churn;
    let schema = bioinformatics_schema();

    // Uninterrupted baseline over an ephemeral store (durability must not
    // change decisions, so the cheaper store is the reference).
    let baseline = run_uninterrupted(CentralStore::new(schema.clone()), churn);

    // The durable run, up to the crash.
    let store = CentralStore::durable(schema.clone(), dir).expect("fresh durability directory");
    let mut system = fresh_system(store, churn);
    let ids = system.participant_ids();
    let mut generators = make_generators(churn, &ids);
    let mut totals = ChurnTotals::default();
    let mut crash_point: Option<(usize, usize)> = None;
    'schedule: for round in 0..churn.rounds {
        if config.snapshot_every_rounds > 0
            && round > 0
            && round % config.snapshot_every_rounds == 0
        {
            system.store().snapshot().expect("snapshot succeeds");
        }
        for (idx, &id) in ids.iter().enumerate() {
            step(&mut system, &mut generators, churn, round, idx, id, &mut totals);
            if system.store().catalog().largest_stable_epoch().as_u64() >= config.crash_at_epoch {
                crash_point = Some((round, idx));
                break 'schedule;
            }
        }
    }
    let (crash_round, crash_idx) =
        crash_point.expect("crash_at_epoch lies beyond the schedule; lower it or raise rounds");

    // The crash: record what the durable state looked like, then drop every
    // in-memory structure — catalogue, sessions, instances, soft state.
    let crash_epoch = system.store().catalog().largest_stable_epoch().as_u64();
    let fingerprint = format!("{:?}", system.store().catalog());
    let wal_records_at_crash =
        system.store().catalog().durability().file_backend().expect("durable store").wal_records();
    drop(system);

    // Recovery: reopen the store from disk, then rebuild every participant
    // from the store alone.
    let recover_start = Instant::now();
    let store = CentralStore::recover(dir).expect("store recovers");
    let recover_micros = recover_start.elapsed().as_micros() as u64;
    let durable_state_identical = format!("{:?}", store.catalog()) == fingerprint;
    let rebuilt: Vec<Participant> = mutual_trust_policies(churn.participants, 1)
        .into_iter()
        .map(|policy| {
            Participant::rebuild_from_store(schema.clone(), ParticipantConfig::new(policy), &store)
                .expect("participant rebuilds")
        })
        .collect();
    let mut system = CdssSystem::new(schema, store);
    for participant in rebuilt {
        system.adopt_participant(participant).expect("unique participants");
    }

    // Resume the schedule at the participant right after the crash.
    for round in crash_round..churn.rounds {
        if config.snapshot_every_rounds > 0
            && round > crash_round
            && round % config.snapshot_every_rounds == 0
        {
            system.store().snapshot().expect("snapshot succeeds");
        }
        let start_idx = if round == crash_round { crash_idx + 1 } else { 0 };
        for (idx, &id) in ids.iter().enumerate().skip(start_idx) {
            step(&mut system, &mut generators, churn, round, idx, id, &mut totals);
        }
    }
    for &id in &ids {
        reconcile_one(&mut system, id, &mut totals);
    }
    totals.state_ratio = system.state_ratio_for("Function");

    let decisions_match = totals == baseline;
    CrashChurnReport {
        baseline,
        recovered: totals,
        decisions_match,
        durable_state_identical,
        crash_round,
        crash_participant_index: crash_idx,
        crash_epoch,
        wal_records_at_crash,
        recover_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("orchestra-crash-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_churn() -> ChurnConfig {
        // A small key universe under heavy skew forces equal-priority
        // conflicts, so deferred soft state exists on both sides of the
        // crash and post-recovery resolutions exercise the rebuilt groups.
        ChurnConfig {
            participants: 4,
            rounds: 10,
            transactions_per_publish: 1,
            max_reconcile_interval: 3,
            resolve_every: 3,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 12,
                function_pool: 8,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 1.2,
                xref_mean: 7.3,
            },
            seed: 11,
        }
    }

    #[test]
    fn crash_restart_reaches_identical_decisions() {
        let dir = tmp_dir("identical");
        let config = CrashChurnConfig::for_churn(tiny_churn());
        let report = run_crash_restart_scenario(&dir, &config);
        assert!(report.durable_state_identical, "recovered durable state diverged");
        assert!(
            report.decisions_match,
            "baseline {:?} != recovered {:?}",
            report.baseline, report.recovered
        );
        assert!(report.baseline.accepted > 0, "churn must share data");
        assert!(report.baseline.deferred > 0, "schedule must defer conflicts");
        assert!(report.baseline.resolutions > 0, "schedule must resolve conflicts");
        assert!(report.wal_records_at_crash > 0);
        assert!(report.crash_epoch >= config.crash_at_epoch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_restart_without_snapshots_replays_the_whole_log() {
        let dir = tmp_dir("replay-only");
        let mut config = CrashChurnConfig::for_churn(tiny_churn());
        config.snapshot_every_rounds = 0;
        let report = run_crash_restart_scenario(&dir, &config);
        assert!(report.durable_state_identical);
        assert!(report.decisions_match);
        // No snapshot ever ran: the WAL still holds the full history
        // (Init + every record up to the crash).
        assert!(report.wal_records_at_crash > report.crash_epoch);
        std::fs::remove_dir_all(&dir).ok();
    }
}
