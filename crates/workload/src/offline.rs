//! The offline-churn scenario: the interleaved publish/reconcile/resolve
//! schedule with rolling network partitions over a causal-mode store.
//!
//! Two questions are answered here, matching the two halves of the causal
//! epoch refactor:
//!
//! * **Mode invariance** — the *same* unpartitioned schedule is run once over
//!   a scalar-epoch store and once over a causal-DAG store. Client-side stamp
//!   allocation must not change a single decision: the [`ChurnTotals`] of the
//!   two runs must be identical (`decisions_match`).
//! * **Partition tolerance** — a causal-mode run where a rotating subset of
//!   participants goes offline for a window of rounds. Offline participants
//!   keep executing and publishing (their batches buffer client-side with
//!   pre-allocated causal stamps) but cannot reconcile; at the end of each
//!   window they heal, replaying the buffered publications in per-publisher
//!   FIFO order. After the final heal and a catch-up phase the confederation
//!   must fully converge: nobody offline, no buffered batches, and the
//!   store's convergence horizon caught up to the largest stable epoch
//!   (`converged_after_heal`).
//!
//! An exact totals match between the partitioned and unpartitioned runs is
//! *not* expected — the workload generators read each participant's evolving
//! instance, so diverging timelines diverge the workload itself. Convergence
//! of the confederation is the meaningful property, and it is checked against
//! the store's own retention machinery rather than a scenario-side shadow.

use crate::crash::{fresh_system, make_generators, reconcile_one, step, ChurnTotals};
use crate::retention::resolve_everything;
use crate::scenario::ChurnConfig;
use orchestra::CdssSystem;
use orchestra_model::ParticipantId;
use orchestra_store::{CentralStore, UpdateStore};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which epoch allocator the store runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochMode {
    /// The classic store-side scalar counter.
    Scalar,
    /// Client-side causal stamps reconciled through the store's causal
    /// registry.
    Causal,
}

/// Configuration of one offline-churn run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineChurnConfig {
    /// The underlying churn schedule (participants, rounds, workload, seed).
    pub churn: ChurnConfig,
    /// Start a partition window every this many rounds (0 = never partition).
    /// Must be larger than `partition_rounds` so windows cannot overlap.
    pub partition_every: usize,
    /// How many rounds each partition window lasts.
    pub partition_rounds: usize,
    /// How many participants go offline per window. The victims rotate, so
    /// over the run every participant spends time on the wrong side of the
    /// partition.
    pub partition_size: usize,
}

impl OfflineChurnConfig {
    /// A partition cadence proportional to the schedule: a window roughly
    /// every eighth of the run, each lasting a third of the gap, taking a
    /// quarter of the confederation offline.
    pub fn for_churn(churn: ChurnConfig) -> Self {
        let every = (churn.rounds / 8).max(4);
        OfflineChurnConfig {
            partition_every: every,
            partition_rounds: (every / 3).max(1),
            partition_size: (churn.participants / 4).max(1),
            churn,
        }
    }

    /// The same schedule with partitions disabled — the mode-invariance
    /// baseline.
    pub fn unpartitioned(&self) -> Self {
        OfflineChurnConfig { partition_every: 0, ..self.clone() }
    }
}

/// The outcome of one offline-churn run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineChurnResult {
    /// Decision totals of the run (online publishes only).
    pub totals: ChurnTotals,
    /// Partition windows opened.
    pub partitions: usize,
    /// Batches published while offline and delivered at heal time.
    pub healed_batches: usize,
    /// Largest stable epoch at the end of the run.
    pub final_epoch: u64,
    /// The store's convergence horizon after the catch-up phase.
    pub convergence_horizon: u64,
    /// Whether the confederation fully converged after the last heal: nobody
    /// offline, no buffered publications, and the convergence horizon caught
    /// up to the largest stable epoch.
    pub converged_after_heal: bool,
    /// The store's causal frontier rendering (empty string in scalar mode).
    pub final_frontier: String,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

/// Runs the offline-churn schedule over the given store in the given mode.
///
/// With `partition_every == 0` this is exactly the plain churn schedule (plus
/// the catch-up phase), usable as the mode-invariance baseline.
pub fn run_offline_scenario(
    store: CentralStore,
    mode: EpochMode,
    config: &OfflineChurnConfig,
) -> OfflineChurnResult {
    assert!(
        config.partition_every == 0 || config.partition_every > config.partition_rounds,
        "partition windows must not overlap"
    );
    if mode == EpochMode::Causal {
        store.enable_causal_mode().expect("fresh store accepts causal mode");
    }
    // Fix the membership up front so the convergence horizon is meaningful at
    // the end of the run.
    store.catalog().close_membership().expect("membership closes");

    let churn = &config.churn;
    let start = Instant::now();
    let mut system = fresh_system(store, churn);
    let ids = system.participant_ids();
    let mut generators = make_generators(churn, &ids);
    let mut totals = ChurnTotals::default();
    let mut partitions = 0usize;
    let mut healed_batches = 0usize;
    let mut heal_round: Option<usize> = None;
    let mut rotation = 0usize;

    for round in 0..churn.rounds {
        if heal_round == Some(round) {
            healed_batches += heal(&mut system);
            heal_round = None;
        }
        if config.partition_every > 0
            && heal_round.is_none()
            && round > 0
            && round % config.partition_every == 0
            && round + config.partition_rounds < churn.rounds
        {
            let span = config.partition_size.min(ids.len().saturating_sub(1)).max(1);
            let victims: Vec<ParticipantId> =
                (0..span).map(|j| ids[(rotation + j) % ids.len()]).collect();
            system.partition(&victims).expect("partition succeeds");
            rotation = (rotation + span) % ids.len();
            partitions += 1;
            heal_round = Some(round + config.partition_rounds);
        }
        for (idx, &id) in ids.iter().enumerate() {
            let offline = system.participant(id).map(|p| p.is_offline()).unwrap_or(false);
            if offline {
                offline_step(&mut system, &mut generators, churn, idx, id);
            } else {
                step(&mut system, &mut generators, churn, round, idx, id, &mut totals);
            }
        }
    }

    // Tail heal (a window may still be open) and catch-up: reconcile all →
    // resolve everything → reconcile all, as in the retention scenario.
    if !system.offline_ids().is_empty() {
        healed_batches += heal(&mut system);
    }
    for &id in &ids {
        reconcile_one(&mut system, id, &mut totals);
    }
    resolve_everything(&mut system, &mut totals);
    for &id in &ids {
        reconcile_one(&mut system, id, &mut totals);
    }
    totals.state_ratio = system.state_ratio_for("Function");

    let buffered: usize = ids
        .iter()
        .filter_map(|&id| system.participant(id))
        .map(|p| p.buffered_publications().len())
        .sum();
    let catalog = system.store().catalog();
    let final_epoch = catalog.largest_stable_epoch().as_u64();
    let convergence_horizon = catalog.convergence_horizon().as_u64();
    let converged_after_heal = system.offline_ids().is_empty()
        && buffered == 0
        && final_epoch > 0
        && convergence_horizon == final_epoch;
    let final_frontier = match mode {
        EpochMode::Scalar => String::new(),
        EpochMode::Causal => system.store().causal_frontier().to_string(),
    };

    OfflineChurnResult {
        totals,
        partitions,
        healed_batches,
        final_epoch,
        convergence_horizon,
        converged_after_heal,
        final_frontier,
        wall: start.elapsed(),
    }
}

/// One offline participant's actions in one round: execute the generated
/// batch and publish it into the client-side buffer. Reconciliation and
/// resolution are store conversations, so they wait for the heal.
fn offline_step(
    system: &mut CdssSystem<CentralStore>,
    generators: &mut [crate::generator::WorkloadGenerator],
    config: &ChurnConfig,
    idx: usize,
    id: ParticipantId,
) {
    let batch = {
        let participant = system.participant(id).expect("participant exists");
        generators[idx].next_batch(id, participant.instance(), config.transactions_per_publish)
    };
    for updates in batch {
        let _ = system.execute(id, updates);
    }
    system.publish(id).expect("offline publish buffers");
}

fn heal(system: &mut CdssSystem<CentralStore>) -> usize {
    system.heal().expect("heal succeeds").iter().map(|(_, epochs)| epochs.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;
    use orchestra_model::schema::bioinformatics_schema;

    fn mini_churn() -> ChurnConfig {
        ChurnConfig {
            participants: 4,
            rounds: 24,
            transactions_per_publish: 2,
            max_reconcile_interval: 3,
            resolve_every: 4,
            workload: WorkloadConfig {
                key_universe: 24,
                function_pool: 12,
                ..WorkloadConfig::default()
            },
            seed: 11235,
        }
    }

    #[test]
    fn scalar_and_causal_modes_reach_identical_decisions() {
        let config = OfflineChurnConfig::for_churn(mini_churn()).unpartitioned();
        let scalar = run_offline_scenario(
            CentralStore::new(bioinformatics_schema()),
            EpochMode::Scalar,
            &config,
        );
        let causal = run_offline_scenario(
            CentralStore::new(bioinformatics_schema()),
            EpochMode::Causal,
            &config,
        );
        assert_eq!(scalar.totals, causal.totals);
        assert_eq!(scalar.partitions, 0);
        assert!(causal.final_frontier.contains("p1:"));
        assert!(scalar.converged_after_heal, "unpartitioned runs converge too");
        assert!(causal.converged_after_heal);
    }

    #[test]
    fn partitioned_causal_run_heals_and_converges() {
        let config = OfflineChurnConfig::for_churn(mini_churn());
        let result = run_offline_scenario(
            CentralStore::new(bioinformatics_schema()),
            EpochMode::Causal,
            &config,
        );
        assert!(result.partitions > 0, "schedule long enough to partition");
        assert!(result.healed_batches > 0, "offline publishes were delivered");
        assert!(
            result.converged_after_heal,
            "confederation converges after heal: horizon {} vs stable {}",
            result.convergence_horizon, result.final_epoch
        );
        assert!(result.totals.state_ratio > 0.99);
    }
}
