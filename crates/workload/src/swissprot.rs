//! Synthetic SWISS-PROT-style value pools.
//!
//! SWISS-PROT catalogues proteins per organism and annotates each with a
//! curated function; GenBank-style cross-reference accessions point at
//! related database entries. The real database is not redistributable, so
//! this module synthesises pools with the same *shape*: a universe of
//! `(organism, protein)` keys, a pool of protein-function phrases to draw
//! update values from, and cross-reference database names and accession
//! strings for the secondary table.

use orchestra_model::{Tuple, Value};
use serde::{Deserialize, Serialize};

/// Organism names used to synthesise keys (model organisms that dominate
/// curated protein databases).
const ORGANISMS: &[&str] = &[
    "human",
    "mouse",
    "rat",
    "zebrafish",
    "fruitfly",
    "yeast",
    "ecoli",
    "arabidopsis",
    "celegans",
    "xenopus",
    "chicken",
    "pig",
    "cow",
    "dog",
    "macaque",
];

/// Protein-function phrase fragments combined to synthesise a function pool.
const FUNCTION_ROOTS: &[&str] = &[
    "cell-metabolism",
    "immune-response",
    "cellular-respiration",
    "signal-transduction",
    "dna-repair",
    "protein-folding",
    "apoptosis-regulation",
    "transcription-factor",
    "ion-transport",
    "lipid-biosynthesis",
    "oxidative-stress-response",
    "cell-cycle-control",
    "vesicle-trafficking",
    "rna-splicing",
    "chromatin-remodeling",
    "kinase-activity",
    "phosphatase-activity",
    "ubiquitin-ligase",
    "proteolysis",
    "translation-initiation",
];

/// Cross-reference database names used for the secondary `XRef` relation.
const XREF_DATABASES: &[&str] =
    &["genbank", "embl", "pdb", "interpro", "pfam", "prosite", "refseq", "ensembl"];

/// Deterministic pools of synthetic SWISS-PROT-like values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwissProtPools {
    keys: Vec<(String, String)>,
    functions: Vec<String>,
}

impl SwissProtPools {
    /// Builds pools with `key_universe` distinct `(organism, protein)` keys
    /// and `function_pool` distinct protein-function values.
    pub fn new(key_universe: usize, function_pool: usize) -> Self {
        let keys = (0..key_universe)
            .map(|i| {
                let organism = ORGANISMS[i % ORGANISMS.len()].to_owned();
                let protein = format!("prot{:05}", i);
                (organism, protein)
            })
            .collect();
        let functions = (0..function_pool)
            .map(|i| {
                let root = FUNCTION_ROOTS[i % FUNCTION_ROOTS.len()];
                if i < FUNCTION_ROOTS.len() {
                    root.to_owned()
                } else {
                    format!("{root}-variant{}", i / FUNCTION_ROOTS.len())
                }
            })
            .collect();
        SwissProtPools { keys, functions }
    }

    /// Number of distinct keys in the universe.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct function values.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// The `(organism, protein)` key at an index.
    pub fn key(&self, index: usize) -> (&str, &str) {
        let (o, p) = &self.keys[index % self.keys.len()];
        (o, p)
    }

    /// The function value at an index (0 is the most popular rank when
    /// combined with a Zipfian sampler).
    pub fn function(&self, index: usize) -> &str {
        &self.functions[index % self.functions.len()]
    }

    /// Builds a `Function` tuple for the key at `key_index` carrying the
    /// function value at `function_index`.
    pub fn function_tuple(&self, key_index: usize, function_index: usize) -> Tuple {
        let (organism, protein) = self.key(key_index);
        Tuple::new(vec![
            Value::text(organism),
            Value::text(protein),
            Value::text(self.function(function_index)),
        ])
    }

    /// Builds the `XRef` tuple number `n` for the key at `key_index`.
    pub fn xref_tuple(&self, key_index: usize, n: usize) -> Tuple {
        let (organism, protein) = self.key(key_index);
        let db = XREF_DATABASES[n % XREF_DATABASES.len()];
        Tuple::new(vec![
            Value::text(organism),
            Value::text(protein),
            Value::text(db),
            Value::text(format!("{}-{}-{:04}", db.to_uppercase(), protein, n)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_have_requested_sizes_and_distinct_keys() {
        let pools = SwissProtPools::new(500, 200);
        assert_eq!(pools.key_count(), 500);
        assert_eq!(pools.function_count(), 200);
        let distinct: HashSet<_> = (0..500).map(|i| pools.key(i)).collect();
        assert_eq!(distinct.len(), 500);
        let distinct_fn: HashSet<_> = (0..200).map(|i| pools.function(i)).collect();
        assert_eq!(distinct_fn.len(), 200);
    }

    #[test]
    fn tuples_conform_to_the_bioinformatics_schema() {
        let schema = orchestra_model::schema::bioinformatics_schema();
        let pools = SwissProtPools::new(50, 30);
        let f = pools.function_tuple(3, 7);
        schema.relation("Function").unwrap().validate_tuple(&f).unwrap();
        let x = pools.xref_tuple(3, 2);
        schema.relation("XRef").unwrap().validate_tuple(&x).unwrap();
    }

    #[test]
    fn indexes_wrap_safely() {
        let pools = SwissProtPools::new(10, 5);
        assert_eq!(pools.key(3), pools.key(13));
        assert_eq!(pools.function(2), pools.function(7));
    }

    #[test]
    fn xref_tuples_for_the_same_key_are_distinct() {
        let pools = SwissProtPools::new(10, 5);
        let a = pools.xref_tuple(1, 0);
        let b = pools.xref_tuple(1, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn pools_are_deterministic() {
        let a = SwissProtPools::new(100, 40);
        let b = SwissProtPools::new(100, 40);
        assert_eq!(a.function_tuple(17, 23), b.function_tuple(17, 23));
    }
}
