//! Zipfian sampling.

use rand::Rng;

/// A sampler for the Zipfian (zeta) distribution over ranks `1..=n` with
/// exponent `s`: `P(rank = k) ∝ 1 / k^s`.
///
/// The paper's workload draws update values from a Zipfian distribution with
/// characteristic exponent `s = 1.5` over the pool of protein functions,
/// which concentrates most updates on a small number of popular values — the
/// property that drives conflicts in the evaluation.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative distribution over ranks (index `k-1` holds `P(rank <= k)`).
    /// Left empty for the uniform (`s == 0`) fast path, where materialising
    /// a CDF over a huge rank space would cost `8n` bytes per sampler for no
    /// information.
    cdf: Vec<f64>,
    /// The number of ranks.
    n: usize,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s`. `s == 0` is the
    /// uniform distribution and is served without materialising the CDF, so
    /// rank spaces in the millions stay cheap.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        if s == 0.0 {
            return ZipfSampler { cdf: Vec::new(), n };
        }
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point drift.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf: weights, n }
    }

    /// The number of ranks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the sampler has no ranks (never: `new` requires at
    /// least one).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Samples a rank in `0..n` (0 is the most popular rank).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.cdf.is_empty() {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability of a given rank (0-based).
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.n {
            return 0.0;
        }
        if self.cdf.is_empty() {
            return 1.0 / self.n as f64;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(100, 1.5);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(
                z.probability(r) <= z.probability(r - 1) + 1e-12,
                "rank {r} more probable than rank {}",
                r - 1
            );
        }
        assert_eq!(z.probability(1000), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn sampling_is_heavily_skewed_for_s_1_5() {
        let z = ZipfSampler::new(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut head = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1.5, the top 10 of 1000 ranks carry well over half of the
        // mass.
        let fraction = head as f64 / trials as f64;
        assert!(fraction > 0.6, "head fraction was {fraction}");
    }

    #[test]
    fn samples_are_within_range_and_deterministic_per_seed() {
        let z = ZipfSampler::new(7, 1.5);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let sa = z.sample(&mut a);
            let sb = z.sample(&mut b);
            assert!(sa < 7);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn uniform_fast_path_skips_the_cdf_and_covers_every_rank() {
        let z = ZipfSampler::new(1_000_000, 0.0);
        assert_eq!(z.len(), 1_000_000);
        assert!(!z.is_empty());
        assert!((z.probability(0) - 1e-6).abs() < 1e-12);
        assert_eq!(z.probability(0), z.probability(999_999));
        assert_eq!(z.probability(1_000_000), 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let small = ZipfSampler::new(8, 0.0);
        let mut seen = [0usize; 8];
        for _ in 0..4_000 {
            let rank = small.sample(&mut rng);
            seen[rank] += 1;
        }
        // Uniform: every rank hit, no rank dominating.
        assert!(seen.iter().all(|&c| c > 300), "counts {seen:?}");
    }

    #[test]
    fn single_rank_sampler_always_returns_zero() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.5);
    }
}
