//! Synthetic SWISS-PROT-style workload generation and experiment scenarios.
//!
//! The paper evaluates Orchestra on a synthetic workload modelled after the
//! process of updating a curated bioinformatics database: transactions of
//! insertions and replacements over a `Function(organism, protein, function)`
//! relation, with update values drawn from a Zipfian distribution (s = 1.5)
//! over the set of protein functions, and an average of 7.3 cross-reference
//! tuples inserted into a secondary table for every newly inserted primary
//! key. This crate reproduces that generator and adds a scenario driver that
//! runs whole multi-participant experiments and reports the paper's metrics
//! (state ratio, store time, local time).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crash;
pub mod generator;
pub mod offline;
pub mod retention;
pub mod scale;
pub mod scenario;
pub mod swissprot;
pub mod zipf;

pub use crash::{run_crash_restart_scenario, ChurnTotals, CrashChurnConfig, CrashChurnReport};
pub use generator::{WorkloadConfig, WorkloadGenerator};
pub use offline::{run_offline_scenario, EpochMode, OfflineChurnConfig, OfflineChurnResult};
pub use retention::{
    run_retention_scenario, RetentionChurnConfig, RetentionChurnResult, RetentionSample,
};
pub use scale::{
    run_churn_scale, run_churn_scale_fabric, run_churn_scale_fabric_observed,
    run_churn_scale_observed, zipf_fanin_policies, ScaleConfig, ScaleDriver, ScaleRunResult,
};
pub use scenario::{
    mutual_trust_policies, run_churn_concurrent, run_churn_scenario, run_scenario, ChurnConfig,
    ChurnResult, ChurnSample, ConcurrentChurnResult, ReconcileDriver, ScenarioConfig,
    ScenarioResult,
};
pub use swissprot::SwissProtPools;
pub use zipf::ZipfSampler;
