//! End-to-end experiment scenarios: drive a whole CDSS under the synthetic
//! workload and report the paper's metrics.

use crate::generator::{WorkloadConfig, WorkloadGenerator};
use orchestra::{CdssSystem, ParticipantConfig, TimingBreakdown};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy};
use orchestra_store::UpdateStore;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of participants. As in the paper's experiments, every
    /// participant trusts every other at the same priority, so conflicts must
    /// be deferred rather than automatically resolved.
    pub participants: usize,
    /// Number of transactions each participant publishes between
    /// reconciliations (the paper's "RI").
    pub transactions_between_reconciliations: usize,
    /// Number of publish-and-reconcile rounds each participant performs.
    pub rounds: usize,
    /// Workload generator parameters (transaction size, key universe, Zipf
    /// exponents, cross-reference mean).
    pub workload: WorkloadConfig,
    /// Base random seed; each participant derives its own stream from it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            participants: 10,
            transactions_between_reconciliations: 4,
            rounds: 3,
            workload: WorkloadConfig::default(),
            seed: 42,
        }
    }
}

/// Aggregate results of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioResult {
    /// Final state ratio over the `Function` relation (the paper's quality
    /// metric).
    pub state_ratio: f64,
    /// Final state ratio averaged over all populated relations.
    pub overall_state_ratio: f64,
    /// Number of reconciliations performed in total.
    pub reconciliations: usize,
    /// Total root transactions accepted across all reconciliations.
    pub accepted: usize,
    /// Total root transactions rejected.
    pub rejected: usize,
    /// Total root transactions deferred.
    pub deferred: usize,
    /// Average store time per participant over the whole run.
    pub store_time_per_participant: Duration,
    /// Average local time per participant over the whole run.
    pub local_time_per_participant: Duration,
    /// Average time per reconciliation (store + local).
    pub time_per_reconciliation: Duration,
}

impl ScenarioResult {
    /// Average total (store + local) time per participant.
    pub fn total_time_per_participant(&self) -> Duration {
        self.store_time_per_participant + self.local_time_per_participant
    }
}

/// Builds the trust policies of the paper's evaluation: every participant
/// trusts every other participant at the same priority.
pub fn mutual_trust_policies(participants: usize, priority: u32) -> Vec<TrustPolicy> {
    (1..=participants as u32)
        .map(|i| {
            let mut policy = TrustPolicy::new(ParticipantId(i));
            for j in 1..=participants as u32 {
                if i != j {
                    policy = policy.trusting(ParticipantId(j), priority);
                }
            }
            policy
        })
        .collect()
}

/// Runs one experiment: `rounds` cycles in which every participant executes
/// its share of the workload, publishes, and reconciles.
pub fn run_scenario<S: UpdateStore>(store: S, config: &ScenarioConfig) -> ScenarioResult {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for policy in mutual_trust_policies(config.participants, 1) {
        system.add_participant(ParticipantConfig::new(policy));
    }
    let ids = system.participant_ids();

    let mut generators: Vec<WorkloadGenerator> = ids
        .iter()
        .map(|id| {
            WorkloadGenerator::new(
                config.workload.clone(),
                config.seed.wrapping_add(u64::from(id.as_u32()) * 7919),
            )
        })
        .collect();

    let mut result = ScenarioResult::default();
    let mut total_timing = TimingBreakdown::default();

    for _round in 0..config.rounds {
        for (idx, &id) in ids.iter().enumerate() {
            // Generate and execute this participant's batch.
            let batch = {
                let participant = system.participant(id).expect("participant exists");
                generators[idx].next_batch(
                    id,
                    participant.instance(),
                    config.transactions_between_reconciliations,
                )
            };
            for updates in batch {
                // Transactions are generated against the instance as of the
                // start of the batch; apply failures (e.g. a reconciliation
                // in a previous round changed the value) are skipped, which
                // mirrors a curator abandoning an edit that no longer
                // applies.
                let _ = system.execute(id, updates);
            }
            let report = system.publish_and_reconcile(id).expect("publish and reconcile succeeds");
            result.reconciliations += 1;
            result.accepted += report.accepted.len();
            result.rejected += report.rejected.len();
            result.deferred += report.deferred.len();
            total_timing.accumulate(report.timing);
        }
    }

    result.state_ratio = system.state_ratio_for("Function");
    result.overall_state_ratio = system.state_ratio();
    let participants = config.participants.max(1) as u32;
    result.store_time_per_participant = total_timing.store / participants;
    result.local_time_per_participant = total_timing.local / participants;
    result.time_per_reconciliation = total_timing.total() / (result.reconciliations.max(1) as u32);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_store::{CentralStore, DhtStore};

    fn tiny_config() -> ScenarioConfig {
        ScenarioConfig {
            participants: 4,
            transactions_between_reconciliations: 3,
            rounds: 2,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 60,
                function_pool: 20,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.9,
                xref_mean: 7.3,
            },
            seed: 1,
        }
    }

    #[test]
    fn central_scenario_produces_sane_metrics() {
        let config = tiny_config();
        let result = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        assert_eq!(result.reconciliations, 8);
        assert!(result.state_ratio >= 1.0);
        assert!(result.state_ratio <= config.participants as f64);
        assert!(result.overall_state_ratio >= 1.0);
        assert!(result.accepted > 0, "some sharing must have happened");
        assert!(result.total_time_per_participant() > Duration::ZERO);
    }

    #[test]
    fn dht_scenario_charges_network_time() {
        let config = tiny_config();
        let result = run_scenario(DhtStore::new(bioinformatics_schema()), &config);
        assert_eq!(result.reconciliations, 8);
        // The distributed store's simulated message latency must show up in
        // store time and dominate the central store's.
        let central = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        assert!(result.store_time_per_participant > central.store_time_per_participant);
    }

    #[test]
    fn identical_seeds_reproduce_the_same_state_ratio() {
        let config = tiny_config();
        let a = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        let b = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        assert_eq!(a.state_ratio, b.state_ratio);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.deferred, b.deferred);
    }

    #[test]
    fn mutual_trust_policies_cover_every_pair() {
        let policies = mutual_trust_policies(5, 1);
        assert_eq!(policies.len(), 5);
        for p in &policies {
            assert_eq!(p.rules().len(), 4);
        }
    }

    #[test]
    fn more_contention_raises_the_state_ratio() {
        // A tiny key universe forces more conflicts than a large one.
        let mut contended = tiny_config();
        contended.workload.key_universe = 5;
        contended.workload.key_zipf_exponent = 1.2;
        let mut relaxed = tiny_config();
        relaxed.workload.key_universe = 500;
        relaxed.workload.key_zipf_exponent = 0.2;
        let contended_result = run_scenario(CentralStore::new(bioinformatics_schema()), &contended);
        let relaxed_result = run_scenario(CentralStore::new(bioinformatics_schema()), &relaxed);
        assert!(
            contended_result.state_ratio >= relaxed_result.state_ratio,
            "contended {} < relaxed {}",
            contended_result.state_ratio,
            relaxed_result.state_ratio
        );
    }
}
