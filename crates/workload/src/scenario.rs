//! End-to-end experiment scenarios: drive a whole CDSS under the synthetic
//! workload and report the paper's metrics.

use crate::generator::{WorkloadConfig, WorkloadGenerator};
use orchestra::{CdssSystem, ParticipantConfig, TimingBreakdown};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, TrustPolicy};
use orchestra_store::UpdateStore;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of participants. As in the paper's experiments, every
    /// participant trusts every other at the same priority, so conflicts must
    /// be deferred rather than automatically resolved.
    pub participants: usize,
    /// Number of transactions each participant publishes between
    /// reconciliations (the paper's "RI").
    pub transactions_between_reconciliations: usize,
    /// Number of publish-and-reconcile rounds each participant performs.
    pub rounds: usize,
    /// Workload generator parameters (transaction size, key universe, Zipf
    /// exponents, cross-reference mean).
    pub workload: WorkloadConfig,
    /// Base random seed; each participant derives its own stream from it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            participants: 10,
            transactions_between_reconciliations: 4,
            rounds: 3,
            workload: WorkloadConfig::default(),
            seed: 42,
        }
    }
}

/// Aggregate results of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioResult {
    /// Final state ratio over the `Function` relation (the paper's quality
    /// metric).
    pub state_ratio: f64,
    /// Final state ratio averaged over all populated relations.
    pub overall_state_ratio: f64,
    /// Number of reconciliations performed in total.
    pub reconciliations: usize,
    /// Total root transactions accepted across all reconciliations.
    pub accepted: usize,
    /// Total root transactions rejected.
    pub rejected: usize,
    /// Total root transactions deferred.
    pub deferred: usize,
    /// Average store time per participant over the whole run.
    pub store_time_per_participant: Duration,
    /// Average local time per participant over the whole run.
    pub local_time_per_participant: Duration,
    /// Average time per reconciliation (store + local).
    pub time_per_reconciliation: Duration,
}

impl ScenarioResult {
    /// Average total (store + local) time per participant.
    pub fn total_time_per_participant(&self) -> Duration {
        self.store_time_per_participant + self.local_time_per_participant
    }
}

/// Builds the trust policies of the paper's evaluation: every participant
/// trusts every other participant at the same priority.
pub fn mutual_trust_policies(participants: usize, priority: u32) -> Vec<TrustPolicy> {
    (1..=participants as u32)
        .map(|i| {
            let mut policy = TrustPolicy::new(ParticipantId(i));
            for j in 1..=participants as u32 {
                if i != j {
                    policy = policy.trusting(ParticipantId(j), priority);
                }
            }
            policy
        })
        .collect()
}

/// Runs one experiment: `rounds` cycles in which every participant executes
/// its share of the workload, publishes, and reconciles.
pub fn run_scenario<S: UpdateStore>(store: S, config: &ScenarioConfig) -> ScenarioResult {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for policy in mutual_trust_policies(config.participants, 1) {
        system.add_participant(ParticipantConfig::new(policy)).expect("unique participants");
    }
    let ids = system.participant_ids();

    let mut generators: Vec<WorkloadGenerator> = ids
        .iter()
        .map(|id| {
            WorkloadGenerator::new(
                config.workload.clone(),
                config.seed.wrapping_add(u64::from(id.as_u32()) * 7919),
            )
        })
        .collect();

    let mut result = ScenarioResult::default();
    let mut total_timing = TimingBreakdown::default();

    for _round in 0..config.rounds {
        for (idx, &id) in ids.iter().enumerate() {
            // Generate and execute this participant's batch.
            let batch = {
                let participant = system.participant(id).expect("participant exists");
                generators[idx].next_batch(
                    id,
                    participant.instance(),
                    config.transactions_between_reconciliations,
                )
            };
            for updates in batch {
                // Transactions are generated against the instance as of the
                // start of the batch; apply failures (e.g. a reconciliation
                // in a previous round changed the value) are skipped, which
                // mirrors a curator abandoning an edit that no longer
                // applies.
                let _ = system.execute(id, updates);
            }
            let report = system.publish_and_reconcile(id).expect("publish and reconcile succeeds");
            result.reconciliations += 1;
            result.accepted += report.accepted.len();
            result.rejected += report.rejected.len();
            result.deferred += report.deferred.len();
            total_timing.accumulate(report.timing);
        }
    }

    result.state_ratio = system.state_ratio_for("Function");
    result.overall_state_ratio = system.state_ratio();
    let participants = config.participants.max(1) as u32;
    result.store_time_per_participant = total_timing.store / participants;
    result.local_time_per_participant = total_timing.local / participants;
    result.time_per_reconciliation = total_timing.total() / (result.reconciliations.max(1) as u32);
    result
}

/// Configuration of a churn experiment: a long history of interleaved
/// publish/reconcile schedules, designed to expose how per-reconciliation
/// store work scales as total history grows.
///
/// Every participant executes and publishes a small batch each round, but
/// reconciles only on its own staggered interval (participant `i` reconciles
/// every `1 + i mod max_reconcile_interval` rounds, offset by `i`), so at any
/// moment different participants are lagging the stable frontier by different
/// amounts — the "churn" the update store must serve incrementally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of participants (mutual trust at equal priority).
    pub participants: usize,
    /// Number of publish rounds — the length of the history.
    pub rounds: usize,
    /// Transactions each participant publishes per round.
    pub transactions_per_publish: usize,
    /// Upper bound on the per-participant reconciliation interval.
    pub max_reconcile_interval: usize,
    /// Resolve deferred conflicts every this many rounds (0 = never): each
    /// participant keeps the first option of every conflict group, so
    /// deferred chains stay bounded as they would under real curation.
    pub resolve_every: usize,
    /// Workload generator parameters.
    pub workload: WorkloadConfig,
    /// Base random seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            participants: 8,
            rounds: 60,
            transactions_per_publish: 2,
            max_reconcile_interval: 6,
            resolve_every: 4,
            workload: WorkloadConfig::default(),
            seed: 7,
        }
    }
}

/// One per-reconciliation sample of a churn run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnSample {
    /// How many reconciliations (across all participants) preceded this one.
    pub sequence: usize,
    /// Epochs covered by this reconciliation (new history since the
    /// participant's cursor).
    pub epochs_covered: u64,
    /// Total epochs in the store when the call ran.
    pub total_epochs: u64,
    /// Store-side time of the call (retrieval plus decision recording).
    pub store_micros: u64,
}

/// Aggregate results of one churn run.
#[derive(Debug, Clone, Default)]
pub struct ChurnResult {
    /// Number of reconciliations performed.
    pub reconciliations: usize,
    /// Number of publish calls performed.
    pub publishes: usize,
    /// Total epochs published.
    pub epochs: u64,
    /// Root transactions accepted / rejected / deferred, summed.
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Conflict-resolution rounds performed.
    pub resolutions: usize,
    /// Total store-side time across all reconciliations.
    pub store_time: Duration,
    /// Total local (client algorithm) time across all reconciliations.
    pub local_time: Duration,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
    /// Per-reconciliation samples, in execution order.
    pub samples: Vec<ChurnSample>,
}

impl ChurnResult {
    /// Mean store time per *covered epoch* over a slice of the samples —
    /// the per-unit-of-new-work cost. For an O(new-epochs) store this stays
    /// flat as history grows; for a full-rescan store it climbs.
    pub fn store_micros_per_epoch(&self, from: usize, to: usize) -> f64 {
        let slice = &self.samples[from.min(self.samples.len())..to.min(self.samples.len())];
        let micros: u64 = slice.iter().map(|s| s.store_micros).sum();
        let epochs: u64 = slice.iter().map(|s| s.epochs_covered).sum();
        if epochs == 0 {
            return 0.0;
        }
        micros as f64 / epochs as f64
    }
}

/// Runs a churn experiment: a long interleaved publish/reconcile history over
/// the given store, sampling the store-side cost of every reconciliation.
pub fn run_churn_scenario<S: UpdateStore>(store: S, config: &ChurnConfig) -> ChurnResult {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for policy in mutual_trust_policies(config.participants, 1) {
        system.add_participant(ParticipantConfig::new(policy)).expect("unique participants");
    }
    let ids = system.participant_ids();

    let mut generators: Vec<WorkloadGenerator> = ids
        .iter()
        .map(|id| {
            WorkloadGenerator::new(
                config.workload.clone(),
                config.seed.wrapping_add(u64::from(id.as_u32()) * 6151),
            )
        })
        .collect();

    let mut result = ChurnResult::default();
    let mut last_epoch: Vec<u64> = vec![0; ids.len()];

    let reconcile_one = |system: &mut CdssSystem<S>,
                         result: &mut ChurnResult,
                         last_epoch: &mut Vec<u64>,
                         idx: usize,
                         id| {
        let report = system.reconcile(id).expect("reconcile succeeds");
        let covered = report.epoch.as_u64().saturating_sub(last_epoch[idx]);
        last_epoch[idx] = report.epoch.as_u64();
        result.samples.push(ChurnSample {
            sequence: result.reconciliations,
            epochs_covered: covered,
            total_epochs: report.epoch.as_u64(),
            store_micros: report.timing.store.as_micros() as u64,
        });
        result.reconciliations += 1;
        result.accepted += report.accepted.len();
        result.rejected += report.rejected.len();
        result.deferred += report.deferred.len();
        result.store_time += report.timing.store;
        result.local_time += report.timing.local;
    };

    for round in 0..config.rounds {
        for (idx, &id) in ids.iter().enumerate() {
            let batch = {
                let participant = system.participant(id).expect("participant exists");
                generators[idx].next_batch(
                    id,
                    participant.instance(),
                    config.transactions_per_publish,
                )
            };
            for updates in batch {
                let _ = system.execute(id, updates);
            }
            if system.publish(id).expect("publish succeeds").is_some() {
                result.publishes += 1;
            }
            let interval = 1 + idx % config.max_reconcile_interval.max(1);
            if (round + idx) % interval == 0 {
                reconcile_one(&mut system, &mut result, &mut last_epoch, idx, id);
            }
            // Periodic curation: keep the first option of every open
            // conflict group so deferred chains stay bounded.
            if config.resolve_every > 0 && (round + idx) % config.resolve_every == 0 {
                let groups: Vec<_> = system
                    .participant(id)
                    .expect("participant exists")
                    .deferred_conflicts()
                    .iter()
                    .map(|g| g.key.clone())
                    .collect();
                if !groups.is_empty() {
                    let choices: Vec<orchestra_recon::ResolutionChoice> = groups
                        .into_iter()
                        .map(|key| orchestra_recon::ResolutionChoice {
                            group: key,
                            chosen_option: Some(0),
                        })
                        .collect();
                    system.resolve_conflicts(id, &choices).expect("resolution succeeds");
                    result.resolutions += 1;
                }
            }
        }
    }
    // Final catch-up pass so every participant observes the full history.
    for (idx, &id) in ids.iter().enumerate() {
        reconcile_one(&mut system, &mut result, &mut last_epoch, idx, id);
    }

    result.epochs = result.publishes as u64;
    result.state_ratio = system.state_ratio_for("Function");
    result
}

/// How the concurrent-churn scenario drives its reconciliation waves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconcileDriver {
    /// One participant after another (the baseline the parallel driver is
    /// measured against).
    Sequential,
    /// One thread per due participant, all against the one shared store
    /// (`CdssSystem::reconcile_each_parallel`).
    Parallel,
    /// One async session per due participant, multiplexed through the framed
    /// store service on the single-threaded runtime
    /// (`CdssSystem::reconcile_each_service` with default service knobs).
    Service,
}

/// Aggregate results of one concurrent-churn run.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentChurnResult {
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Publish calls performed.
    pub publishes: usize,
    /// Root transactions accepted / rejected / deferred, summed.
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Conflict-resolution rounds performed.
    pub resolutions: usize,
    /// Total store-side time summed over all reconciliations (thread time,
    /// not wall clock).
    pub store_time: Duration,
    /// Total local (client algorithm) time summed over all reconciliations.
    pub local_time: Duration,
    /// Wall-clock time of the reconciliation waves alone — the quantity the
    /// parallel driver shrinks by overlapping sessions.
    pub reconcile_wall: Duration,
    /// Wall-clock time of the whole run.
    pub total_wall: Duration,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
}

/// Runs the concurrent-churn scenario: the same interleaved
/// publish/reconcile/resolve schedule as [`run_churn_scenario`], but with
/// each round's due reconciliations grouped into one *wave* that the chosen
/// [`ReconcileDriver`] executes — serially, or with one thread per due
/// participant against the shared store.
///
/// Publishes stay sequential in every driver, so the epoch order (and with
/// it every decision) is deterministic; within a wave no publish intervenes,
/// so a participant's session depends only on the pinned log and its own
/// decision record and all drivers reach **identical decisions** — the
/// equivalence the parallel-driver proptest asserts. What changes is the
/// wall clock: the parallel driver overlaps the store latency and the local
/// engine work of all due participants.
pub fn run_churn_concurrent<S: UpdateStore + Sync>(
    store: S,
    config: &ChurnConfig,
    driver: ReconcileDriver,
) -> ConcurrentChurnResult {
    let schema = bioinformatics_schema();
    let mut system = CdssSystem::new(schema, store);
    for policy in mutual_trust_policies(config.participants, 1) {
        system.add_participant(ParticipantConfig::new(policy)).expect("unique participants");
    }
    let ids = system.participant_ids();

    let mut generators: Vec<WorkloadGenerator> = ids
        .iter()
        .map(|id| {
            WorkloadGenerator::new(
                config.workload.clone(),
                config.seed.wrapping_add(u64::from(id.as_u32()) * 6151),
            )
        })
        .collect();

    let mut result = ConcurrentChurnResult::default();
    let run_start = std::time::Instant::now();

    let reconcile_wave = |system: &mut CdssSystem<S>,
                          result: &mut ConcurrentChurnResult,
                          due: &[orchestra_model::ParticipantId]| {
        if due.is_empty() {
            return;
        }
        let wave_start = std::time::Instant::now();
        let reports = match driver {
            ReconcileDriver::Sequential => system.reconcile_each(due),
            ReconcileDriver::Parallel => system.reconcile_each_parallel(due),
            ReconcileDriver::Service => {
                system.reconcile_each_service(due, &orchestra_store::ServiceConfig::default())
            }
        }
        .expect("reconcile wave succeeds");
        result.reconcile_wall += wave_start.elapsed();
        for (_, report) in reports {
            result.reconciliations += 1;
            result.accepted += report.accepted.len();
            result.rejected += report.rejected.len();
            result.deferred += report.deferred.len();
            result.store_time += report.timing.store;
            result.local_time += report.timing.local;
        }
    };

    for round in 0..config.rounds {
        // Phase 1 (sequential in every driver): everyone executes its batch
        // and publishes, so the epoch order is schedule-determined.
        for (idx, &id) in ids.iter().enumerate() {
            let batch = {
                let participant = system.participant(id).expect("participant exists");
                generators[idx].next_batch(
                    id,
                    participant.instance(),
                    config.transactions_per_publish,
                )
            };
            for updates in batch {
                let _ = system.execute(id, updates);
            }
            if system.publish(id).expect("publish succeeds").is_some() {
                result.publishes += 1;
            }
        }

        // Phase 2: the round's due participants reconcile as one wave.
        let due: Vec<orchestra_model::ParticipantId> = ids
            .iter()
            .enumerate()
            .filter(|(idx, _)| {
                let interval = 1 + idx % config.max_reconcile_interval.max(1);
                (round + idx) % interval == 0
            })
            .map(|(_, &id)| id)
            .collect();
        reconcile_wave(&mut system, &mut result, &due);

        // Phase 3 (sequential): periodic curation, keeping the first option
        // of every open conflict group.
        if config.resolve_every > 0 {
            for (idx, &id) in ids.iter().enumerate() {
                if (round + idx) % config.resolve_every != 0 {
                    continue;
                }
                let groups: Vec<_> = system
                    .participant(id)
                    .expect("participant exists")
                    .deferred_conflicts()
                    .iter()
                    .map(|g| g.key.clone())
                    .collect();
                if !groups.is_empty() {
                    let choices: Vec<orchestra_recon::ResolutionChoice> = groups
                        .into_iter()
                        .map(|key| orchestra_recon::ResolutionChoice {
                            group: key,
                            chosen_option: Some(0),
                        })
                        .collect();
                    system.resolve_conflicts(id, &choices).expect("resolution succeeds");
                    result.resolutions += 1;
                }
            }
        }
    }
    // Final catch-up wave so every participant observes the full history.
    reconcile_wave(&mut system, &mut result, &ids);

    result.total_wall = run_start.elapsed();
    result.state_ratio = system.state_ratio_for("Function");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_store::{CentralStore, DhtStore};

    fn tiny_config() -> ScenarioConfig {
        ScenarioConfig {
            participants: 4,
            transactions_between_reconciliations: 3,
            rounds: 2,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 60,
                function_pool: 20,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.9,
                xref_mean: 7.3,
            },
            seed: 1,
        }
    }

    #[test]
    fn central_scenario_produces_sane_metrics() {
        let config = tiny_config();
        let result = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        assert_eq!(result.reconciliations, 8);
        assert!(result.state_ratio >= 1.0);
        assert!(result.state_ratio <= config.participants as f64);
        assert!(result.overall_state_ratio >= 1.0);
        assert!(result.accepted > 0, "some sharing must have happened");
        assert!(result.total_time_per_participant() > Duration::ZERO);
    }

    #[test]
    fn dht_scenario_charges_network_time() {
        let config = tiny_config();
        let result = run_scenario(DhtStore::new(bioinformatics_schema()), &config);
        assert_eq!(result.reconciliations, 8);
        // The distributed store's simulated message latency must show up in
        // store time and dominate the central store's.
        let central = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        assert!(result.store_time_per_participant > central.store_time_per_participant);
    }

    #[test]
    fn identical_seeds_reproduce_the_same_state_ratio() {
        let config = tiny_config();
        let a = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        let b = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        assert_eq!(a.state_ratio, b.state_ratio);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.deferred, b.deferred);
    }

    #[test]
    fn mutual_trust_policies_cover_every_pair() {
        let policies = mutual_trust_policies(5, 1);
        assert_eq!(policies.len(), 5);
        for p in &policies {
            assert_eq!(p.rules().len(), 4);
        }
    }

    fn tiny_churn() -> ChurnConfig {
        ChurnConfig {
            participants: 4,
            rounds: 8,
            transactions_per_publish: 1,
            max_reconcile_interval: 3,
            resolve_every: 3,
            workload: tiny_config().workload,
            seed: 11,
        }
    }

    #[test]
    fn churn_scenario_interleaves_and_samples_every_reconciliation() {
        let result = run_churn_scenario(CentralStore::new(bioinformatics_schema()), &tiny_churn());
        assert_eq!(result.samples.len(), result.reconciliations);
        // Interleaving: strictly fewer reconciliations than publishes, plus
        // the final catch-up pass.
        assert!(result.reconciliations < result.publishes + 4);
        assert!(result.publishes > 0 && result.epochs == result.publishes as u64);
        assert!(result.accepted > 0, "churn must share data");
        assert!(result.state_ratio >= 1.0);
        // Samples carry real coverage information.
        assert!(result.samples.iter().any(|s| s.epochs_covered > 1));
        let per_epoch = result.store_micros_per_epoch(0, result.samples.len());
        assert!(per_epoch >= 0.0);
    }

    #[test]
    fn churn_decisions_are_identical_across_retrieval_modes() {
        use orchestra_store::RetrievalMode;
        let config = tiny_churn();
        let incremental = run_churn_scenario(CentralStore::new(bioinformatics_schema()), &config);
        let rescan = run_churn_scenario(
            CentralStore::with_retrieval(bioinformatics_schema(), RetrievalMode::RescanBaseline),
            &config,
        );
        assert_eq!(incremental.accepted, rescan.accepted);
        assert_eq!(incremental.rejected, rescan.rejected);
        assert_eq!(incremental.deferred, rescan.deferred);
        assert_eq!(incremental.state_ratio, rescan.state_ratio);
    }

    #[test]
    fn concurrent_churn_drivers_reach_identical_decisions() {
        let config = tiny_churn();
        let sequential = run_churn_concurrent(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ReconcileDriver::Sequential,
        );
        let parallel = run_churn_concurrent(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ReconcileDriver::Parallel,
        );
        let service = run_churn_concurrent(
            CentralStore::new(bioinformatics_schema()),
            &config,
            ReconcileDriver::Service,
        );
        for other in [&parallel, &service] {
            assert_eq!(sequential.reconciliations, other.reconciliations);
            assert_eq!(sequential.accepted, other.accepted);
            assert_eq!(sequential.rejected, other.rejected);
            assert_eq!(sequential.deferred, other.deferred);
            assert_eq!(sequential.state_ratio, other.state_ratio);
        }
        assert!(sequential.accepted > 0, "churn must share data");
        assert!(parallel.reconcile_wall > Duration::ZERO);
        assert!(parallel.total_wall >= parallel.reconcile_wall);
    }

    #[test]
    fn more_contention_raises_the_state_ratio() {
        // A tiny key universe forces more conflicts than a large one.
        let mut contended = tiny_config();
        contended.workload.key_universe = 5;
        contended.workload.key_zipf_exponent = 1.2;
        let mut relaxed = tiny_config();
        relaxed.workload.key_universe = 500;
        relaxed.workload.key_zipf_exponent = 0.2;
        let contended_result = run_scenario(CentralStore::new(bioinformatics_schema()), &contended);
        let relaxed_result = run_scenario(CentralStore::new(bioinformatics_schema()), &relaxed);
        assert!(
            contended_result.state_ratio >= relaxed_result.state_ratio,
            "contended {} < relaxed {}",
            contended_result.state_ratio,
            relaxed_result.state_ratio
        );
    }
}
