//! Per-participant accept/reject decision records and reconciliation history.
//!
//! The paper moves the sets of applied and rejected transactions from the
//! participant into the update store, so that each client holds only soft
//! state and can be reconstructed from the store. This module is that record:
//! for every participant it keeps the decision made about each transaction and
//! the epoch associated with each of its reconciliations.
//!
//! [`ParticipantRecord`] is the single-participant building block. The update
//! store keeps one per participant *shard*, so that decisions from different
//! participants never contend on a shared structure; [`DecisionLog`] bundles
//! many records behind one map for callers that want the store-wide view.

use orchestra_model::{Epoch, ParticipantId, ReconciliationId, TransactionId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The durable decision a participant has recorded about a transaction.
///
/// Deferral is deliberately *not* represented here: deferred transactions are
/// soft state at the client (they may be accepted or rejected later), exactly
/// as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// The transaction was accepted and applied to the participant's
    /// instance.
    Accepted,
    /// The transaction was rejected (it conflicted with a higher-priority
    /// transaction, was incompatible with the instance, or depends on a
    /// rejected transaction).
    Rejected,
}

/// One participant's durable reconciliation record.
///
/// Besides the authoritative decision map, the record maintains the accepted
/// and rejected sets *incrementally* behind [`Arc`]s, so that a
/// reconciliation can consult them in O(1) and callers can take a snapshot
/// with a reference-count bump instead of cloning a fresh set per call —
/// the key to making per-reconciliation work scale with new epochs rather
/// than with total history.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParticipantRecord {
    /// Authoritative decision map. `pub(crate)` (like the other serialised
    /// fields) so the binary snapshot codec ([`crate::codec`]) can serialise
    /// and rebuild the record; the derived sets stay skip-and-rebuild.
    pub(crate) decisions: FxHashMap<TransactionId, Decision>,
    /// Transaction ids in the order the participant first *accepted* them.
    /// This is the order the participant's instance applied their effects
    /// (own transactions at execute/publish time, remote ones as their
    /// sessions decided them), which is **not** publication order — a
    /// participant executes against its own lagging view, so its own write
    /// to a key can land locally before a remotely published one it only
    /// accepts later. Replaying accepted transactions in this order is what
    /// makes the instance reconstructible from the store (the paper's
    /// soft-state property); replaying in publication order diverges on
    /// exactly those interleavings.
    pub(crate) accepted_order: Vec<TransactionId>,
    pub(crate) reconciliations: Vec<(ReconciliationId, Epoch)>,
    #[serde(skip)]
    accepted: Arc<FxHashSet<TransactionId>>,
    #[serde(skip)]
    rejected: Arc<FxHashSet<TransactionId>>,
}

impl std::fmt::Debug for ParticipantRecord {
    /// Canonical rendering: the hash-backed decision map and derived sets are
    /// printed in sorted order, so two records holding the same durable state
    /// render identically regardless of insertion history. Crash recovery
    /// relies on this — a recovered store is verified byte-for-byte against
    /// the live one through its `Debug` output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let decisions: std::collections::BTreeMap<_, _> = self.decisions.iter().collect();
        let mut accepted: Vec<_> = self.accepted.iter().collect();
        accepted.sort();
        let mut rejected: Vec<_> = self.rejected.iter().collect();
        rejected.sort();
        f.debug_struct("ParticipantRecord")
            .field("decisions", &decisions)
            .field("accepted_order", &self.accepted_order)
            .field("reconciliations", &self.reconciliations)
            .field("accepted", &accepted)
            .field("rejected", &rejected)
            .finish()
    }
}

impl ParticipantRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        ParticipantRecord::default()
    }

    /// Records a decision about a transaction. A later decision overwrites an
    /// earlier one only if the earlier one was not `Accepted` (acceptance is
    /// monotone: accepted transactions are never rolled back).
    ///
    /// `Arc::make_mut` keeps the update copy-free in the steady state: the
    /// sets are only deep-copied when an outstanding snapshot still shares
    /// them.
    pub fn record(&mut self, txn: TransactionId, decision: Decision) {
        match self.decisions.get(&txn) {
            Some(Decision::Accepted) => {}
            _ => {
                self.decisions.insert(txn, decision);
                match decision {
                    Decision::Accepted => {
                        Arc::make_mut(&mut self.rejected).remove(&txn);
                        Arc::make_mut(&mut self.accepted).insert(txn);
                        self.accepted_order.push(txn);
                    }
                    Decision::Rejected => {
                        Arc::make_mut(&mut self.rejected).insert(txn);
                    }
                }
            }
        }
    }

    /// The accepted transactions in the order they were first accepted — the
    /// order the participant's instance applied them, and therefore the
    /// replay order that reconstructs it (see the field docs).
    pub fn accepted_in_order(&self) -> &[TransactionId] {
        &self.accepted_order
    }

    /// Rebuilds the derived accepted/rejected sets (used after
    /// deserialisation, mirroring `TransactionLog::rebuild_indexes`).
    pub fn rebuild_sets(&mut self) {
        let accepted = Arc::make_mut(&mut self.accepted);
        let rejected = Arc::make_mut(&mut self.rejected);
        accepted.clear();
        rejected.clear();
        for (&id, &d) in &self.decisions {
            match d {
                Decision::Accepted => accepted.insert(id),
                Decision::Rejected => rejected.insert(id),
            };
        }
    }

    /// The decision recorded about a transaction, if any.
    pub fn decision(&self, txn: TransactionId) -> Option<Decision> {
        self.decisions.get(&txn).copied()
    }

    /// The incrementally maintained accepted set.
    pub fn accepted_set(&self) -> &FxHashSet<TransactionId> {
        &self.accepted
    }

    /// The incrementally maintained rejected set.
    pub fn rejected_set(&self) -> &FxHashSet<TransactionId> {
        &self.rejected
    }

    /// A shared snapshot of the accepted set: a reference-count bump, not a
    /// copy. The snapshot is immutable; later decisions copy-on-write inside
    /// the record without disturbing it.
    pub fn accepted_snapshot(&self) -> Arc<FxHashSet<TransactionId>> {
        Arc::clone(&self.accepted)
    }

    /// A shared snapshot of the rejected set (see
    /// [`ParticipantRecord::accepted_snapshot`]).
    pub fn rejected_snapshot(&self) -> Arc<FxHashSet<TransactionId>> {
        Arc::clone(&self.rejected)
    }

    /// All decided transactions with the decision `wanted`, sorted by id.
    pub fn with_decision(&self, wanted: Decision) -> Vec<TransactionId> {
        let mut out: Vec<TransactionId> =
            self.decisions.iter().filter(|(_, &d)| d == wanted).map(|(&id, _)| id).collect();
        out.sort();
        out
    }

    /// Records that the participant performed reconciliation `recno` against
    /// the given epoch.
    pub fn record_reconciliation(&mut self, recno: ReconciliationId, epoch: Epoch) {
        self.reconciliations.push((recno, epoch));
    }

    /// The most recent reconciliation, if any.
    pub fn last_reconciliation(&self) -> Option<(ReconciliationId, Epoch)> {
        self.reconciliations.last().copied()
    }

    /// The next reconciliation number.
    pub fn next_reconciliation_id(&self) -> ReconciliationId {
        self.last_reconciliation().map(|(r, _)| r.next()).unwrap_or(ReconciliationId(1))
    }

    /// The full reconciliation history.
    pub fn reconciliations(&self) -> &[(ReconciliationId, Epoch)] {
        &self.reconciliations
    }
}

/// Store-side record of every participant's decisions and reconciliations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecisionLog {
    participants: FxHashMap<ParticipantId, ParticipantRecord>,
}

impl DecisionLog {
    /// Creates an empty decision log.
    pub fn new() -> Self {
        DecisionLog::default()
    }

    /// Records a decision for a participant about a transaction (see
    /// [`ParticipantRecord::record`]).
    pub fn record(&mut self, participant: ParticipantId, txn: TransactionId, decision: Decision) {
        self.participants.entry(participant).or_default().record(txn, decision);
    }

    /// Rebuilds the derived accepted/rejected sets (used after
    /// deserialisation, mirroring `TransactionLog::rebuild_indexes`).
    pub fn rebuild_indexes(&mut self) {
        for rec in self.participants.values_mut() {
            rec.rebuild_sets();
        }
    }

    /// The decision a participant has recorded about a transaction, if any.
    pub fn decision(&self, participant: ParticipantId, txn: TransactionId) -> Option<Decision> {
        self.participants.get(&participant).and_then(|r| r.decision(txn))
    }

    /// Returns true if the participant has recorded *any* decision about the
    /// transaction.
    pub fn is_decided(&self, participant: ParticipantId, txn: TransactionId) -> bool {
        self.decision(participant, txn).is_some()
    }

    /// Returns true if the participant has accepted the transaction.
    pub fn is_accepted(&self, participant: ParticipantId, txn: TransactionId) -> bool {
        self.decision(participant, txn) == Some(Decision::Accepted)
    }

    /// Returns true if the participant has rejected the transaction.
    pub fn is_rejected(&self, participant: ParticipantId, txn: TransactionId) -> bool {
        self.decision(participant, txn) == Some(Decision::Rejected)
    }

    /// All transactions the participant has accepted.
    pub fn accepted(&self, participant: ParticipantId) -> Vec<TransactionId> {
        self.participants
            .get(&participant)
            .map(|r| r.with_decision(Decision::Accepted))
            .unwrap_or_default()
    }

    /// All transactions the participant has rejected.
    pub fn rejected(&self, participant: ParticipantId) -> Vec<TransactionId> {
        self.participants
            .get(&participant)
            .map(|r| r.with_decision(Decision::Rejected))
            .unwrap_or_default()
    }

    /// The participant's accepted set, maintained incrementally — O(1) to
    /// consult, shared by reference so reconciliations never rebuild it.
    pub fn accepted_set(&self, participant: ParticipantId) -> Option<&FxHashSet<TransactionId>> {
        self.participants.get(&participant).map(|r| r.accepted_set())
    }

    /// The participant's rejected set, maintained incrementally.
    pub fn rejected_set(&self, participant: ParticipantId) -> Option<&FxHashSet<TransactionId>> {
        self.participants.get(&participant).map(|r| r.rejected_set())
    }

    /// Records that a participant performed reconciliation `recno` against
    /// the given epoch.
    pub fn record_reconciliation(
        &mut self,
        participant: ParticipantId,
        recno: ReconciliationId,
        epoch: Epoch,
    ) {
        self.participants.entry(participant).or_default().record_reconciliation(recno, epoch);
    }

    /// The participant's most recent reconciliation, if any.
    pub fn last_reconciliation(
        &self,
        participant: ParticipantId,
    ) -> Option<(ReconciliationId, Epoch)> {
        self.participants.get(&participant).and_then(|r| r.last_reconciliation())
    }

    /// The epoch of the participant's most recent reconciliation
    /// (`Epoch::ZERO` if it has never reconciled).
    pub fn last_reconciliation_epoch(&self, participant: ParticipantId) -> Epoch {
        self.last_reconciliation(participant).map(|(_, e)| e).unwrap_or(Epoch::ZERO)
    }

    /// The next reconciliation number for the participant.
    pub fn next_reconciliation_id(&self, participant: ParticipantId) -> ReconciliationId {
        self.participants
            .get(&participant)
            .map(|r| r.next_reconciliation_id())
            .unwrap_or(ReconciliationId(1))
    }

    /// The full reconciliation history of a participant.
    pub fn reconciliations(&self, participant: ParticipantId) -> Vec<(ReconciliationId, Epoch)> {
        self.participants
            .get(&participant)
            .map(|r| r.reconciliations().to_vec())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn x(i: u32, j: u64) -> TransactionId {
        TransactionId::new(p(i), j)
    }

    #[test]
    fn decisions_are_recorded_per_participant() {
        let mut log = DecisionLog::new();
        log.record(p(1), x(2, 0), Decision::Accepted);
        log.record(p(1), x(3, 0), Decision::Rejected);
        log.record(p(2), x(2, 0), Decision::Rejected);

        assert!(log.is_accepted(p(1), x(2, 0)));
        assert!(log.is_rejected(p(1), x(3, 0)));
        assert!(log.is_rejected(p(2), x(2, 0)));
        assert!(!log.is_decided(p(3), x(2, 0)));
        assert_eq!(log.accepted(p(1)), vec![x(2, 0)]);
        assert_eq!(log.rejected(p(1)), vec![x(3, 0)]);
    }

    #[test]
    fn incremental_sets_track_decisions_and_rebuild() {
        let mut log = DecisionLog::new();
        log.record(p(1), x(2, 0), Decision::Rejected);
        log.record(p(1), x(3, 0), Decision::Accepted);
        // Rejection superseded by acceptance moves between the sets.
        log.record(p(1), x(2, 0), Decision::Accepted);
        let accepted = log.accepted_set(p(1)).unwrap();
        assert!(accepted.contains(&x(2, 0)) && accepted.contains(&x(3, 0)));
        assert!(log.rejected_set(p(1)).unwrap().is_empty());
        assert!(log.accepted_set(p(9)).is_none());

        // The sets survive a serde round trip via rebuild_indexes.
        let json = serde_json::to_string(&log).unwrap();
        let mut back: DecisionLog = serde_json::from_str(&json).unwrap();
        assert!(back.accepted_set(p(1)).map(|s| s.is_empty()).unwrap_or(true));
        back.rebuild_indexes();
        assert_eq!(back.accepted_set(p(1)).unwrap().len(), 2);
    }

    #[test]
    fn acceptance_is_monotone() {
        let mut log = DecisionLog::new();
        log.record(p(1), x(2, 0), Decision::Accepted);
        log.record(p(1), x(2, 0), Decision::Rejected);
        assert!(log.is_accepted(p(1), x(2, 0)));
        // A rejection can later be superseded by acceptance (conflict
        // resolution can accept a previously deferred option).
        log.record(p(1), x(3, 0), Decision::Rejected);
        log.record(p(1), x(3, 0), Decision::Accepted);
        assert!(log.is_accepted(p(1), x(3, 0)));
    }

    #[test]
    fn snapshots_are_immutable_views() {
        let mut rec = ParticipantRecord::new();
        rec.record(x(2, 0), Decision::Accepted);
        let snap = rec.accepted_snapshot();
        assert!(snap.contains(&x(2, 0)));
        // New decisions copy-on-write inside the record; the snapshot is
        // unaffected.
        rec.record(x(2, 1), Decision::Accepted);
        assert!(!snap.contains(&x(2, 1)));
        assert!(rec.accepted_set().contains(&x(2, 1)));
        // A fresh snapshot sees the new decision.
        assert!(rec.accepted_snapshot().contains(&x(2, 1)));
    }

    #[test]
    fn reconciliation_history() {
        let mut log = DecisionLog::new();
        assert_eq!(log.last_reconciliation(p(1)), None);
        assert_eq!(log.last_reconciliation_epoch(p(1)), Epoch::ZERO);
        assert_eq!(log.next_reconciliation_id(p(1)), ReconciliationId(1));

        log.record_reconciliation(p(1), ReconciliationId(1), Epoch(3));
        log.record_reconciliation(p(1), ReconciliationId(2), Epoch(7));
        assert_eq!(log.last_reconciliation(p(1)), Some((ReconciliationId(2), Epoch(7))));
        assert_eq!(log.last_reconciliation_epoch(p(1)), Epoch(7));
        assert_eq!(log.next_reconciliation_id(p(1)), ReconciliationId(3));
        assert_eq!(log.reconciliations(p(1)).len(), 2);
        assert!(log.reconciliations(p(9)).is_empty());
    }
}
