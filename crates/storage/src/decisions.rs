//! Per-participant accept/reject decision records and reconciliation history.
//!
//! The paper moves the sets of applied and rejected transactions from the
//! participant into the update store, so that each client holds only soft
//! state and can be reconstructed from the store. This module is that record:
//! for every participant it keeps the decision made about each transaction and
//! the epoch associated with each of its reconciliations.

use orchestra_model::{Epoch, ParticipantId, ReconciliationId, TransactionId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// The durable decision a participant has recorded about a transaction.
///
/// Deferral is deliberately *not* represented here: deferred transactions are
/// soft state at the client (they may be accepted or rejected later), exactly
/// as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// The transaction was accepted and applied to the participant's
    /// instance.
    Accepted,
    /// The transaction was rejected (it conflicted with a higher-priority
    /// transaction, was incompatible with the instance, or depends on a
    /// rejected transaction).
    Rejected,
}

/// One participant's reconciliation record.
///
/// Besides the authoritative decision map, the record maintains the accepted
/// and rejected sets *incrementally*, so that a reconciliation can consult
/// them in O(1) instead of rebuilding them from the full decision history —
/// the key to making per-reconciliation work scale with new epochs rather
/// than with total history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ParticipantRecord {
    decisions: FxHashMap<TransactionId, Decision>,
    reconciliations: Vec<(ReconciliationId, Epoch)>,
    #[serde(skip)]
    accepted: FxHashSet<TransactionId>,
    #[serde(skip)]
    rejected: FxHashSet<TransactionId>,
}

impl ParticipantRecord {
    fn rebuild_sets(&mut self) {
        self.accepted.clear();
        self.rejected.clear();
        for (&id, &d) in &self.decisions {
            match d {
                Decision::Accepted => self.accepted.insert(id),
                Decision::Rejected => self.rejected.insert(id),
            };
        }
    }
}

/// Store-side record of every participant's decisions and reconciliations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecisionLog {
    participants: FxHashMap<ParticipantId, ParticipantRecord>,
}

impl DecisionLog {
    /// Creates an empty decision log.
    pub fn new() -> Self {
        DecisionLog::default()
    }

    /// Records a decision for a participant about a transaction. A later
    /// decision overwrites an earlier one only if the earlier one was not
    /// `Accepted` (acceptance is monotone: accepted transactions are never
    /// rolled back).
    pub fn record(&mut self, participant: ParticipantId, txn: TransactionId, decision: Decision) {
        let rec = self.participants.entry(participant).or_default();
        match rec.decisions.get(&txn) {
            Some(Decision::Accepted) => {}
            _ => {
                rec.decisions.insert(txn, decision);
                match decision {
                    Decision::Accepted => {
                        rec.rejected.remove(&txn);
                        rec.accepted.insert(txn);
                    }
                    Decision::Rejected => {
                        rec.rejected.insert(txn);
                    }
                }
            }
        }
    }

    /// Rebuilds the derived accepted/rejected sets (used after
    /// deserialisation, mirroring `TransactionLog::rebuild_indexes`).
    pub fn rebuild_indexes(&mut self) {
        for rec in self.participants.values_mut() {
            rec.rebuild_sets();
        }
    }

    /// The decision a participant has recorded about a transaction, if any.
    pub fn decision(&self, participant: ParticipantId, txn: TransactionId) -> Option<Decision> {
        self.participants.get(&participant).and_then(|r| r.decisions.get(&txn)).copied()
    }

    /// Returns true if the participant has recorded *any* decision about the
    /// transaction.
    pub fn is_decided(&self, participant: ParticipantId, txn: TransactionId) -> bool {
        self.decision(participant, txn).is_some()
    }

    /// Returns true if the participant has accepted the transaction.
    pub fn is_accepted(&self, participant: ParticipantId, txn: TransactionId) -> bool {
        self.decision(participant, txn) == Some(Decision::Accepted)
    }

    /// Returns true if the participant has rejected the transaction.
    pub fn is_rejected(&self, participant: ParticipantId, txn: TransactionId) -> bool {
        self.decision(participant, txn) == Some(Decision::Rejected)
    }

    /// All transactions the participant has accepted.
    pub fn accepted(&self, participant: ParticipantId) -> Vec<TransactionId> {
        self.with_decision(participant, Decision::Accepted)
    }

    /// All transactions the participant has rejected.
    pub fn rejected(&self, participant: ParticipantId) -> Vec<TransactionId> {
        self.with_decision(participant, Decision::Rejected)
    }

    /// The participant's accepted set, maintained incrementally — O(1) to
    /// consult, shared by reference so reconciliations never rebuild it.
    pub fn accepted_set(&self, participant: ParticipantId) -> Option<&FxHashSet<TransactionId>> {
        self.participants.get(&participant).map(|r| &r.accepted)
    }

    /// The participant's rejected set, maintained incrementally.
    pub fn rejected_set(&self, participant: ParticipantId) -> Option<&FxHashSet<TransactionId>> {
        self.participants.get(&participant).map(|r| &r.rejected)
    }

    fn with_decision(&self, participant: ParticipantId, wanted: Decision) -> Vec<TransactionId> {
        let mut out: Vec<TransactionId> = self
            .participants
            .get(&participant)
            .map(|r| r.decisions.iter().filter(|(_, &d)| d == wanted).map(|(&id, _)| id).collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Records that a participant performed reconciliation `recno` against
    /// the given epoch.
    pub fn record_reconciliation(
        &mut self,
        participant: ParticipantId,
        recno: ReconciliationId,
        epoch: Epoch,
    ) {
        self.participants.entry(participant).or_default().reconciliations.push((recno, epoch));
    }

    /// The participant's most recent reconciliation, if any.
    pub fn last_reconciliation(
        &self,
        participant: ParticipantId,
    ) -> Option<(ReconciliationId, Epoch)> {
        self.participants.get(&participant).and_then(|r| r.reconciliations.last()).copied()
    }

    /// The epoch of the participant's most recent reconciliation
    /// (`Epoch::ZERO` if it has never reconciled).
    pub fn last_reconciliation_epoch(&self, participant: ParticipantId) -> Epoch {
        self.last_reconciliation(participant).map(|(_, e)| e).unwrap_or(Epoch::ZERO)
    }

    /// The next reconciliation number for the participant.
    pub fn next_reconciliation_id(&self, participant: ParticipantId) -> ReconciliationId {
        self.last_reconciliation(participant).map(|(r, _)| r.next()).unwrap_or(ReconciliationId(1))
    }

    /// The full reconciliation history of a participant.
    pub fn reconciliations(&self, participant: ParticipantId) -> Vec<(ReconciliationId, Epoch)> {
        self.participants.get(&participant).map(|r| r.reconciliations.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn x(i: u32, j: u64) -> TransactionId {
        TransactionId::new(p(i), j)
    }

    #[test]
    fn decisions_are_recorded_per_participant() {
        let mut log = DecisionLog::new();
        log.record(p(1), x(2, 0), Decision::Accepted);
        log.record(p(1), x(3, 0), Decision::Rejected);
        log.record(p(2), x(2, 0), Decision::Rejected);

        assert!(log.is_accepted(p(1), x(2, 0)));
        assert!(log.is_rejected(p(1), x(3, 0)));
        assert!(log.is_rejected(p(2), x(2, 0)));
        assert!(!log.is_decided(p(3), x(2, 0)));
        assert_eq!(log.accepted(p(1)), vec![x(2, 0)]);
        assert_eq!(log.rejected(p(1)), vec![x(3, 0)]);
    }

    #[test]
    fn incremental_sets_track_decisions_and_rebuild() {
        let mut log = DecisionLog::new();
        log.record(p(1), x(2, 0), Decision::Rejected);
        log.record(p(1), x(3, 0), Decision::Accepted);
        // Rejection superseded by acceptance moves between the sets.
        log.record(p(1), x(2, 0), Decision::Accepted);
        let accepted = log.accepted_set(p(1)).unwrap();
        assert!(accepted.contains(&x(2, 0)) && accepted.contains(&x(3, 0)));
        assert!(log.rejected_set(p(1)).unwrap().is_empty());
        assert!(log.accepted_set(p(9)).is_none());

        // The sets survive a serde round trip via rebuild_indexes.
        let json = serde_json::to_string(&log).unwrap();
        let mut back: DecisionLog = serde_json::from_str(&json).unwrap();
        assert!(back.accepted_set(p(1)).map(|s| s.is_empty()).unwrap_or(true));
        back.rebuild_indexes();
        assert_eq!(back.accepted_set(p(1)).unwrap().len(), 2);
    }

    #[test]
    fn acceptance_is_monotone() {
        let mut log = DecisionLog::new();
        log.record(p(1), x(2, 0), Decision::Accepted);
        log.record(p(1), x(2, 0), Decision::Rejected);
        assert!(log.is_accepted(p(1), x(2, 0)));
        // A rejection can later be superseded by acceptance (conflict
        // resolution can accept a previously deferred option).
        log.record(p(1), x(3, 0), Decision::Rejected);
        log.record(p(1), x(3, 0), Decision::Accepted);
        assert!(log.is_accepted(p(1), x(3, 0)));
    }

    #[test]
    fn reconciliation_history() {
        let mut log = DecisionLog::new();
        assert_eq!(log.last_reconciliation(p(1)), None);
        assert_eq!(log.last_reconciliation_epoch(p(1)), Epoch::ZERO);
        assert_eq!(log.next_reconciliation_id(p(1)), ReconciliationId(1));

        log.record_reconciliation(p(1), ReconciliationId(1), Epoch(3));
        log.record_reconciliation(p(1), ReconciliationId(2), Epoch(7));
        assert_eq!(log.last_reconciliation(p(1)), Some((ReconciliationId(2), Epoch(7))));
        assert_eq!(log.last_reconciliation_epoch(p(1)), Epoch(7));
        assert_eq!(log.next_reconciliation_id(p(1)), ReconciliationId(3));
        assert_eq!(log.reconciliations(p(1)).len(), 2);
        assert!(log.reconciliations(p(9)).is_empty());
    }
}
