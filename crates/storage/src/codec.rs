//! Binary record codec for the write-ahead log and snapshots.
//!
//! The durability layer originally serialised every [`WalRecord`] and
//! [`StoreSnapshot`] as JSON. That keeps the log inspectable, but the
//! vendored JSON codec dominates both append and replay cost once histories
//! grow. This module adds a compact binary encoding and keeps JSON available
//! as a debug/inspection mode ([`Codec::Json`]); the two are interchangeable
//! record by record because every payload is *sniffable*.
//!
//! # Payload format
//!
//! A binary WAL-record payload is
//!
//! ```text
//! ┌──────┬─────┬─────────────────────────┐
//! │ 0xC1 │ tag │ varint/interned fields  │
//! └──────┴─────┴─────────────────────────┘
//! ```
//!
//! and a binary snapshot payload starts with `0xC5` instead. A JSON payload
//! starts with `{` (0x7B), so the first byte of any payload names its codec
//! — [`decode_record`] and [`decode_snapshot`] dispatch on it, which is what
//! makes Json↔Binary cross-generation recovery work without configuration.
//!
//! Integers are LEB128 varints (signed ones zigzag-encoded), floats are raw
//! IEEE-754 bits, strings are length-prefixed UTF-8. Relation names — by far
//! the most repeated strings in a publish-heavy log — are interned *per
//! payload*: the first occurrence writes marker `0` plus the name and appends
//! it to the payload's table, later occurrences write `table index + 1`.
//! Hash-backed maps are written in sorted key order so the encoding of equal
//! states is byte-identical regardless of insertion history.
//!
//! CRC-32 framing is unchanged: payloads produced here still travel inside
//! the [`crate::wal::FrameLog`] frame format, torn tails and bit flips are
//! detected exactly as before.

use crate::decisions::{Decision, ParticipantRecord};
use crate::epoch::{CausalNode, EpochRecord, EpochRegistry, PublicationStatus};
use crate::error::{Result, StorageError};
use crate::log::{LogEntry, TransactionLog};
use crate::snapshot::{InstanceCheckpoint, ParticipantSnapshot, StoreSnapshot};
use crate::wal::WalRecord;
use orchestra_model::schema::{ColumnDef, RelationSchema};
use orchestra_model::{
    AcceptanceRule, AntichainClock, CausalStamp, Constraint, Epoch, ParticipantId, Predicate,
    Priority, ReconciliationId, RelName, Schema, StampId, Transaction, TransactionId, TrustPolicy,
    Tuple, Update, UpdateKind, UpdateOp, Value, ValueType,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// First byte of a binary WAL-record payload (not a valid JSON start byte).
pub(crate) const WAL_MAGIC: u8 = 0xC1;
/// First byte of a binary snapshot payload.
pub(crate) const SNAPSHOT_MAGIC: u8 = 0xC5;

/// How WAL records and snapshots are serialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Compact binary payloads: varint integers, per-payload interned
    /// relation names. The default.
    #[default]
    Binary,
    /// JSON payloads — the debug/inspection mode; the log stays readable
    /// with standard text tools. Decoding always accepts both codecs.
    Json,
}

impl Codec {
    /// Stable lowercase name (used in benchmark rows and `wal_dump` output).
    pub fn label(self) -> &'static str {
        match self {
            Codec::Binary => "binary",
            Codec::Json => "json",
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The codec a payload was written with, from its first byte.
pub fn payload_codec(payload: &[u8]) -> Codec {
    match payload.first() {
        Some(&WAL_MAGIC) | Some(&SNAPSHOT_MAGIC) => Codec::Binary,
        _ => Codec::Json,
    }
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
pub(crate) fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| StorageError::Persistence("binary payload truncated".to_string()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StorageError::Persistence("varint overflows u64".to_string()));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Binary payload writer: a byte buffer plus the payload's relation-name
/// intern table.
struct Enc {
    buf: Vec<u8>,
    rels: Vec<RelName>,
}

impl Enc {
    fn new(magic: u8) -> Self {
        let mut buf = Vec::with_capacity(128);
        buf.push(magic);
        Enc { buf, rels: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        write_varint(&mut self.buf, v);
    }

    fn i64(&mut self, v: i64) {
        write_varint(&mut self.buf, zigzag(v));
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Interned relation name: `0` + string on first use, `index + 1` after.
    fn rel(&mut self, name: &RelName) {
        // The table stays small (a handful of relations per schema), so a
        // linear probe beats a hash map on both time and code.
        if let Some(idx) = self.rels.iter().position(|r| r == name) {
            self.u64(idx as u64 + 1);
        } else {
            self.u64(0);
            self.str(name.as_str());
            self.rels.push(name.clone());
        }
    }
}

/// Binary payload reader, mirroring [`Enc`].
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    rels: Vec<RelName>,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0, rels: Vec::new() }
    }

    fn u8(&mut self) -> Result<u8> {
        let byte = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| StorageError::Persistence("binary payload truncated".to_string()))?;
        self.pos += 1;
        Ok(byte)
    }

    fn u64(&mut self) -> Result<u64> {
        read_varint(self.bytes, &mut self.pos)
    }

    fn u32(&mut self) -> Result<u32> {
        u32::try_from(self.u64()?)
            .map_err(|_| StorageError::Persistence("u32 field out of range".to_string()))
    }

    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        // Bound collection lengths by the remaining payload: every element
        // needs at least one byte, so anything larger is corruption, not a
        // huge allocation.
        let len = usize::try_from(v)
            .map_err(|_| StorageError::Persistence("length field out of range".to_string()))?;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(StorageError::Persistence(format!(
                "length {len} exceeds remaining payload"
            )));
        }
        Ok(len)
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(unzigzag(self.u64()?))
    }

    fn f64(&mut self) -> Result<f64> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| StorageError::Persistence("binary payload truncated".to_string()))?;
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(slice.try_into().expect("8 bytes"))))
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Persistence(format!("invalid bool byte {other}"))),
        }
    }

    fn str(&mut self) -> Result<String> {
        let len = self.usize()?;
        let slice = self
            .bytes
            .get(self.pos..self.pos + len)
            .ok_or_else(|| StorageError::Persistence("binary payload truncated".to_string()))?;
        self.pos += len;
        String::from_utf8(slice.to_vec())
            .map_err(|e| StorageError::Persistence(format!("string is not UTF-8: {e}")))
    }

    fn rel(&mut self) -> Result<RelName> {
        match self.u64()? {
            0 => {
                let name = RelName::new(&self.str()?);
                self.rels.push(name.clone());
                Ok(name)
            }
            idx => {
                self.rels.get(idx as usize - 1).cloned().ok_or_else(|| {
                    StorageError::Persistence(format!("relation index {idx} unknown"))
                })
            }
        }
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(StorageError::Persistence(format!(
                "{} trailing byte(s) after binary payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Model types
// ---------------------------------------------------------------------------

fn enc_participant(e: &mut Enc, p: ParticipantId) {
    e.u64(u64::from(p.as_u32()));
}

fn dec_participant(d: &mut Dec<'_>) -> Result<ParticipantId> {
    Ok(ParticipantId(d.u32()?))
}

fn enc_txn_id(e: &mut Enc, id: TransactionId) {
    enc_participant(e, id.participant);
    e.u64(id.local);
}

fn dec_txn_id(d: &mut Dec<'_>) -> Result<TransactionId> {
    let participant = dec_participant(d)?;
    let local = d.u64()?;
    Ok(TransactionId::new(participant, local))
}

fn enc_txn_ids(e: &mut Enc, ids: &[TransactionId]) {
    e.u64(ids.len() as u64);
    for id in ids {
        enc_txn_id(e, *id);
    }
}

fn dec_txn_ids(d: &mut Dec<'_>) -> Result<Vec<TransactionId>> {
    let len = d.usize()?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(dec_txn_id(d)?);
    }
    Ok(out)
}

fn enc_value(e: &mut Enc, value: &Value) {
    match value {
        Value::Null => e.u8(0),
        Value::Int(v) => {
            e.u8(1);
            e.i64(*v);
        }
        Value::Float(v) => {
            e.u8(2);
            e.f64(*v);
        }
        Value::Text(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Bool(b) => {
            e.u8(4);
            e.bool(*b);
        }
    }
}

fn dec_value(d: &mut Dec<'_>) -> Result<Value> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Int(d.i64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Text(d.str()?),
        4 => Value::Bool(d.bool()?),
        other => return Err(StorageError::Persistence(format!("invalid value tag {other}"))),
    })
}

fn enc_tuple(e: &mut Enc, tuple: &Tuple) {
    e.u64(tuple.arity() as u64);
    for value in tuple.values() {
        enc_value(e, value);
    }
}

fn dec_tuple(d: &mut Dec<'_>) -> Result<Tuple> {
    let arity = d.usize()?;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(dec_value(d)?);
    }
    Ok(Tuple::new(values))
}

fn enc_update(e: &mut Enc, update: &Update) {
    e.rel(&update.relation);
    match &update.op {
        UpdateOp::Insert(tuple) => {
            e.u8(0);
            enc_tuple(e, tuple);
        }
        UpdateOp::Delete(tuple) => {
            e.u8(1);
            enc_tuple(e, tuple);
        }
        UpdateOp::Modify { from, to } => {
            e.u8(2);
            enc_tuple(e, from);
            enc_tuple(e, to);
        }
    }
    enc_participant(e, update.origin);
}

fn dec_update(d: &mut Dec<'_>) -> Result<Update> {
    let relation = d.rel()?;
    let op = match d.u8()? {
        0 => UpdateOp::Insert(dec_tuple(d)?),
        1 => UpdateOp::Delete(dec_tuple(d)?),
        2 => {
            let from = dec_tuple(d)?;
            let to = dec_tuple(d)?;
            UpdateOp::Modify { from, to }
        }
        other => return Err(StorageError::Persistence(format!("invalid update tag {other}"))),
    };
    let origin = dec_participant(d)?;
    Ok(Update { relation, op, origin })
}

fn enc_transaction(e: &mut Enc, txn: &Transaction) {
    enc_txn_id(e, txn.id());
    e.u64(txn.updates().len() as u64);
    for update in txn.updates() {
        enc_update(e, update);
    }
}

fn dec_transaction(d: &mut Dec<'_>) -> Result<Transaction> {
    let id = dec_txn_id(d)?;
    let len = d.usize()?;
    let mut updates = Vec::with_capacity(len);
    for _ in 0..len {
        updates.push(dec_update(d)?);
    }
    Transaction::new(id, updates)
        .map_err(|e| StorageError::Persistence(format!("decoded transaction invalid: {e}")))
}

fn enc_stamp_id(e: &mut Enc, id: StampId) {
    enc_participant(e, id.publisher);
    e.u64(id.seq);
}

fn dec_stamp_id(d: &mut Dec<'_>) -> Result<StampId> {
    let publisher = dec_participant(d)?;
    let seq = d.u64()?;
    Ok(StampId::new(publisher, seq))
}

fn enc_clock(e: &mut Enc, clock: &AntichainClock) {
    e.u64(clock.len() as u64);
    for &id in clock.members() {
        enc_stamp_id(e, id);
    }
}

fn dec_clock(d: &mut Dec<'_>) -> Result<AntichainClock> {
    let len = d.usize()?;
    let mut clock = AntichainClock::new();
    for _ in 0..len {
        clock.insert(dec_stamp_id(d)?);
    }
    Ok(clock)
}

fn enc_causal_stamp(e: &mut Enc, stamp: &CausalStamp) {
    enc_participant(e, stamp.publisher);
    e.u64(stamp.seq);
    enc_clock(e, &stamp.parents);
}

fn dec_causal_stamp(d: &mut Dec<'_>) -> Result<CausalStamp> {
    let publisher = dec_participant(d)?;
    let seq = d.u64()?;
    let parents = dec_clock(d)?;
    Ok(CausalStamp::new(publisher, seq, parents))
}

fn enc_checkpoint(e: &mut Enc, checkpoint: &InstanceCheckpoint) {
    e.u64(checkpoint.relations.len() as u64);
    for (relation, tuples) in &checkpoint.relations {
        e.str(relation);
        e.u64(tuples.len() as u64);
        for tuple in tuples {
            enc_tuple(e, tuple);
        }
    }
    e.u64(checkpoint.next_local);
    e.u64(checkpoint.epoch.as_u64());
    e.u64(checkpoint.accepted_through);
}

fn dec_checkpoint(d: &mut Dec<'_>) -> Result<InstanceCheckpoint> {
    let relations_len = d.usize()?;
    let mut relations = BTreeMap::new();
    for _ in 0..relations_len {
        let relation = d.str()?;
        let tuples_len = d.usize()?;
        let mut tuples = Vec::with_capacity(tuples_len);
        for _ in 0..tuples_len {
            tuples.push(dec_tuple(d)?);
        }
        relations.insert(relation, tuples);
    }
    let next_local = d.u64()?;
    let epoch = Epoch(d.u64()?);
    let accepted_through = d.u64()?;
    Ok(InstanceCheckpoint { relations, next_local, epoch, accepted_through })
}

fn enc_predicate(e: &mut Enc, predicate: &Predicate) {
    match predicate {
        Predicate::True => e.u8(0),
        Predicate::False => e.u8(1),
        Predicate::FromParticipant(p) => {
            e.u8(2);
            enc_participant(e, *p);
        }
        Predicate::FromAnyOf(ps) => {
            e.u8(3);
            e.u64(ps.len() as u64);
            for p in ps {
                enc_participant(e, *p);
            }
        }
        Predicate::OverRelation(name) => {
            e.u8(4);
            e.str(name);
        }
        Predicate::OfKind(kind) => {
            e.u8(5);
            e.u8(match kind {
                UpdateKind::Insert => 0,
                UpdateKind::Delete => 1,
                UpdateKind::Modify => 2,
            });
        }
        Predicate::WritesValue { column, equals } => {
            e.u8(6);
            e.str(column);
            enc_value(e, equals);
        }
        Predicate::And(ps) => {
            e.u8(7);
            e.u64(ps.len() as u64);
            for p in ps {
                enc_predicate(e, p);
            }
        }
        Predicate::Or(ps) => {
            e.u8(8);
            e.u64(ps.len() as u64);
            for p in ps {
                enc_predicate(e, p);
            }
        }
        Predicate::Not(p) => {
            e.u8(9);
            enc_predicate(e, p);
        }
    }
}

fn dec_predicate(d: &mut Dec<'_>) -> Result<Predicate> {
    Ok(match d.u8()? {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => Predicate::FromParticipant(dec_participant(d)?),
        3 => {
            let len = d.usize()?;
            let mut ps = Vec::with_capacity(len);
            for _ in 0..len {
                ps.push(dec_participant(d)?);
            }
            Predicate::FromAnyOf(ps)
        }
        4 => Predicate::OverRelation(d.str()?),
        5 => Predicate::OfKind(match d.u8()? {
            0 => UpdateKind::Insert,
            1 => UpdateKind::Delete,
            2 => UpdateKind::Modify,
            other => return Err(StorageError::Persistence(format!("invalid update kind {other}"))),
        }),
        6 => {
            let column = d.str()?;
            let equals = dec_value(d)?;
            Predicate::WritesValue { column, equals }
        }
        7 => {
            let len = d.usize()?;
            let mut ps = Vec::with_capacity(len);
            for _ in 0..len {
                ps.push(dec_predicate(d)?);
            }
            Predicate::And(ps)
        }
        8 => {
            let len = d.usize()?;
            let mut ps = Vec::with_capacity(len);
            for _ in 0..len {
                ps.push(dec_predicate(d)?);
            }
            Predicate::Or(ps)
        }
        9 => Predicate::Not(Box::new(dec_predicate(d)?)),
        other => return Err(StorageError::Persistence(format!("invalid predicate tag {other}"))),
    })
}

fn enc_policy(e: &mut Enc, policy: &TrustPolicy) {
    enc_participant(e, policy.owner());
    e.u64(policy.rules().len() as u64);
    for rule in policy.rules() {
        enc_predicate(e, &rule.predicate);
        e.u64(u64::from(rule.priority.0));
    }
}

fn dec_policy(d: &mut Dec<'_>) -> Result<TrustPolicy> {
    let owner = dec_participant(d)?;
    let mut policy = TrustPolicy::new(owner);
    let rules = d.usize()?;
    for _ in 0..rules {
        let predicate = dec_predicate(d)?;
        let priority = Priority(d.u32()?);
        policy.add_rule(AcceptanceRule::new(predicate, priority));
    }
    Ok(policy)
}

fn enc_schema(e: &mut Enc, schema: &Schema) {
    let relations: Vec<&RelationSchema> = schema.relations().collect();
    e.u64(relations.len() as u64);
    for rel in relations {
        e.str(rel.name());
        e.u64(rel.columns().len() as u64);
        for column in rel.columns() {
            e.str(&column.name);
            e.u8(match column.ty {
                ValueType::Int => 0,
                ValueType::Float => 1,
                ValueType::Text => 2,
                ValueType::Bool => 3,
            });
            e.bool(column.nullable);
        }
        e.u64(rel.key_indexes().len() as u64);
        for &idx in rel.key_indexes() {
            e.u64(idx as u64);
        }
    }
    e.u64(schema.constraints().len() as u64);
    for constraint in schema.constraints() {
        match constraint {
            Constraint::ForeignKey { relation, columns, ref_relation, ref_columns } => {
                e.u8(0);
                e.str(relation);
                enc_strs(e, columns);
                e.str(ref_relation);
                enc_strs(e, ref_columns);
            }
            Constraint::Unique { relation, columns } => {
                e.u8(1);
                e.str(relation);
                enc_strs(e, columns);
            }
        }
    }
}

fn enc_strs(e: &mut Enc, strs: &[String]) {
    e.u64(strs.len() as u64);
    for s in strs {
        e.str(s);
    }
}

fn dec_strs(d: &mut Dec<'_>) -> Result<Vec<String>> {
    let len = d.usize()?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(d.str()?);
    }
    Ok(out)
}

fn dec_schema(d: &mut Dec<'_>) -> Result<Schema> {
    let mut schema = Schema::new();
    let relations = d.usize()?;
    for _ in 0..relations {
        let name = d.str()?;
        let columns_len = d.usize()?;
        let mut columns = Vec::with_capacity(columns_len);
        for _ in 0..columns_len {
            let col_name = d.str()?;
            let ty = match d.u8()? {
                0 => ValueType::Int,
                1 => ValueType::Float,
                2 => ValueType::Text,
                3 => ValueType::Bool,
                other => {
                    return Err(StorageError::Persistence(format!("invalid value type {other}")))
                }
            };
            let nullable = d.bool()?;
            columns.push(if nullable {
                ColumnDef::nullable(col_name, ty)
            } else {
                ColumnDef::new(col_name, ty)
            });
        }
        let key_len = d.usize()?;
        let mut key_indexes = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            // A key *index* is a value, not a length — don't bound it by the
            // remaining payload.
            let idx = usize::try_from(d.u64()?).map_err(|_| {
                StorageError::Persistence("key column index out of range".to_string())
            })?;
            key_indexes.push(idx);
        }
        let key_names: Vec<&str> = key_indexes
            .iter()
            .map(|&idx| {
                columns.get(idx).map(|c: &ColumnDef| c.name.as_str()).ok_or_else(|| {
                    StorageError::Persistence(format!("key column index {idx} out of range"))
                })
            })
            .collect::<Result<_>>()?;
        let relation = RelationSchema::new(name, columns.clone(), &key_names)
            .map_err(|e| StorageError::Persistence(format!("decoded relation invalid: {e}")))?;
        schema
            .add_relation(relation)
            .map_err(|e| StorageError::Persistence(format!("decoded schema invalid: {e}")))?;
    }
    let constraints = d.usize()?;
    for _ in 0..constraints {
        let constraint = match d.u8()? {
            0 => {
                let relation = d.str()?;
                let columns = dec_strs(d)?;
                let ref_relation = d.str()?;
                let ref_columns = dec_strs(d)?;
                Constraint::ForeignKey { relation, columns, ref_relation, ref_columns }
            }
            1 => {
                let relation = d.str()?;
                let columns = dec_strs(d)?;
                Constraint::Unique { relation, columns }
            }
            other => {
                return Err(StorageError::Persistence(format!("invalid constraint tag {other}")))
            }
        };
        schema
            .add_constraint(constraint)
            .map_err(|e| StorageError::Persistence(format!("decoded constraint invalid: {e}")))?;
    }
    Ok(schema)
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

/// Serialises a WAL record as a frame payload in the given codec.
pub fn encode_record(record: &WalRecord, codec: Codec) -> Vec<u8> {
    match codec {
        Codec::Json => serde_json::to_string(record).expect("WAL records serialise").into_bytes(),
        Codec::Binary => {
            let mut e = Enc::new(WAL_MAGIC);
            match record {
                WalRecord::Init { schema } => {
                    e.u8(0);
                    enc_schema(&mut e, schema);
                }
                WalRecord::RegisterPolicy { policy } => {
                    e.u8(1);
                    enc_policy(&mut e, policy);
                }
                WalRecord::Publish { participant, epoch, transactions } => {
                    e.u8(2);
                    enc_participant(&mut e, *participant);
                    e.u64(epoch.as_u64());
                    e.u64(transactions.len() as u64);
                    for txn in transactions {
                        enc_transaction(&mut e, txn);
                    }
                }
                WalRecord::CommitReconciliation {
                    participant,
                    recno,
                    epoch,
                    accepted,
                    rejected,
                } => {
                    e.u8(3);
                    enc_participant(&mut e, *participant);
                    e.u64(recno.0);
                    e.u64(epoch.as_u64());
                    enc_txn_ids(&mut e, accepted);
                    enc_txn_ids(&mut e, rejected);
                }
                WalRecord::Decisions { participant, accepted, rejected } => {
                    e.u8(4);
                    enc_participant(&mut e, *participant);
                    enc_txn_ids(&mut e, accepted);
                    enc_txn_ids(&mut e, rejected);
                }
                WalRecord::MembershipFrontier { epoch } => {
                    e.u8(5);
                    e.u64(epoch.as_u64());
                }
                WalRecord::RetireParticipant { participant } => {
                    e.u8(6);
                    enc_participant(&mut e, *participant);
                }
                WalRecord::Prune { horizon } => {
                    e.u8(7);
                    e.u64(horizon.as_u64());
                }
                WalRecord::EpochMode { causal } => {
                    e.u8(8);
                    e.bool(*causal);
                }
                WalRecord::PublishCausal { epoch, stamp, transactions } => {
                    e.u8(9);
                    e.u64(epoch.as_u64());
                    enc_causal_stamp(&mut e, stamp);
                    e.u64(transactions.len() as u64);
                    for txn in transactions {
                        enc_transaction(&mut e, txn);
                    }
                }
                WalRecord::InstanceCheckpoint { participant, checkpoint } => {
                    e.u8(10);
                    enc_participant(&mut e, *participant);
                    enc_checkpoint(&mut e, checkpoint);
                }
            }
            e.buf
        }
    }
}

/// Deserialises a WAL record from a frame payload, sniffing the codec from
/// the payload's first byte (see the module docs).
pub fn decode_record(payload: &[u8]) -> Result<WalRecord> {
    if payload.first() != Some(&WAL_MAGIC) {
        let text = std::str::from_utf8(payload)
            .map_err(|e| StorageError::Persistence(format!("WAL record is not UTF-8: {e}")))?;
        return serde_json::from_str(text)
            .map_err(|e| StorageError::Persistence(format!("WAL record parse: {e}")));
    }
    let mut d = Dec::new(&payload[1..]);
    let record = match d.u8()? {
        0 => WalRecord::Init { schema: dec_schema(&mut d)? },
        1 => WalRecord::RegisterPolicy { policy: dec_policy(&mut d)? },
        2 => {
            let participant = dec_participant(&mut d)?;
            let epoch = Epoch(d.u64()?);
            let len = d.usize()?;
            let mut transactions = Vec::with_capacity(len);
            for _ in 0..len {
                transactions.push(dec_transaction(&mut d)?);
            }
            WalRecord::Publish { participant, epoch, transactions }
        }
        3 => {
            let participant = dec_participant(&mut d)?;
            let recno = ReconciliationId(d.u64()?);
            let epoch = Epoch(d.u64()?);
            let accepted = dec_txn_ids(&mut d)?;
            let rejected = dec_txn_ids(&mut d)?;
            WalRecord::CommitReconciliation { participant, recno, epoch, accepted, rejected }
        }
        4 => {
            let participant = dec_participant(&mut d)?;
            let accepted = dec_txn_ids(&mut d)?;
            let rejected = dec_txn_ids(&mut d)?;
            WalRecord::Decisions { participant, accepted, rejected }
        }
        5 => WalRecord::MembershipFrontier { epoch: Epoch(d.u64()?) },
        6 => WalRecord::RetireParticipant { participant: dec_participant(&mut d)? },
        7 => WalRecord::Prune { horizon: Epoch(d.u64()?) },
        8 => WalRecord::EpochMode { causal: d.bool()? },
        9 => {
            let epoch = Epoch(d.u64()?);
            let stamp = dec_causal_stamp(&mut d)?;
            let len = d.usize()?;
            let mut transactions = Vec::with_capacity(len);
            for _ in 0..len {
                transactions.push(dec_transaction(&mut d)?);
            }
            WalRecord::PublishCausal { epoch, stamp, transactions }
        }
        10 => {
            let participant = dec_participant(&mut d)?;
            let checkpoint = dec_checkpoint(&mut d)?;
            WalRecord::InstanceCheckpoint { participant, checkpoint }
        }
        other => return Err(StorageError::Persistence(format!("invalid record tag {other}"))),
    };
    d.finish()?;
    Ok(record)
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

fn enc_record_map(e: &mut Enc, record: &ParticipantRecord) {
    // The decision map is hash-backed: write it sorted by transaction id so
    // equal records encode byte-identically.
    let decisions: BTreeMap<TransactionId, Decision> =
        record.decisions.iter().map(|(&id, &d)| (id, d)).collect();
    e.u64(decisions.len() as u64);
    for (id, decision) in decisions {
        enc_txn_id(e, id);
        e.u8(match decision {
            Decision::Accepted => 0,
            Decision::Rejected => 1,
        });
    }
    enc_txn_ids(e, &record.accepted_order);
    e.u64(record.reconciliations.len() as u64);
    for (recno, epoch) in &record.reconciliations {
        e.u64(recno.0);
        e.u64(epoch.as_u64());
    }
}

fn dec_record_map(d: &mut Dec<'_>) -> Result<ParticipantRecord> {
    let mut record = ParticipantRecord::new();
    let decisions = d.usize()?;
    for _ in 0..decisions {
        let id = dec_txn_id(d)?;
        let decision = match d.u8()? {
            0 => Decision::Accepted,
            1 => Decision::Rejected,
            other => {
                return Err(StorageError::Persistence(format!("invalid decision tag {other}")))
            }
        };
        record.decisions.insert(id, decision);
    }
    record.accepted_order = dec_txn_ids(d)?;
    let reconciliations = d.usize()?;
    for _ in 0..reconciliations {
        let recno = ReconciliationId(d.u64()?);
        let epoch = Epoch(d.u64()?);
        record.reconciliations.push((recno, epoch));
    }
    // Derived sets stay empty: the caller rebuilds them, exactly as after a
    // JSON deserialisation.
    Ok(record)
}

/// Serialises a snapshot as a frame payload in the given codec.
pub fn encode_snapshot(snapshot: &StoreSnapshot, codec: Codec) -> Result<Vec<u8>> {
    match codec {
        Codec::Json => serde_json::to_string(snapshot)
            .map(String::into_bytes)
            .map_err(|e| StorageError::Persistence(format!("snapshot serialise: {e}"))),
        Codec::Binary => {
            let mut e = Enc::new(SNAPSHOT_MAGIC);
            enc_schema(&mut e, &snapshot.schema);
            e.u64(snapshot.registry.records.len() as u64);
            for (&epoch, record) in &snapshot.registry.records {
                e.u64(epoch);
                enc_participant(&mut e, record.publisher);
                e.u8(match record.status {
                    PublicationStatus::Started => 0,
                    PublicationStatus::Finished => 1,
                });
            }
            e.u64(snapshot.registry.next);
            e.u64(snapshot.registry.stable);
            let causal = &snapshot.registry.causal;
            e.bool(causal.enabled);
            e.u64(causal.nodes.len() as u64);
            for (&id, node) in &causal.nodes {
                enc_stamp_id(&mut e, id);
                enc_clock(&mut e, &node.parents);
                e.u64(node.epoch.as_u64());
            }
            enc_clock(&mut e, &causal.frontier);
            e.u64(snapshot.log.entries.len() as u64);
            for (&pos, entry) in &snapshot.log.entries {
                e.u64(pos);
                e.u64(entry.epoch.as_u64());
                enc_transaction(&mut e, &entry.transaction);
            }
            e.u64(snapshot.log.next_pos);
            e.u64(snapshot.membership_frontier.as_u64());
            e.u64(snapshot.pruned_through.as_u64());
            e.u64(snapshot.participants.len() as u64);
            for p in &snapshot.participants {
                enc_participant(&mut e, p.id);
                enc_policy(&mut e, &p.policy);
                e.bool(p.registered);
                e.bool(p.retired);
                match p.cursor {
                    Some(cursor) => {
                        e.u8(1);
                        e.u64(cursor.as_u64());
                    }
                    None => e.u8(0),
                }
                e.u64(p.relevance_floor.as_u64());
                enc_record_map(&mut e, &p.record);
                match &p.checkpoint {
                    Some(checkpoint) => {
                        e.u8(1);
                        enc_checkpoint(&mut e, checkpoint);
                    }
                    None => e.u8(0),
                }
            }
            e.u64(snapshot.wal_generation);
            Ok(e.buf)
        }
    }
}

/// Deserialises a snapshot from a frame payload, sniffing the codec from the
/// first byte. Returns the snapshot together with the codec it was written
/// in (so recovery can keep appending in the same codec). Derived indexes
/// and sets are *not* rebuilt — callers do that, as after JSON decoding.
pub fn decode_snapshot(payload: &[u8]) -> Result<(StoreSnapshot, Codec)> {
    if payload.first() != Some(&SNAPSHOT_MAGIC) {
        let text = std::str::from_utf8(payload)
            .map_err(|e| StorageError::Persistence(format!("snapshot is not UTF-8: {e}")))?;
        let snapshot = serde_json::from_str(text)
            .map_err(|e| StorageError::Persistence(format!("snapshot parse: {e}")))?;
        return Ok((snapshot, Codec::Json));
    }
    let mut d = Dec::new(&payload[1..]);
    let schema = dec_schema(&mut d)?;
    let mut registry = EpochRegistry::new();
    let records = d.usize()?;
    for _ in 0..records {
        let epoch = d.u64()?;
        let publisher = dec_participant(&mut d)?;
        let status = match d.u8()? {
            0 => PublicationStatus::Started,
            1 => PublicationStatus::Finished,
            other => return Err(StorageError::Persistence(format!("invalid status tag {other}"))),
        };
        registry.records.insert(epoch, EpochRecord { publisher, status });
    }
    registry.next = d.u64()?;
    registry.stable = d.u64()?;
    {
        let causal = registry.causal_mut();
        causal.enabled = d.bool()?;
        let nodes = d.usize()?;
        for _ in 0..nodes {
            let id = dec_stamp_id(&mut d)?;
            let parents = dec_clock(&mut d)?;
            let epoch = Epoch(d.u64()?);
            causal.nodes.insert(id, CausalNode { parents, epoch });
        }
        causal.frontier = dec_clock(&mut d)?;
    }
    let mut log = TransactionLog::new();
    let entries = d.usize()?;
    for _ in 0..entries {
        let pos = d.u64()?;
        let epoch = Epoch(d.u64()?);
        let transaction = Arc::new(dec_transaction(&mut d)?);
        log.entries.insert(pos, LogEntry { epoch, transaction });
    }
    log.next_pos = d.u64()?;
    let membership_frontier = Epoch(d.u64()?);
    let pruned_through = Epoch(d.u64()?);
    let participants_len = d.usize()?;
    let mut participants = Vec::with_capacity(participants_len);
    for _ in 0..participants_len {
        let id = dec_participant(&mut d)?;
        let policy = dec_policy(&mut d)?;
        let registered = d.bool()?;
        let retired = d.bool()?;
        let cursor = match d.u8()? {
            0 => None,
            1 => Some(Epoch(d.u64()?)),
            other => return Err(StorageError::Persistence(format!("invalid cursor tag {other}"))),
        };
        let relevance_floor = Epoch(d.u64()?);
        let record = dec_record_map(&mut d)?;
        let checkpoint = match d.u8()? {
            0 => None,
            1 => Some(dec_checkpoint(&mut d)?),
            other => {
                return Err(StorageError::Persistence(format!("invalid checkpoint tag {other}")))
            }
        };
        participants.push(ParticipantSnapshot {
            id,
            policy,
            registered,
            retired,
            cursor,
            relevance_floor,
            record,
            checkpoint,
        });
    }
    let wal_generation = d.u64()?;
    d.finish()?;
    Ok((
        StoreSnapshot {
            schema,
            registry,
            log,
            membership_frontier,
            pruned_through,
            participants,
            wal_generation,
        },
        Codec::Binary,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;

    fn sample_transaction(participant: u32, local: u64) -> Transaction {
        let p = ParticipantId(participant);
        Transaction::from_parts(
            p,
            local,
            vec![
                Update::insert("Function", Tuple::of_text(&["rat", "prot1", "a"]), p),
                Update::modify(
                    "Function",
                    Tuple::of_text(&["rat", "prot1", "a"]),
                    Tuple::new(vec![Value::Text("rat".into()), Value::Int(-7), Value::Float(1.5)]),
                    p,
                ),
                Update::delete("Term", Tuple::new(vec![Value::Null, Value::Bool(true)]), p),
            ],
        )
        .unwrap()
    }

    fn sample_records() -> Vec<WalRecord> {
        let p = ParticipantId(3);
        let txn = sample_transaction(3, 0);
        let policy =
            TrustPolicy::new(p).trusting(ParticipantId(2), 4u32).with_rule(AcceptanceRule::new(
                Predicate::And(vec![
                    Predicate::OverRelation("Function".to_string()),
                    Predicate::Not(Box::new(Predicate::OfKind(UpdateKind::Delete))),
                    Predicate::Or(vec![
                        Predicate::FromAnyOf(vec![ParticipantId(1), ParticipantId(2)]),
                        Predicate::WritesValue {
                            column: "function".to_string(),
                            equals: Value::Text("immune".to_string()),
                        },
                        Predicate::True,
                        Predicate::False,
                    ]),
                ]),
                9u32,
            ));
        vec![
            WalRecord::Init { schema: bioinformatics_schema() },
            WalRecord::RegisterPolicy { policy },
            WalRecord::Publish { participant: p, epoch: Epoch(1), transactions: vec![txn.clone()] },
            WalRecord::CommitReconciliation {
                participant: ParticipantId(2),
                recno: ReconciliationId(1),
                epoch: Epoch(1),
                accepted: vec![txn.id()],
                rejected: vec![TransactionId::new(ParticipantId(9), 4)],
            },
            WalRecord::Decisions {
                participant: ParticipantId(2),
                accepted: vec![],
                rejected: vec![txn.id()],
            },
            WalRecord::MembershipFrontier { epoch: Epoch(u64::MAX) },
            WalRecord::RetireParticipant { participant: ParticipantId(2) },
            WalRecord::Prune { horizon: Epoch(7) },
            WalRecord::EpochMode { causal: true },
            WalRecord::PublishCausal {
                epoch: Epoch(2),
                stamp: CausalStamp::new(
                    p,
                    4,
                    AntichainClock::from_stamps([
                        StampId::new(ParticipantId(1), 2),
                        StampId::new(p, 3),
                    ]),
                ),
                transactions: vec![sample_transaction(3, 1)],
            },
            WalRecord::InstanceCheckpoint {
                participant: p,
                checkpoint: InstanceCheckpoint {
                    relations: BTreeMap::from([
                        ("Function".to_string(), vec![Tuple::of_text(&["rat", "prot1", "a"])]),
                        ("Term".to_string(), vec![]),
                    ]),
                    next_local: 5,
                    epoch: Epoch(2),
                    accepted_through: 3,
                },
            },
        ]
    }

    #[test]
    fn varints_round_trip_across_the_range() {
        let mut buf = Vec::new();
        let values =
            [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &v in &values {
            buf.clear();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // A truncated varint errors instead of looping.
        assert!(read_varint(&[0x80], &mut 0).is_err());
        // An over-long varint errors instead of silently wrapping.
        assert!(read_varint(&[0xFF; 11], &mut 0).is_err());
    }

    #[test]
    fn records_round_trip_in_both_codecs_and_sniff() {
        for record in sample_records() {
            let json = encode_record(&record, Codec::Json);
            let binary = encode_record(&record, Codec::Binary);
            assert_eq!(payload_codec(&json), Codec::Json);
            assert_eq!(payload_codec(&binary), Codec::Binary);
            assert_eq!(decode_record(&json).unwrap(), record, "json round trip");
            assert_eq!(decode_record(&binary).unwrap(), record, "binary round trip");
            assert!(binary.len() < json.len(), "binary should be smaller than JSON");
        }
    }

    #[test]
    fn binary_encoding_is_deterministic() {
        for record in sample_records() {
            assert_eq!(
                encode_record(&record, Codec::Binary),
                encode_record(&record, Codec::Binary)
            );
        }
    }

    #[test]
    fn relation_interning_pays_off_on_repeated_names() {
        let p = ParticipantId(1);
        let updates: Vec<Update> = (0..20)
            .map(|i| {
                Update::insert("Function", Tuple::of_text(&["rat", &format!("prot{i}"), "fn"]), p)
            })
            .collect();
        let txn = Transaction::from_parts(p, 0, updates).unwrap();
        let record =
            WalRecord::Publish { participant: p, epoch: Epoch(1), transactions: vec![txn] };
        let binary = encode_record(&record, Codec::Binary);
        // The relation name appears once; 19 references are one varint each.
        let occurrences = binary.windows(8).filter(|w| *w == b"Function").count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn corrupt_binary_payloads_error_cleanly() {
        let record = sample_records().remove(2);
        let binary = encode_record(&record, Codec::Binary);
        // Truncations at every prefix either error or decode to the original
        // (never panic, never a different record).
        for cut in 1..binary.len() {
            if let Ok(back) = decode_record(&binary[..cut]) {
                assert_eq!(back, record);
            }
        }
        // Trailing garbage is rejected.
        let mut padded = binary.clone();
        padded.push(0);
        assert!(decode_record(&padded).is_err());
        // An unknown record tag is rejected.
        assert!(decode_record(&[WAL_MAGIC, 0xEE]).is_err());
    }

    #[test]
    fn snapshots_round_trip_in_both_codecs() {
        let p = ParticipantId(1);
        let mut registry = EpochRegistry::new();
        let e1 = registry.begin_publish(p);
        registry.finish_publish(e1).unwrap();
        registry.begin_publish(ParticipantId(2));
        registry.causal_mut().enable();
        registry.causal_mut().ingest(&CausalStamp::new(p, 1, AntichainClock::new()), e1).unwrap();
        let mut log = TransactionLog::new();
        let txn = sample_transaction(1, 0);
        log.publish(e1, txn.clone()).unwrap();
        let mut record = ParticipantRecord::new();
        record.record(txn.id(), Decision::Accepted);
        record.record(TransactionId::new(ParticipantId(2), 0), Decision::Rejected);
        record.record_reconciliation(ReconciliationId(1), e1);
        let snapshot = StoreSnapshot {
            schema: bioinformatics_schema(),
            registry,
            log,
            membership_frontier: Epoch(2),
            pruned_through: Epoch::ZERO,
            participants: vec![ParticipantSnapshot {
                id: p,
                policy: TrustPolicy::new(p).trusting(ParticipantId(2), 1u32),
                registered: true,
                retired: false,
                cursor: Some(e1),
                relevance_floor: Epoch::ZERO,
                record,
                checkpoint: Some(InstanceCheckpoint {
                    relations: BTreeMap::from([(
                        "Function".to_string(),
                        vec![Tuple::of_text(&["rat", "prot1", "a"])],
                    )]),
                    next_local: 1,
                    epoch: e1,
                    accepted_through: 1,
                }),
            }],
            wal_generation: 5,
        };
        for codec in [Codec::Binary, Codec::Json] {
            let payload = encode_snapshot(&snapshot, codec).unwrap();
            let (mut back, sniffed) = decode_snapshot(&payload).unwrap();
            assert_eq!(sniffed, codec);
            back.log.rebuild_indexes();
            for p in &mut back.participants {
                p.record.rebuild_sets();
            }
            assert_eq!(back.wal_generation, 5);
            assert_eq!(back.schema, snapshot.schema);
            assert_eq!(back.registry.largest_stable_epoch(), Epoch(1));
            assert_eq!(back.registry.latest_allocated(), Epoch(2));
            assert!(back.registry.causal().is_enabled());
            assert_eq!(back.registry.causal().last_seq(p), 1);
            assert_eq!(
                back.registry.causal().epoch_of(StampId::new(p, 1)),
                Some(Epoch(1)),
                "causal DAG node survives the snapshot"
            );
            assert_eq!(back.participants[0].checkpoint, snapshot.participants[0].checkpoint);
            assert_eq!(back.log.get(txn.id()).unwrap(), &txn);
            assert_eq!(back.participants.len(), 1);
            assert_eq!(back.participants[0].record.accepted_set().len(), 1);
            assert_eq!(back.participants[0].record.rejected_set().len(), 1);
            assert_eq!(
                back.participants[0].record.last_reconciliation(),
                Some((ReconciliationId(1), Epoch(1)))
            );
            // The full rendering (decision maps, orders, cursors) matches.
            assert_eq!(
                format!("{:?}", back.participants[0].record),
                format!("{:?}", snapshot.participants[0].record)
            );
        }
    }
}
