//! The append-only log of published transactions.
//!
//! This corresponds to the published-update log that the paper's central
//! update store keeps inside the RDBMS: every published transaction is
//! recorded with the epoch in which it was published, and indexes allow the
//! store to answer "which transactions were published between epochs a and
//! b", to resolve transaction identifiers, and to chase antecedent chains
//! (which transaction wrote the tuple value this transaction modifies or
//! deletes?).

use crate::error::{Result, StorageError};
use orchestra_model::{Epoch, ParticipantId, RelName, Schema, Transaction, TransactionId, Tuple};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One entry of the published-transaction log.
///
/// The transaction is stored behind an [`Arc`] so that read paths (candidate
/// construction, replay streams, point lookups) hand out shared references
/// instead of deep copies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Epoch in which the transaction was published.
    pub epoch: Epoch,
    /// The published transaction, shared with every reader.
    pub transaction: Arc<Transaction>,
}

/// Append-only log of published transactions with epoch, id and
/// written-tuple indexes.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct TransactionLog {
    entries: Vec<LogEntry>,
    #[serde(skip)]
    by_id: FxHashMap<TransactionId, usize>,
    #[serde(skip)]
    by_epoch: BTreeMap<u64, Vec<usize>>,
    /// For each (relation, tuple value) ever written, the log positions of the
    /// transactions that wrote it, in publication order.
    #[serde(skip)]
    writers: FxHashMap<(RelName, Tuple), Vec<usize>>,
}

impl fmt::Debug for TransactionLog {
    /// Canonical rendering: only the entries themselves (publication order)
    /// are printed. The lookup indexes are derived state whose hash-map
    /// layout depends on insertion history; excluding them keeps the output
    /// identical between a live log and one rebuilt by crash recovery.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransactionLog").field("entries", &self.entries).finish_non_exhaustive()
    }
}

impl TransactionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TransactionLog::default()
    }

    /// Rebuilds the derived indexes (used after deserialisation).
    pub fn rebuild_indexes(&mut self) {
        self.by_id.clear();
        self.by_epoch.clear();
        self.writers.clear();
        for i in 0..self.entries.len() {
            self.index_entry(i);
        }
    }

    fn index_entry(&mut self, pos: usize) {
        let entry = &self.entries[pos];
        self.by_id.insert(entry.transaction.id(), pos);
        self.by_epoch.entry(entry.epoch.as_u64()).or_default().push(pos);
        for u in entry.transaction.updates() {
            if let Some(written) = u.written_tuple() {
                self.writers.entry((u.relation.clone(), written.clone())).or_default().push(pos);
            }
        }
    }

    /// Appends a published transaction. Publishing the same transaction id
    /// twice is an error.
    pub fn publish(&mut self, epoch: Epoch, transaction: Transaction) -> Result<()> {
        if self.by_id.contains_key(&transaction.id()) {
            return Err(StorageError::TransactionLog(format!(
                "transaction {} already published",
                transaction.id()
            )));
        }
        let pos = self.entries.len();
        self.entries.push(LogEntry { epoch, transaction: Arc::new(transaction) });
        self.index_entry(pos);
        Ok(())
    }

    /// Number of published transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a transaction by id.
    pub fn get(&self, id: TransactionId) -> Option<&Transaction> {
        self.by_id.get(&id).map(|&i| self.entries[i].transaction.as_ref())
    }

    /// Looks up a transaction by id, returning a shared handle (a
    /// reference-count bump, never a deep copy).
    pub fn get_arc(&self, id: TransactionId) -> Option<Arc<Transaction>> {
        self.by_id.get(&id).map(|&i| Arc::clone(&self.entries[i].transaction))
    }

    /// The epoch in which a transaction was published.
    pub fn epoch_of(&self, id: TransactionId) -> Option<Epoch> {
        self.by_id.get(&id).map(|&i| self.entries[i].epoch)
    }

    /// The log position (publication order) of a transaction.
    pub fn position_of(&self, id: TransactionId) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// All entries, in publication order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Transactions published in the given epoch, in publication order.
    pub fn in_epoch(&self, epoch: Epoch) -> Vec<&Transaction> {
        self.by_epoch
            .get(&epoch.as_u64())
            .map(|positions| {
                positions.iter().map(|&i| self.entries[i].transaction.as_ref()).collect()
            })
            .unwrap_or_default()
    }

    /// Transactions published in epochs `(after, up_to]`, in publication
    /// order. This is the "relevant transactions" query of the paper: the
    /// updates a participant has not yet seen.
    pub fn in_range(&self, after: Epoch, up_to: Epoch) -> Vec<&Transaction> {
        let mut out = Vec::new();
        if up_to <= after {
            return out;
        }
        for (_, positions) in self.by_epoch.range((after.as_u64() + 1)..=(up_to.as_u64())) {
            for &i in positions {
                out.push(self.entries[i].transaction.as_ref());
            }
        }
        out
    }

    /// Transactions published by a specific participant, in publication order.
    pub fn by_participant(&self, participant: ParticipantId) -> Vec<&Transaction> {
        self.entries
            .iter()
            .filter(|e| e.transaction.origin() == participant)
            .map(|e| e.transaction.as_ref())
            .collect()
    }

    /// The direct antecedents of a transaction (Definition 3's `ante(X)`):
    /// for each tuple value that `txn` deletes or modifies, the most recently
    /// published transaction that inserted that tuple value or modified some
    /// tuple into it.
    ///
    /// `before` bounds the search to transactions published strictly before
    /// the given log position (pass `self.len()` for a transaction not yet in
    /// the log, or its own position for a published one).
    pub fn antecedents_of(
        &self,
        txn: &Transaction,
        schema: &Schema,
        before: usize,
    ) -> Vec<TransactionId> {
        let _ = schema; // antecedent chasing is on exact tuple values
        let mut out: Vec<TransactionId> = Vec::new();
        let mut seen: FxHashSet<TransactionId> = FxHashSet::default();
        for u in txn.updates() {
            let Some(read) = u.read_tuple() else { continue };
            let Some(writers) = self.writers.get(&(u.relation.clone(), read.clone())) else {
                continue;
            };
            // Most recent writer strictly before `before`, excluding the
            // transaction itself.
            if let Some(&pos) = writers
                .iter()
                .rfind(|&&p| p < before && self.entries[p].transaction.id() != txn.id())
            {
                let id = self.entries[pos].transaction.id();
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// The transaction extension of Definition 3: the transitive closure of a
    /// transaction's antecedents, excluding transactions in `already_applied`
    /// (and their own antecedents are not chased through them), sorted by
    /// publication order with the root transaction last.
    ///
    /// The root transaction itself is always included (as the last element).
    pub fn transaction_extension(
        &self,
        root: &Transaction,
        schema: &Schema,
        already_applied: &FxHashSet<TransactionId>,
    ) -> Vec<TransactionId> {
        let root_pos = self.position_of(root.id()).unwrap_or(self.entries.len());
        let mut members: FxHashSet<TransactionId> = FxHashSet::default();
        let mut stack: Vec<(TransactionId, usize)> = Vec::new();
        for ante in self.antecedents_of(root, schema, root_pos) {
            if !already_applied.contains(&ante) && members.insert(ante) {
                if let Some(pos) = self.position_of(ante) {
                    stack.push((ante, pos));
                }
            }
        }
        while let Some((id, pos)) = stack.pop() {
            if let Some(txn) = self.get(id) {
                let txn = txn.clone();
                for ante in self.antecedents_of(&txn, schema, pos) {
                    if !already_applied.contains(&ante) && members.insert(ante) {
                        if let Some(p) = self.position_of(ante) {
                            stack.push((ante, p));
                        }
                    }
                }
            }
        }
        let mut ordered: Vec<TransactionId> = members.into_iter().collect();
        ordered.sort_by_key(|id| self.position_of(*id).unwrap_or(usize::MAX));
        ordered.push(root.id());
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::Update;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(participant: u32, local: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(participant), local, updates).unwrap()
    }

    #[test]
    fn publish_and_lookup() {
        let mut log = TransactionLog::new();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        log.publish(Epoch(1), x.clone()).unwrap();
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert_eq!(log.get(x.id()).unwrap(), &x);
        assert_eq!(log.epoch_of(x.id()), Some(Epoch(1)));
        assert_eq!(log.position_of(x.id()), Some(0));
        assert!(log.get(TransactionId::new(p(9), 9)).is_none());
    }

    #[test]
    fn duplicate_publication_rejected() {
        let mut log = TransactionLog::new();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        log.publish(Epoch(1), x.clone()).unwrap();
        assert!(log.publish(Epoch(2), x).is_err());
    }

    #[test]
    fn epoch_and_range_queries() {
        let mut log = TransactionLog::new();
        let x1 = txn(1, 0, vec![Update::insert("Function", func("a", "p1", "f1"), p(1))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("b", "p2", "f2"), p(2))]);
        let x3 = txn(1, 1, vec![Update::insert("Function", func("c", "p3", "f3"), p(1))]);
        log.publish(Epoch(1), x1.clone()).unwrap();
        log.publish(Epoch(2), x2.clone()).unwrap();
        log.publish(Epoch(4), x3.clone()).unwrap();

        assert_eq!(log.in_epoch(Epoch(2)), vec![&x2]);
        assert!(log.in_epoch(Epoch(3)).is_empty());
        assert_eq!(log.in_range(Epoch(0), Epoch(4)).len(), 3);
        assert_eq!(log.in_range(Epoch(1), Epoch(4)), vec![&x2, &x3]);
        assert_eq!(log.in_range(Epoch(4), Epoch(4)).len(), 0);
        assert_eq!(log.by_participant(p(1)), vec![&x1, &x3]);
    }

    #[test]
    fn antecedents_follow_written_tuples() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        // X3:0 inserts, X3:1 modifies the inserted value: antecedent of X3:1
        // is X3:0.
        let x0 =
            txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3))]);
        let x1 = txn(
            3,
            1,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p(3),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(1), x1.clone()).unwrap();
        let antes = log.antecedents_of(&x1, &schema, log.position_of(x1.id()).unwrap());
        assert_eq!(antes, vec![x0.id()]);
        // The insert has no antecedent.
        let antes0 = log.antecedents_of(&x0, &schema, 0);
        assert!(antes0.is_empty());
    }

    #[test]
    fn antecedents_pick_latest_writer() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "v"), p(1))]);
        let x1 = txn(
            1,
            1,
            vec![
                Update::delete("Function", func("rat", "prot1", "v"), p(1)),
                Update::insert("Function", func("rat", "prot1", "v"), p(1)),
            ],
        );
        let x2 = txn(2, 0, vec![Update::delete("Function", func("rat", "prot1", "v"), p(2))]);
        log.publish(Epoch(1), x0).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        log.publish(Epoch(3), x2.clone()).unwrap();
        let antes = log.antecedents_of(&x2, &schema, log.position_of(x2.id()).unwrap());
        assert_eq!(antes, vec![x1.id()]);
    }

    #[test]
    fn transaction_extension_transitively_closes() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "a"),
                func("rat", "prot1", "b"),
                p(2),
            )],
        );
        let x2 = txn(
            3,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "b"),
                func("rat", "prot1", "c"),
                p(3),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        log.publish(Epoch(3), x2.clone()).unwrap();

        let ext = log.transaction_extension(&x2, &schema, &FxHashSet::default());
        assert_eq!(ext, vec![x0.id(), x1.id(), x2.id()]);

        // If the middle transaction is already applied, the chase stops there.
        let mut applied = FxHashSet::default();
        applied.insert(x1.id());
        let ext = log.transaction_extension(&x2, &schema, &applied);
        assert_eq!(ext, vec![x2.id()]);
    }

    #[test]
    fn rebuild_indexes_after_serde() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "a"),
                func("rat", "prot1", "b"),
                p(2),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        let json = serde_json::to_string(&log).unwrap();
        let mut back: TransactionLog = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(x0.id()).unwrap(), &x0);
        let ext = back.transaction_extension(&x1, &schema, &FxHashSet::default());
        assert_eq!(ext.len(), 2);
    }
}
