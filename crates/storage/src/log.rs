//! The append-only log of published transactions.
//!
//! This corresponds to the published-update log that the paper's central
//! update store keeps inside the RDBMS: every published transaction is
//! recorded with the epoch in which it was published, and indexes allow the
//! store to answer "which transactions were published between epochs a and
//! b", to resolve transaction identifiers, and to chase antecedent chains
//! (which transaction wrote the tuple value this transaction modifies or
//! deletes?).
//!
//! # Positions and retention
//!
//! Every published transaction is assigned a permanent, monotonically
//! increasing **log position**. Positions are the publication order the
//! antecedent chase and the replay streams rely on, so they never change —
//! retention ([`TransactionLog::prune_below`]) removes entries but leaves the
//! surviving positions untouched, which is why the entries live in a sparse
//! ordered map rather than a dense vector. A pruned log answers every query
//! exactly like the unpruned one *for the transactions that can still be
//! reached*: the [`TransactionLog::pinned_ancestors`] closure computes the
//! set of sub-horizon entries that future antecedent chases can still reach,
//! and pruning retains exactly those.

use crate::error::{Result, StorageError};
use orchestra_model::{Epoch, ParticipantId, RelName, Schema, Transaction, TransactionId, Tuple};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One entry of the published-transaction log.
///
/// The transaction is stored behind an [`Arc`] so that read paths (candidate
/// construction, replay streams, point lookups) hand out shared references
/// instead of deep copies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Epoch in which the transaction was published.
    pub epoch: Epoch,
    /// The published transaction, shared with every reader.
    pub transaction: Arc<Transaction>,
}

/// Append-only log of published transactions with epoch, id and
/// written-tuple indexes, supporting convergence-horizon retention.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct TransactionLog {
    /// Live entries keyed by permanent log position (publication order).
    /// Dense until the first prune, sparse afterwards. `pub(crate)` for the
    /// binary snapshot codec ([`crate::codec`]), which rebuilds the log field
    /// by field and re-derives the indexes.
    pub(crate) entries: BTreeMap<u64, LogEntry>,
    /// The next position to assign — the number of transactions ever
    /// published, including pruned ones.
    pub(crate) next_pos: u64,
    #[serde(skip)]
    by_id: FxHashMap<TransactionId, u64>,
    #[serde(skip)]
    by_epoch: BTreeMap<u64, Vec<u64>>,
    /// For each relation, then each tuple value ever written in it, the log
    /// positions of the live transactions that wrote it, in publication
    /// order. Two levels so lookups borrow the update's relation and tuple —
    /// the hot paths (indexing a publish, chasing antecedents) never clone a
    /// tuple except the first time a value is written.
    #[serde(skip)]
    writers: FxHashMap<RelName, FxHashMap<Tuple, Vec<u64>>>,
}

impl fmt::Debug for TransactionLog {
    /// Canonical rendering: only the entries themselves (position order) and
    /// the position counter are printed. The lookup indexes are derived state
    /// whose hash-map layout depends on insertion history; excluding them
    /// keeps the output identical between a live log and one rebuilt by crash
    /// recovery — including a pruned one.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransactionLog")
            .field("entries", &self.entries)
            .field("next_pos", &self.next_pos)
            .finish_non_exhaustive()
    }
}

impl TransactionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TransactionLog::default()
    }

    /// Rebuilds the derived indexes (used after deserialisation and after a
    /// prune).
    pub fn rebuild_indexes(&mut self) {
        self.by_id.clear();
        self.by_epoch.clear();
        self.writers.clear();
        let positions: Vec<u64> = self.entries.keys().copied().collect();
        for pos in positions {
            self.index_entry(pos);
        }
    }

    fn index_entry(&mut self, pos: u64) {
        let entry = &self.entries[&pos];
        self.by_id.insert(entry.transaction.id(), pos);
        self.by_epoch.entry(entry.epoch.as_u64()).or_default().push(pos);
        let transaction = Arc::clone(&entry.transaction);
        for update in transaction.updates() {
            let Some(written) = update.written_tuple() else { continue };
            let by_tuple = match self.writers.get_mut(&update.relation) {
                Some(by_tuple) => by_tuple,
                None => self.writers.entry(update.relation.clone()).or_default(),
            };
            // Clone the tuple only on the first write of this value —
            // repeats (the common case under a Zipfian workload) just push.
            match by_tuple.get_mut(written) {
                Some(positions) => positions.push(pos),
                None => {
                    by_tuple.insert(written.clone(), vec![pos]);
                }
            }
        }
    }

    /// Appends a published transaction. Publishing the same transaction id
    /// twice is an error.
    pub fn publish(&mut self, epoch: Epoch, transaction: Transaction) -> Result<()> {
        if self.by_id.contains_key(&transaction.id()) {
            return Err(StorageError::TransactionLog(format!(
                "transaction {} already published",
                transaction.id()
            )));
        }
        let pos = self.next_pos;
        self.next_pos += 1;
        self.entries.insert(pos, LogEntry { epoch, transaction: Arc::new(transaction) });
        self.index_entry(pos);
        Ok(())
    }

    /// Number of *live* (unpruned) transactions in the log.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the log holds no live transactions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of transactions ever published, including pruned ones.
    pub fn total_published(&self) -> u64 {
        self.next_pos
    }

    /// Number of entries removed by retention so far.
    pub fn pruned_entries(&self) -> u64 {
        self.next_pos - self.entries.len() as u64
    }

    /// Looks up a transaction by id.
    pub fn get(&self, id: TransactionId) -> Option<&Transaction> {
        self.by_id.get(&id).map(|pos| self.entries[pos].transaction.as_ref())
    }

    /// Looks up a transaction by id, returning a shared handle (a
    /// reference-count bump, never a deep copy).
    pub fn get_arc(&self, id: TransactionId) -> Option<Arc<Transaction>> {
        self.by_id.get(&id).map(|pos| Arc::clone(&self.entries[pos].transaction))
    }

    /// The epoch in which a transaction was published.
    pub fn epoch_of(&self, id: TransactionId) -> Option<Epoch> {
        self.by_id.get(&id).map(|pos| self.entries[pos].epoch)
    }

    /// The log position (publication order) of a transaction. Positions are
    /// permanent: they survive pruning unchanged.
    pub fn position_of(&self, id: TransactionId) -> Option<u64> {
        self.by_id.get(&id).copied()
    }

    /// All live entries, in publication order.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> + '_ {
        self.entries.values()
    }

    /// Transactions published in the given epoch, in publication order.
    pub fn in_epoch(&self, epoch: Epoch) -> Vec<&Transaction> {
        self.by_epoch
            .get(&epoch.as_u64())
            .map(|positions| {
                positions.iter().map(|pos| self.entries[pos].transaction.as_ref()).collect()
            })
            .unwrap_or_default()
    }

    /// Transactions published in epochs `(after, up_to]`, in publication
    /// order. This is the "relevant transactions" query of the paper: the
    /// updates a participant has not yet seen.
    pub fn in_range(&self, after: Epoch, up_to: Epoch) -> Vec<&Transaction> {
        let mut out = Vec::new();
        if up_to <= after {
            return out;
        }
        for (_, positions) in self.by_epoch.range((after.as_u64() + 1)..=(up_to.as_u64())) {
            for pos in positions {
                out.push(self.entries[pos].transaction.as_ref());
            }
        }
        out
    }

    /// Transactions published by a specific participant, in publication order.
    pub fn by_participant(&self, participant: ParticipantId) -> Vec<&Transaction> {
        self.entries
            .values()
            .filter(|e| e.transaction.origin() == participant)
            .map(|e| e.transaction.as_ref())
            .collect()
    }

    /// The positions of the direct antecedents of a transaction (see
    /// [`TransactionLog::antecedents_of`]).
    fn antecedent_positions(&self, txn: &Transaction, before: u64) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for u in txn.updates() {
            let Some(read) = u.read_tuple() else { continue };
            let Some(writers) = self.writers.get(&u.relation).and_then(|m| m.get(read)) else {
                continue;
            };
            // Most recent writer strictly before `before`, excluding the
            // transaction itself.
            if let Some(&pos) = writers
                .iter()
                .rfind(|&&p| p < before && self.entries[&p].transaction.id() != txn.id())
            {
                if !out.contains(&pos) {
                    out.push(pos);
                }
            }
        }
        out
    }

    /// The direct antecedents of a transaction (Definition 3's `ante(X)`):
    /// for each tuple value that `txn` deletes or modifies, the most recently
    /// published transaction that inserted that tuple value or modified some
    /// tuple into it.
    ///
    /// `before` bounds the search to transactions published strictly before
    /// the given log position (pass `self.total_published()` for a
    /// transaction not yet in the log, or its own position for a published
    /// one).
    pub fn antecedents_of(
        &self,
        txn: &Transaction,
        schema: &Schema,
        before: u64,
    ) -> Vec<TransactionId> {
        let _ = schema; // antecedent chasing is on exact tuple values
        self.antecedent_positions(txn, before)
            .into_iter()
            .map(|pos| self.entries[&pos].transaction.id())
            .collect()
    }

    /// The transaction extension of Definition 3: the transitive closure of a
    /// transaction's antecedents, excluding transactions in `already_applied`
    /// (and their own antecedents are not chased through them), sorted by
    /// publication order with the root transaction last.
    ///
    /// The root transaction itself is always included (as the last element).
    pub fn transaction_extension(
        &self,
        root: &Transaction,
        schema: &Schema,
        already_applied: &FxHashSet<TransactionId>,
    ) -> Vec<TransactionId> {
        let root_pos = self.position_of(root.id()).unwrap_or(self.next_pos);
        let mut members: FxHashSet<TransactionId> = FxHashSet::default();
        let mut stack: Vec<(TransactionId, u64)> = Vec::new();
        for ante in self.antecedents_of(root, schema, root_pos) {
            if !already_applied.contains(&ante) && members.insert(ante) {
                if let Some(pos) = self.position_of(ante) {
                    stack.push((ante, pos));
                }
            }
        }
        while let Some((id, pos)) = stack.pop() {
            if let Some(txn) = self.get(id) {
                let txn = txn.clone();
                for ante in self.antecedents_of(&txn, schema, pos) {
                    if !already_applied.contains(&ante) && members.insert(ante) {
                        if let Some(p) = self.position_of(ante) {
                            stack.push((ante, p));
                        }
                    }
                }
            }
        }
        let mut ordered: Vec<TransactionId> = members.into_iter().collect();
        ordered.sort_by_key(|id| self.position_of(*id).unwrap_or(u64::MAX));
        ordered.push(root.id());
        ordered
    }

    /// The positions at or below `horizon` that future log queries can still
    /// reach — the **pinned-ancestor set** of convergence-horizon retention:
    ///
    /// * the most recent writer of every distinct tuple value ever written
    ///   (a transaction executed against any instance in the future reads a
    ///   value some past transaction wrote, and its antecedent is that
    ///   value's last writer);
    /// * the direct antecedents of every retained (post-horizon) entry (the
    ///   extensions of still-live candidates chase through them);
    /// * transitively, the antecedents of everything pinned (the chase
    ///   recurses per member at the member's own position).
    ///
    /// Pruning everything at or below the horizon *except* this set leaves
    /// every future antecedent chase — and therefore every future candidate
    /// extension and every future decision — exactly as the unpruned log
    /// would have produced it.
    pub fn pinned_ancestors(&self, schema: &Schema, horizon: Epoch) -> FxHashSet<u64> {
        let mut pinned: FxHashSet<u64> = FxHashSet::default();
        let mut stack: Vec<u64> = Vec::new();
        let pin = |pos: u64, pinned: &mut FxHashSet<u64>, stack: &mut Vec<u64>| {
            if self.entries[&pos].epoch <= horizon && pinned.insert(pos) {
                stack.push(pos);
            }
        };
        // Seed 1: the last writer of every distinct written tuple value.
        for positions in self.writers.values().flat_map(|by_tuple| by_tuple.values()) {
            if let Some(&last) = positions.last() {
                pin(last, &mut pinned, &mut stack);
            }
        }
        // Seed 2: the direct antecedents of every retained entry.
        for (&pos, entry) in self.entries.iter().filter(|(_, e)| e.epoch > horizon) {
            for ante in self.antecedent_positions(&entry.transaction, pos) {
                pin(ante, &mut pinned, &mut stack);
            }
        }
        // Transitive closure over antecedent links.
        while let Some(pos) = stack.pop() {
            let txn = Arc::clone(&self.entries[&pos].transaction);
            let _ = schema; // antecedent chasing is on exact tuple values
            for ante in self.antecedent_positions(&txn, pos) {
                pin(ante, &mut pinned, &mut stack);
            }
        }
        pinned
    }

    /// Removes every entry at or below `horizon` whose position is not in
    /// `pinned`, rebuilding the derived indexes over the survivors. Returns
    /// the number of entries removed. Positions of surviving entries are
    /// unchanged.
    pub fn prune_below(&mut self, horizon: Epoch, pinned: &FxHashSet<u64>) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|pos, entry| entry.epoch > horizon || pinned.contains(pos));
        let removed = (before - self.entries.len()) as u64;
        if removed > 0 {
            self.rebuild_indexes();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::Update;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn txn(participant: u32, local: u64, updates: Vec<Update>) -> Transaction {
        Transaction::from_parts(p(participant), local, updates).unwrap()
    }

    #[test]
    fn publish_and_lookup() {
        let mut log = TransactionLog::new();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        log.publish(Epoch(1), x.clone()).unwrap();
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert_eq!(log.total_published(), 1);
        assert_eq!(log.pruned_entries(), 0);
        assert_eq!(log.get(x.id()).unwrap(), &x);
        assert_eq!(log.epoch_of(x.id()), Some(Epoch(1)));
        assert_eq!(log.position_of(x.id()), Some(0));
        assert!(log.get(TransactionId::new(p(9), 9)).is_none());
    }

    #[test]
    fn duplicate_publication_rejected() {
        let mut log = TransactionLog::new();
        let x = txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(3))]);
        log.publish(Epoch(1), x.clone()).unwrap();
        assert!(log.publish(Epoch(2), x).is_err());
    }

    #[test]
    fn epoch_and_range_queries() {
        let mut log = TransactionLog::new();
        let x1 = txn(1, 0, vec![Update::insert("Function", func("a", "p1", "f1"), p(1))]);
        let x2 = txn(2, 0, vec![Update::insert("Function", func("b", "p2", "f2"), p(2))]);
        let x3 = txn(1, 1, vec![Update::insert("Function", func("c", "p3", "f3"), p(1))]);
        log.publish(Epoch(1), x1.clone()).unwrap();
        log.publish(Epoch(2), x2.clone()).unwrap();
        log.publish(Epoch(4), x3.clone()).unwrap();

        assert_eq!(log.in_epoch(Epoch(2)), vec![&x2]);
        assert!(log.in_epoch(Epoch(3)).is_empty());
        assert_eq!(log.in_range(Epoch(0), Epoch(4)).len(), 3);
        assert_eq!(log.in_range(Epoch(1), Epoch(4)), vec![&x2, &x3]);
        assert_eq!(log.in_range(Epoch(4), Epoch(4)).len(), 0);
        assert_eq!(log.by_participant(p(1)), vec![&x1, &x3]);
    }

    #[test]
    fn antecedents_follow_written_tuples() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        // X3:0 inserts, X3:1 modifies the inserted value: antecedent of X3:1
        // is X3:0.
        let x0 =
            txn(3, 0, vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3))]);
        let x1 = txn(
            3,
            1,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p(3),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(1), x1.clone()).unwrap();
        let antes = log.antecedents_of(&x1, &schema, log.position_of(x1.id()).unwrap());
        assert_eq!(antes, vec![x0.id()]);
        // The insert has no antecedent.
        let antes0 = log.antecedents_of(&x0, &schema, 0);
        assert!(antes0.is_empty());
    }

    #[test]
    fn antecedents_pick_latest_writer() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "v"), p(1))]);
        let x1 = txn(
            1,
            1,
            vec![
                Update::delete("Function", func("rat", "prot1", "v"), p(1)),
                Update::insert("Function", func("rat", "prot1", "v"), p(1)),
            ],
        );
        let x2 = txn(2, 0, vec![Update::delete("Function", func("rat", "prot1", "v"), p(2))]);
        log.publish(Epoch(1), x0).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        log.publish(Epoch(3), x2.clone()).unwrap();
        let antes = log.antecedents_of(&x2, &schema, log.position_of(x2.id()).unwrap());
        assert_eq!(antes, vec![x1.id()]);
    }

    #[test]
    fn transaction_extension_transitively_closes() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "a"),
                func("rat", "prot1", "b"),
                p(2),
            )],
        );
        let x2 = txn(
            3,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "b"),
                func("rat", "prot1", "c"),
                p(3),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        log.publish(Epoch(3), x2.clone()).unwrap();

        let ext = log.transaction_extension(&x2, &schema, &FxHashSet::default());
        assert_eq!(ext, vec![x0.id(), x1.id(), x2.id()]);

        // If the middle transaction is already applied, the chase stops there.
        let mut applied = FxHashSet::default();
        applied.insert(x1.id());
        let ext = log.transaction_extension(&x2, &schema, &applied);
        assert_eq!(ext, vec![x2.id()]);
    }

    #[test]
    fn rebuild_indexes_after_serde() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "a"),
                func("rat", "prot1", "b"),
                p(2),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        let json = serde_json::to_string(&log).unwrap();
        let mut back: TransactionLog = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back.len(), 2);
        assert_eq!(back.total_published(), 2);
        assert_eq!(back.get(x0.id()).unwrap(), &x0);
        let ext = back.transaction_extension(&x1, &schema, &FxHashSet::default());
        assert_eq!(ext.len(), 2);
    }

    /// A three-link modify chain: the pinned set keeps the whole lineage of
    /// the live value, and the extension of a post-horizon transaction is
    /// identical before and after pruning.
    #[test]
    fn pinned_ancestors_preserve_extensions_across_pruning() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        let x0 = txn(1, 0, vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))]);
        let x1 = txn(
            2,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "a"),
                func("rat", "prot1", "b"),
                p(2),
            )],
        );
        // An unrelated, fully superseded value: its last writer still pins.
        let y0 = txn(1, 1, vec![Update::insert("Function", func("dog", "prot9", "z"), p(1))]);
        let x2 = txn(
            3,
            0,
            vec![Update::modify(
                "Function",
                func("rat", "prot1", "b"),
                func("rat", "prot1", "c"),
                p(3),
            )],
        );
        log.publish(Epoch(1), x0.clone()).unwrap();
        log.publish(Epoch(2), x1.clone()).unwrap();
        log.publish(Epoch(3), y0.clone()).unwrap();
        log.publish(Epoch(4), x2.clone()).unwrap();

        let unpruned = log.transaction_extension(&x2, &schema, &FxHashSet::default());

        // Horizon 3: x0, x1 and y0 are candidates for pruning, but all three
        // are pinned — x1 as x2's antecedent (and last writer of "b"), x0 as
        // x1's antecedent (and last writer of "a"), y0 as last writer of "z".
        let pinned = log.pinned_ancestors(&schema, Epoch(3));
        assert_eq!(pinned.len(), 3);
        let removed = log.prune_below(Epoch(3), &pinned);
        assert_eq!(removed, 0);

        // With a fresh write superseding y0's value, y0's pin shifts to the
        // new writer and y0 itself is pruned.
        let y1 = txn(
            2,
            1,
            vec![Update::modify(
                "Function",
                func("dog", "prot9", "z"),
                func("dog", "prot9", "w"),
                p(2),
            )],
        );
        log.publish(Epoch(5), y1.clone()).unwrap();
        // Now prune to horizon 4: y0 is pinned as y1's antecedent, so still
        // nothing goes; prune to horizon 3 with y1's chain pinned keeps all.
        let pinned = log.pinned_ancestors(&schema, Epoch(4));
        assert!(pinned.contains(&log.position_of(y0.id()).unwrap()));

        // Pruning never changes the extension of a live transaction.
        let after = log.transaction_extension(&x2, &schema, &FxHashSet::default());
        assert_eq!(unpruned, after);
    }

    /// A value chain that is fully superseded and whose lineage ends below
    /// the horizon in a *dead* value gets pruned, while live lineage stays.
    #[test]
    fn prune_below_removes_unreachable_entries_and_keeps_positions() {
        let schema = bioinformatics_schema();
        let mut log = TransactionLog::new();
        // Dead chain: insert v then delete v — nothing reads v afterwards,
        // but the delete is the last writer of nothing (deletes write no
        // tuple), and the insert is *not* the last writer pin for any live
        // value once a later insert writes v again and stays live.
        let d0 = txn(1, 0, vec![Update::insert("Function", func("x", "k", "v"), p(1))]);
        let d1 = txn(1, 1, vec![Update::delete("Function", func("x", "k", "v"), p(1))]);
        let d2 = txn(2, 0, vec![Update::insert("Function", func("x", "k", "v"), p(2))]);
        let live = txn(3, 0, vec![Update::insert("Function", func("y", "k2", "w"), p(3))]);
        log.publish(Epoch(1), d0.clone()).unwrap();
        log.publish(Epoch(2), d1.clone()).unwrap();
        log.publish(Epoch(3), d2.clone()).unwrap();
        log.publish(Epoch(4), live.clone()).unwrap();

        let pinned = log.pinned_ancestors(&schema, Epoch(3));
        // d2 is the last writer of value v: pinned. Its antecedent is d1?
        // No — d1 *deleted* v (writes nothing); d2's read set is empty (an
        // insert), so the chain stops. d0 and d1 are unreachable.
        assert!(pinned.contains(&log.position_of(d2.id()).unwrap()));
        assert!(!pinned.contains(&log.position_of(d0.id()).unwrap()));
        let removed = log.prune_below(Epoch(3), &pinned);
        assert_eq!(removed, 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_published(), 4);
        assert_eq!(log.pruned_entries(), 2);
        // Surviving positions are unchanged; pruned ids resolve to nothing.
        assert_eq!(log.position_of(d2.id()), Some(2));
        assert_eq!(log.position_of(live.id()), Some(3));
        assert!(log.get(d0.id()).is_none());
        assert!(log.epoch_of(d1.id()).is_none());
        assert!(log.in_epoch(Epoch(1)).is_empty());
        assert_eq!(log.in_range(Epoch(0), Epoch(4)).len(), 2);
        // A sparse log round-trips through serde with positions intact.
        let json = serde_json::to_string(&log).unwrap();
        let mut back: TransactionLog = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back.position_of(d2.id()), Some(2));
        assert_eq!(back.total_published(), 4);
        assert_eq!(format!("{back:?}"), format!("{log:?}"));
    }
}
