//! JSON persistence for database instances and transaction logs.
//!
//! Participants in the paper publish their instance alongside their update
//! log; persisting an instance to a file is how an Orchestra deployment would
//! checkpoint or exchange full instances out of band. The format is plain
//! JSON so it stays debuggable and diffable.

use crate::database::Database;
use crate::error::{Result, StorageError};
use crate::log::TransactionLog;
use std::fs;
use std::path::Path;

/// Serialises a database instance to a JSON string.
pub fn database_to_json(db: &Database) -> Result<String> {
    serde_json::to_string_pretty(db).map_err(|e| StorageError::Persistence(e.to_string()))
}

/// Restores a database instance from a JSON string.
pub fn database_from_json(json: &str) -> Result<Database> {
    serde_json::from_str(json).map_err(|e| StorageError::Persistence(e.to_string()))
}

/// Writes a database instance to a file as JSON.
pub fn save_database(db: &Database, path: &Path) -> Result<()> {
    let json = database_to_json(db)?;
    fs::write(path, json).map_err(|e| StorageError::Persistence(e.to_string()))
}

/// Reads a database instance from a JSON file.
pub fn load_database(path: &Path) -> Result<Database> {
    let json = fs::read_to_string(path).map_err(|e| StorageError::Persistence(e.to_string()))?;
    database_from_json(&json)
}

/// Serialises a transaction log to a JSON string.
pub fn log_to_json(log: &TransactionLog) -> Result<String> {
    serde_json::to_string_pretty(log).map_err(|e| StorageError::Persistence(e.to_string()))
}

/// Restores a transaction log from a JSON string, rebuilding its indexes.
pub fn log_from_json(json: &str) -> Result<TransactionLog> {
    let mut log: TransactionLog =
        serde_json::from_str(json).map_err(|e| StorageError::Persistence(e.to_string()))?;
    log.rebuild_indexes();
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Epoch, ParticipantId, Transaction, Tuple, Update};

    #[test]
    fn database_json_round_trip() {
        let mut db = Database::new(bioinformatics_schema());
        db.apply_update(&Update::insert(
            "Function",
            Tuple::of_text(&["rat", "prot1", "immune"]),
            ParticipantId(1),
        ))
        .unwrap();
        let json = database_to_json(&db).unwrap();
        let back = database_from_json(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn database_file_round_trip() {
        let mut db = Database::new(bioinformatics_schema());
        db.apply_update(&Update::insert(
            "Function",
            Tuple::of_text(&["mouse", "prot2", "immune"]),
            ParticipantId(2),
        ))
        .unwrap();
        let dir = std::env::temp_dir().join("orchestra-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.json");
        save_database(&db, &path).unwrap();
        let back = load_database(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_json_is_reported() {
        assert!(matches!(database_from_json("{not json"), Err(StorageError::Persistence(_))));
        assert!(load_database(Path::new("/nonexistent/orchestra.json")).is_err());
    }

    #[test]
    fn log_json_round_trip_preserves_queries() {
        let mut log = TransactionLog::new();
        let txn = Transaction::from_parts(
            ParticipantId(1),
            0,
            vec![Update::insert(
                "Function",
                Tuple::of_text(&["rat", "prot1", "a"]),
                ParticipantId(1),
            )],
        )
        .unwrap();
        log.publish(Epoch(1), txn.clone()).unwrap();
        let json = log_to_json(&log).unwrap();
        let back = log_from_json(&json).unwrap();
        assert_eq!(back.get(txn.id()).unwrap(), &txn);
        assert_eq!(back.in_epoch(Epoch(1)).len(), 1);
    }
}
