//! Per-shard WAL segments with deterministic merge recovery.
//!
//! PR 4's durability layer serialised every durable commit through one
//! mutex-guarded [`FrameLog`]. That is correct but collapses the store's
//! shard parallelism at the moment it matters most — the `fsync` (or at
//! least the write) at the end of a commit. This module splits one WAL
//! *generation* into independent append-only segments:
//!
//! ```text
//! wal.<gen>.log        the log-shard segment (Init, RegisterPolicy,
//!                      Publish, MembershipFrontier, RetireParticipant,
//!                      Prune)
//! wal.<gen>.p<id>.log  one segment per participant shard
//!                      (CommitReconciliation, Decisions), created lazily
//! ```
//!
//! Durable commits on different shards now append to different files under
//! different mutexes, so they proceed in parallel; group commit
//! ([`FlushPolicy`]) applies per segment.
//!
//! # Stamps and the merge rule
//!
//! Replay order across segments must be recovered without a shared cursor.
//! Every frame payload therefore carries a stamp ahead of the record bytes:
//!
//! ```text
//! varint(epoch) | varint(seq) | varint(publisher+1) | varint(pubseq) | record
//! ```
//!
//! `seq` comes from one atomic counter, so it is unique and any two appends
//! ordered by happens-before (through the catalogue's lock order) get
//! increasing values. `epoch` is the segment manager's *epoch watermark*:
//! publishes (scalar and causal) raise it to their own arrival epoch, every
//! other record reads it. The watermark is monotone, and a record's stamp
//! dominates the stamps of every record it causally depends on — a
//! reconciliation pinned to epoch `e` is only possible after the publishes
//! through `e` were appended, so its stamp epoch is `≥ e` and its `seq`
//! larger than theirs.
//!
//! The last two varints carry the *causal* identity of a causal-mode publish
//! (`publisher + 1` so that `0` means "no causal stamp", `pubseq` its
//! per-publisher sequence). Recovery opens all segments of the generation and
//! replays the union sorted by `(epoch, seq)` with ties broken by the
//! deterministic causal tie-break ([`StampId::tie_break`]: deeper
//! per-publisher chain first, then the smaller publisher). Within one
//! manager's lifetime `seq` never collides, so the tie-break only decides
//! between segments written by independent sequencers — and it decides them
//! identically on every replica, which is what makes the merged replay a
//! deterministic linear extension of the causal order rather than an
//! arrival-order accident.

use crate::codec::{read_varint, write_varint, Codec};
use crate::error::{Result, StorageError};
use crate::snapshot::{shard_wal_path, wal_path};
use crate::wal::{FlushPolicy, FrameLog, WalRecord};
use orchestra_model::{ParticipantId, StampId};
use orchestra_obs::Obs;
use rustc_hash::FxHashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The replay-ordering stamp carried ahead of every frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameStamp {
    /// The epoch watermark at append time (a publish's own arrival epoch).
    pub epoch: u64,
    /// The manager's global append sequence.
    pub seq: u64,
    /// The causal identity of a causal-mode publish (`None` for scalar-mode
    /// and non-publish records).
    pub stamp: Option<StampId>,
}

impl FrameStamp {
    /// The deterministic merge order: `(epoch, seq)` first, causal tie-break
    /// ([`StampId::tie_break`]) on collisions, stamped records ahead of
    /// stampless ones so the order is total either way.
    pub fn merge_cmp(&self, other: &FrameStamp) -> std::cmp::Ordering {
        (self.epoch, self.seq).cmp(&(other.epoch, other.seq)).then_with(|| {
            match (self.stamp, other.stamp) {
                (Some(a), Some(b)) => a.tie_break(b),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
        })
    }
}

/// Splits a stamped frame payload into its [`FrameStamp`] and record bytes.
pub fn parse_stamp(payload: &[u8]) -> Result<(FrameStamp, &[u8])> {
    let mut pos = 0;
    let epoch = read_varint(payload, &mut pos)?;
    let seq = read_varint(payload, &mut pos)?;
    let publisher_plus_1 = read_varint(payload, &mut pos)?;
    let pubseq = read_varint(payload, &mut pos)?;
    let stamp = if publisher_plus_1 == 0 {
        None
    } else {
        let publisher = u32::try_from(publisher_plus_1 - 1)
            .map_err(|_| StorageError::Persistence("frame stamp publisher overflow".to_string()))?;
        Some(StampId::new(ParticipantId(publisher), pubseq))
    };
    Ok((FrameStamp { epoch, seq, stamp }, &payload[pos..]))
}

fn stamp_payload(stamp: FrameStamp, record: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(record.len() + 24);
    write_varint(&mut payload, stamp.epoch);
    write_varint(&mut payload, stamp.seq);
    match stamp.stamp {
        Some(id) => {
            write_varint(&mut payload, u64::from(id.publisher.as_u32()) + 1);
            write_varint(&mut payload, id.seq);
        }
        None => {
            write_varint(&mut payload, 0);
            write_varint(&mut payload, 0);
        }
    }
    payload.extend_from_slice(record);
    payload
}

/// Which segment a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegmentId {
    /// The log-shard segment (`wal.<gen>.log`).
    Log,
    /// A participant shard's segment (`wal.<gen>.p<id>.log`).
    Participant(ParticipantId),
}

fn route(record: &WalRecord) -> SegmentId {
    match record {
        WalRecord::CommitReconciliation { participant, .. }
        | WalRecord::Decisions { participant, .. }
        | WalRecord::InstanceCheckpoint { participant, .. } => SegmentId::Participant(*participant),
        // Causal publishes carry their own ordering identity, so they need
        // no log-shard serialisation: they append to the publisher's own
        // segment, which is what lets distinct publishers commit in parallel.
        WalRecord::PublishCausal { stamp, .. } => SegmentId::Participant(stamp.publisher),
        _ => SegmentId::Log,
    }
}

/// A write-ahead log generation split into per-shard segments.
///
/// Appends take `&self`: the shared state (segment map, flush policy) is
/// behind short-lived locks, and the file write happens under the target
/// segment's own mutex — commits on different shards do not serialise on
/// each other. With `per_shard` off, every record routes to the log-shard
/// segment (still stamped), which is the single-segment layout the benches
/// compare against.
#[derive(Debug)]
pub struct SegmentedWal {
    dir: PathBuf,
    generation: u64,
    codec: Codec,
    per_shard: bool,
    seq: AtomicU64,
    /// Largest epoch ever carried by a publish append; stamps every
    /// non-publish record without touching the log shard's lock.
    epoch_watermark: AtomicU64,
    flush: Mutex<FlushPolicy>,
    log: Arc<Mutex<FrameLog>>,
    shards: Mutex<FxHashMap<u32, Arc<Mutex<FrameLog>>>>,
    /// The sink every current and future segment reports into
    /// (disabled/private by default; see [`SegmentedWal::set_observability`]).
    obs: Mutex<Obs>,
}

impl SegmentedWal {
    /// Creates a fresh, empty generation (truncating any existing log-shard
    /// segment file of the same name).
    pub fn create(dir: &Path, generation: u64, codec: Codec, per_shard: bool) -> Result<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::Persistence(format!("create {}: {e}", dir.display())))?;
        let log = FrameLog::create(&wal_path(dir, generation))?;
        Ok(SegmentedWal {
            dir: dir.to_path_buf(),
            generation,
            codec,
            per_shard,
            seq: AtomicU64::new(0),
            epoch_watermark: AtomicU64::new(0),
            flush: Mutex::new(FlushPolicy::default()),
            log: Arc::new(Mutex::new(log)),
            shards: Mutex::new(FxHashMap::default()),
            obs: Mutex::new(Obs::disabled()),
        })
    }

    /// Opens every segment of a generation, truncating torn tails, and
    /// returns the manager positioned for appends together with the merged
    /// record sequence in `(epoch, seq)` order — the deterministic replay
    /// order. Reading sniffs the codec per record, so generations written in
    /// either codec (or mixed) replay fine; new appends use `codec`, or —
    /// when `None` — the codec of the generation's first record (so a
    /// recovered store keeps writing the way it was configured), falling
    /// back to the default for an empty generation.
    pub fn open(
        dir: &Path,
        generation: u64,
        codec: Option<Codec>,
        per_shard: bool,
    ) -> Result<(Self, Vec<WalRecord>)> {
        let mut stamped: Vec<(FrameStamp, WalRecord)> = Vec::new();
        let mut max_seq = 0u64;
        let mut max_epoch = 0u64;
        let mut first: Option<(FrameStamp, Codec)> = None;
        let mut read_segment = |path: &Path| -> Result<FrameLog> {
            let (log, frames) = FrameLog::open(path)?;
            for frame in &frames {
                let (stamp, record_bytes) = parse_stamp(frame)?;
                let record = WalRecord::decode(record_bytes)?;
                max_seq = max_seq.max(stamp.seq + 1);
                max_epoch = max_epoch.max(stamp.epoch);
                let earliest = match first {
                    Some((s, _)) => stamp.merge_cmp(&s).is_lt(),
                    None => true,
                };
                if earliest {
                    first = Some((stamp, crate::codec::payload_codec(record_bytes)));
                }
                stamped.push((stamp, record));
            }
            Ok(log)
        };
        let log = read_segment(&wal_path(dir, generation))?;
        let mut shards = FxHashMap::default();
        for id in list_shard_segments(dir, generation)? {
            let shard_log = read_segment(&shard_wal_path(dir, generation, id))?;
            shards.insert(id.as_u32(), Arc::new(Mutex::new(shard_log)));
        }
        stamped.sort_by(|(a, _), (b, _)| a.merge_cmp(b));
        let records = stamped.into_iter().map(|(_, record)| record).collect();
        let codec = codec.or(first.map(|(_, c)| c)).unwrap_or_default();
        Ok((
            SegmentedWal {
                dir: dir.to_path_buf(),
                generation,
                codec,
                per_shard,
                seq: AtomicU64::new(max_seq),
                epoch_watermark: AtomicU64::new(max_epoch),
                flush: Mutex::new(FlushPolicy::default()),
                log: Arc::new(Mutex::new(log)),
                shards: Mutex::new(shards),
                obs: Mutex::new(Obs::disabled()),
            },
            records,
        ))
    }

    /// [`SegmentedWal::open`] with observability bound from the start: every
    /// segment reports into `obs`, the merged replay is counted under
    /// `wal.replayed_frames`, and a `wal.replay` trace event records it.
    pub fn open_observed(
        dir: &Path,
        generation: u64,
        codec: Option<Codec>,
        per_shard: bool,
        obs: &Obs,
    ) -> Result<(Self, Vec<WalRecord>)> {
        let (wal, records) = SegmentedWal::open(dir, generation, codec, per_shard)?;
        wal.set_observability(obs);
        obs.metrics.counter("wal.replayed_frames").add(records.len() as u64);
        obs.tracer
            .event("wal.replay", &[("frames", records.len() as u64), ("generation", generation)]);
        Ok((wal, records))
    }

    /// Binds every current and future segment of this generation to a shared
    /// observability sink (see [`FrameLog::set_observability`]).
    pub fn set_observability(&self, obs: &Obs) {
        *self.obs.lock().expect("wal obs lock") = obs.clone();
        let _ = self.for_each_segment(|log| {
            log.set_observability(obs);
            Ok(())
        });
    }

    /// The sink this generation's segments report into.
    pub fn observability(&self) -> Obs {
        self.obs.lock().expect("wal obs lock").clone()
    }

    /// Appends one record to its segment: publishes and other log-shard
    /// records to `wal.<gen>.log`, reconciliation commits and decisions to
    /// the owning participant's segment (created on first use). The stamp is
    /// taken before the write; the write itself holds only the target
    /// segment's mutex.
    pub fn append(&self, record: &WalRecord) -> Result<()> {
        let (epoch, causal) = match record {
            WalRecord::Publish { epoch, .. } => {
                self.epoch_watermark.fetch_max(epoch.as_u64(), Ordering::SeqCst);
                (epoch.as_u64(), None)
            }
            WalRecord::PublishCausal { epoch, stamp, .. } => {
                self.epoch_watermark.fetch_max(epoch.as_u64(), Ordering::SeqCst);
                (epoch.as_u64(), Some(stamp.id()))
            }
            _ => (self.epoch_watermark.load(Ordering::SeqCst), None),
        };
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let payload =
            stamp_payload(FrameStamp { epoch, seq, stamp: causal }, &record.encode(self.codec));
        let segment = match route(record) {
            SegmentId::Participant(p) if self.per_shard => self.shard_segment(p)?,
            _ => Arc::clone(&self.log),
        };
        let result = segment.lock().expect("segment lock").append(&payload);
        result
    }

    /// The segment of a participant shard, created (empty, with the current
    /// flush policy) on first use.
    fn shard_segment(&self, participant: ParticipantId) -> Result<Arc<Mutex<FrameLog>>> {
        let mut shards = self.shards.lock().expect("shard segment map lock");
        if let Some(segment) = shards.get(&participant.as_u32()) {
            return Ok(Arc::clone(segment));
        }
        let mut log = FrameLog::create(&shard_wal_path(&self.dir, self.generation, participant))?;
        log.set_flush_policy(*self.flush.lock().expect("flush policy lock"));
        log.set_observability(&self.obs.lock().expect("wal obs lock"));
        let segment = Arc::new(Mutex::new(log));
        shards.insert(participant.as_u32(), Arc::clone(&segment));
        Ok(segment)
    }

    fn for_each_segment<T>(&self, mut f: impl FnMut(&mut FrameLog) -> Result<T>) -> Result<Vec<T>> {
        let mut segments = vec![Arc::clone(&self.log)];
        segments.extend(self.shards.lock().expect("shard segment map lock").values().cloned());
        let mut out = Vec::with_capacity(segments.len());
        for segment in segments {
            out.push(f(&mut segment.lock().expect("segment lock"))?);
        }
        Ok(out)
    }

    /// Flushes every segment to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.for_each_segment(|log| log.sync())?;
        Ok(())
    }

    /// Sets when appends `fsync`, on every current and future segment.
    pub fn set_flush_policy(&self, policy: FlushPolicy) {
        *self.flush.lock().expect("flush policy lock") = policy;
        let _ = self.for_each_segment(|log| {
            log.set_flush_policy(policy);
            Ok(())
        });
    }

    /// The flush policy new appends run under.
    pub fn flush_policy(&self) -> FlushPolicy {
        *self.flush.lock().expect("flush policy lock")
    }

    /// Records in this generation, across all segments.
    pub fn records(&self) -> u64 {
        self.for_each_segment(|log| Ok(log.records())).map(|v| v.iter().sum()).unwrap_or(0)
    }

    /// Bytes in this generation, across all segments.
    pub fn bytes(&self) -> u64 {
        self.for_each_segment(|log| Ok(log.bytes())).map(|v| v.iter().sum()).unwrap_or(0)
    }

    /// Records appended since the last `fsync`, across all segments.
    pub fn unsynced_records(&self) -> u64 {
        self.for_each_segment(|log| Ok(log.unsynced_records())).map(|v| v.iter().sum()).unwrap_or(0)
    }

    /// Number of live segments (1 log shard + participant shards).
    pub fn segment_count(&self) -> usize {
        1 + self.shards.lock().expect("shard segment map lock").len()
    }

    /// The generation this manager appends to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The codec new appends are written in.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Switches the codec used for future appends. Existing frames are
    /// untouched — reads sniff the codec per record, so a generation may mix
    /// codecs freely.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// Whether reconciliation commits get per-participant segments.
    pub fn per_shard(&self) -> bool {
        self.per_shard
    }

    /// The directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Participant ids with a shard segment on disk for this generation, in
/// ascending order.
pub fn list_shard_segments(dir: &Path, generation: u64) -> Result<Vec<ParticipantId>> {
    let mut ids = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ids),
        Err(e) => return Err(StorageError::Persistence(format!("read {}: {e}", dir.display()))),
    };
    let prefix = format!("wal.{generation}.p");
    for entry in entries {
        let entry =
            entry.map_err(|e| StorageError::Persistence(format!("read {}: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            ids.push(ParticipantId(id));
        }
    }
    ids.sort();
    Ok(ids)
}

/// Deletes every segment file of a generation (used after a snapshot has
/// superseded it). Missing files are fine; other I/O errors are reported.
pub fn delete_generation(dir: &Path, generation: u64) -> Result<()> {
    let mut paths = vec![wal_path(dir, generation)];
    for id in list_shard_segments(dir, generation)? {
        paths.push(shard_wal_path(dir, generation, id));
    }
    for path in paths {
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(StorageError::Persistence(format!("remove {}: {e}", path.display())))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::{Epoch, ReconciliationId, TransactionId};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("orchestra-segment-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn publish(p: u32, epoch: u64) -> WalRecord {
        WalRecord::Publish {
            participant: ParticipantId(p),
            epoch: Epoch(epoch),
            transactions: vec![],
        }
    }

    fn commit(p: u32, recno: u64, epoch: u64) -> WalRecord {
        WalRecord::CommitReconciliation {
            participant: ParticipantId(p),
            recno: ReconciliationId(recno),
            epoch: Epoch(epoch),
            accepted: vec![TransactionId::new(ParticipantId(p), recno)],
            rejected: vec![],
        }
    }

    #[test]
    fn stamps_round_trip() {
        let bare = FrameStamp { epoch: 300, seq: 7, stamp: None };
        let payload = stamp_payload(bare, b"record");
        let (stamp, rest) = parse_stamp(&payload).unwrap();
        assert_eq!(stamp, bare);
        assert_eq!(rest, b"record");
        let causal =
            FrameStamp { epoch: 2, seq: 9, stamp: Some(StampId::new(ParticipantId(4), 3)) };
        let payload = stamp_payload(causal, b"x");
        let (stamp, rest) = parse_stamp(&payload).unwrap();
        assert_eq!(stamp, causal);
        assert_eq!(rest, b"x");
        assert!(parse_stamp(&[0x80]).is_err());
    }

    #[test]
    fn merge_cmp_breaks_ties_causally_and_deterministically() {
        let base = FrameStamp { epoch: 3, seq: 5, stamp: None };
        let a = FrameStamp { epoch: 3, seq: 5, stamp: Some(StampId::new(ParticipantId(1), 4)) };
        let b = FrameStamp { epoch: 3, seq: 5, stamp: Some(StampId::new(ParticipantId(2), 9)) };
        // Epoch, then seq, dominate.
        assert!(FrameStamp { epoch: 2, seq: 9, stamp: None }.merge_cmp(&base).is_lt());
        assert!(FrameStamp { epoch: 3, seq: 4, stamp: None }.merge_cmp(&base).is_lt());
        // On a full collision the deeper chain wins, stamped before
        // stampless, and the order is antisymmetric.
        assert!(b.merge_cmp(&a).is_lt());
        assert!(a.merge_cmp(&b).is_gt());
        assert!(a.merge_cmp(&base).is_lt());
        assert!(base.merge_cmp(&a).is_gt());
        assert!(base.merge_cmp(&base).is_eq());
    }

    #[test]
    fn causal_publishes_route_to_the_publisher_segment() {
        let dir = tmp_dir("causal-routing");
        let wal = SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap();
        let stamp = orchestra_model::CausalStamp::new(
            ParticipantId(3),
            1,
            orchestra_model::AntichainClock::new(),
        );
        let record = WalRecord::PublishCausal { epoch: Epoch(1), stamp, transactions: vec![] };
        wal.append(&record).unwrap();
        assert!(dir.join("wal.0.p3.log").exists());
        drop(wal);
        let (_, replay) = SegmentedWal::open(&dir, 0, Some(Codec::Binary), true).unwrap();
        assert_eq!(replay, vec![record]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_route_to_their_shard_segment() {
        let dir = tmp_dir("routing");
        let wal = SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap();
        wal.append(&publish(1, 1)).unwrap();
        wal.append(&commit(1, 1, 1)).unwrap();
        wal.append(&commit(2, 1, 1)).unwrap();
        wal.append(&WalRecord::Prune { horizon: Epoch(0) }).unwrap();
        assert_eq!(wal.segment_count(), 3);
        assert_eq!(wal.records(), 4);
        assert!(dir.join("wal.0.log").exists());
        assert!(dir.join("wal.0.p1.log").exists());
        assert!(dir.join("wal.0.p2.log").exists());
        assert_eq!(list_shard_segments(&dir, 0).unwrap(), vec![ParticipantId(1), ParticipantId(2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_segment_mode_keeps_one_file() {
        let dir = tmp_dir("single");
        let wal = SegmentedWal::create(&dir, 0, Codec::Binary, false).unwrap();
        wal.append(&publish(1, 1)).unwrap();
        wal.append(&commit(1, 1, 1)).unwrap();
        assert_eq!(wal.segment_count(), 1);
        assert!(!dir.join("wal.0.p1.log").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_open_replays_in_stamp_order_in_both_layouts() {
        let records = vec![
            publish(1, 1),
            commit(2, 1, 1),
            publish(3, 2),
            commit(2, 2, 2),
            commit(4, 1, 2),
            WalRecord::MembershipFrontier { epoch: Epoch(2) },
        ];
        let mut merged = Vec::new();
        for (layout, per_shard) in [("sharded", true), ("flat", false)] {
            let dir = tmp_dir(&format!("merge-{layout}"));
            let wal = SegmentedWal::create(&dir, 0, Codec::Binary, per_shard).unwrap();
            for record in &records {
                wal.append(record).unwrap();
            }
            drop(wal);
            let (reopened, replay) =
                SegmentedWal::open(&dir, 0, Some(Codec::Binary), per_shard).unwrap();
            assert_eq!(replay, records, "replay order ({layout})");
            assert_eq!(reopened.records(), records.len() as u64);
            merged.push(replay);
            std::fs::remove_dir_all(&dir).ok();
        }
        // Byte-identical replay across layouts.
        assert_eq!(merged[0], merged[1]);
    }

    #[test]
    fn appends_continue_after_reopen_without_stamp_collisions() {
        let dir = tmp_dir("reopen");
        {
            let wal = SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap();
            wal.append(&publish(1, 1)).unwrap();
            wal.append(&commit(2, 1, 1)).unwrap();
        }
        let (wal, replay) = SegmentedWal::open(&dir, 0, Some(Codec::Binary), true).unwrap();
        assert_eq!(replay.len(), 2);
        wal.append(&commit(2, 2, 1)).unwrap();
        wal.append(&publish(1, 2)).unwrap();
        drop(wal);
        let (_, replay) = SegmentedWal::open(&dir, 0, Some(Codec::Binary), true).unwrap();
        assert_eq!(replay, vec![publish(1, 1), commit(2, 1, 1), commit(2, 2, 1), publish(1, 2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_one_segment_does_not_hurt_the_others() {
        let dir = tmp_dir("torn");
        {
            let wal = SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap();
            wal.append(&publish(1, 1)).unwrap();
            wal.append(&commit(2, 1, 1)).unwrap();
            wal.append(&commit(2, 2, 1)).unwrap();
        }
        // Tear the tail of participant 2's segment mid-frame.
        let shard = dir.join("wal.0.p2.log");
        let bytes = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &bytes[..bytes.len() - 3]).unwrap();
        let (wal, replay) = SegmentedWal::open(&dir, 0, Some(Codec::Binary), true).unwrap();
        assert_eq!(replay, vec![publish(1, 1), commit(2, 1, 1)]);
        assert_eq!(wal.records(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_codec_generations_replay() {
        let dir = tmp_dir("mixed");
        {
            let wal = SegmentedWal::create(&dir, 0, Codec::Json, true).unwrap();
            wal.append(&publish(1, 1)).unwrap();
        }
        {
            let (wal, _) = SegmentedWal::open(&dir, 0, Some(Codec::Binary), true).unwrap();
            wal.append(&commit(2, 1, 1)).unwrap();
        }
        let (_, replay) = SegmentedWal::open(&dir, 0, Some(Codec::Json), true).unwrap();
        assert_eq!(replay, vec![publish(1, 1), commit(2, 1, 1)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_generation_removes_all_segments() {
        let dir = tmp_dir("delete");
        let wal = SegmentedWal::create(&dir, 4, Codec::Binary, true).unwrap();
        wal.append(&commit(1, 1, 0)).unwrap();
        wal.append(&commit(2, 1, 0)).unwrap();
        drop(wal);
        delete_generation(&dir, 4).unwrap();
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        // Deleting again is a no-op.
        delete_generation(&dir, 4).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_policy_reaches_every_segment() {
        let dir = tmp_dir("flush");
        let wal = SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap();
        wal.set_flush_policy(FlushPolicy::EveryN(10));
        wal.append(&commit(1, 1, 0)).unwrap();
        assert_eq!(wal.flush_policy(), FlushPolicy::EveryN(10));
        assert_eq!(wal.unsynced_records(), 1);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_records(), 0);
        // A shard created after the policy was set inherits it.
        wal.append(&commit(2, 1, 0)).unwrap();
        assert_eq!(wal.unsynced_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observability_reaches_every_segment_including_lazy_shards() {
        let dir = tmp_dir("observed");
        let obs = Obs::enabled();
        {
            let wal = SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap();
            wal.set_observability(&obs);
            wal.append(&publish(1, 1)).unwrap();
            // A shard segment created after the bind inherits the sink.
            wal.append(&commit(2, 1, 1)).unwrap();
            wal.sync().unwrap();
        }
        assert_eq!(obs.metrics.counter("wal.appends").get(), 2);
        assert!(obs.metrics.counter("wal.append_bytes").get() > 0);
        // One sync per live segment (log shard + participant 2's shard).
        assert_eq!(obs.metrics.counter("wal.syncs").get(), 2);

        // Observed reopen counts the merged replay once.
        let (wal, replay) =
            SegmentedWal::open_observed(&dir, 0, Some(Codec::Binary), true, &obs).unwrap();
        assert_eq!(replay.len(), 2);
        assert_eq!(obs.metrics.counter("wal.replayed_frames").get(), 2);
        assert!(wal.observability().tracer.is_enabled());
        assert!(obs.tracer.export().contains("wal.replay\tframes=2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_appends_on_distinct_shards_interleave_safely() {
        let dir = tmp_dir("parallel");
        let wal = std::sync::Arc::new(SegmentedWal::create(&dir, 0, Codec::Binary, true).unwrap());
        let threads: Vec<_> = (1..=4u32)
            .map(|p| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        wal.append(&commit(p, i, 0)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.records(), 200);
        drop(wal);
        let (_, replay) = SegmentedWal::open(&dir, 0, Some(Codec::Binary), true).unwrap();
        assert_eq!(replay.len(), 200);
        // Per-shard order is preserved within the merged order.
        for p in 1..=4u32 {
            let recnos: Vec<u64> = replay
                .iter()
                .filter_map(|r| match r {
                    WalRecord::CommitReconciliation { participant, recno, .. }
                        if participant.as_u32() == p =>
                    {
                        Some(recno.0)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(recnos, (0..50).collect::<Vec<_>>());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
