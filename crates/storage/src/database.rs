//! A database instance: a set of tables conforming to a schema, with update
//! application, constraint enforcement and snapshots.

use crate::error::Result;
use crate::table::Table;
use orchestra_model::{InstanceView, KeyValue, Schema, Transaction, Tuple, Update, UpdateOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A participant's database instance (or any relational instance conforming
/// to a [`Schema`]).
///
/// `Database` enforces primary keys structurally (through [`Table`]) and the
/// schema's declared [`orchestra_model::Constraint`]s on every applied update.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Database {
    schema: Schema,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty instance of the given schema.
    pub fn new(schema: Schema) -> Self {
        let tables =
            schema.relations().map(|r| (r.name().to_owned(), Table::new(r.clone()))).collect();
        Database { schema, tables }
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Access a table by relation name.
    pub fn table(&self, relation: &str) -> Result<&Table> {
        self.tables
            .get(relation)
            .ok_or_else(|| orchestra_model::ModelError::UnknownRelation(relation.to_owned()).into())
    }

    /// Mutable access to a table by relation name.
    pub fn table_mut(&mut self, relation: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(relation)
            .ok_or_else(|| orchestra_model::ModelError::UnknownRelation(relation.to_owned()).into())
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Returns true if every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.total_tuples() == 0
    }

    /// Checks whether a single update could be applied to the current state
    /// without violating primary keys or naming absent/stale tuples.
    /// Integrity constraints are checked separately by
    /// [`Database::check_constraints`].
    pub fn is_compatible(&self, update: &Update) -> bool {
        let Ok(table) = self.table(&update.relation) else { return false };
        match &update.op {
            UpdateOp::Insert(t) => table.can_insert(t),
            UpdateOp::Delete(t) => table.can_delete(t),
            UpdateOp::Modify { from, to } => table.can_modify(from, to),
        }
    }

    /// Checks the schema's declared constraints against applying `update` to
    /// the current state.
    pub fn check_constraints(&self, update: &Update) -> Result<()> {
        for c in self.schema.constraints() {
            c.check_update(&self.schema, self, update)?;
        }
        Ok(())
    }

    /// Applies a single update, enforcing primary keys and declared
    /// constraints. On error the instance is unchanged.
    pub fn apply_update(&mut self, update: &Update) -> Result<()> {
        update.validate(&self.schema)?;
        self.check_constraints(update)?;
        let table = self.table_mut(&update.relation)?;
        match &update.op {
            UpdateOp::Insert(t) => table.insert(t.clone()),
            UpdateOp::Delete(t) => table.delete(t),
            UpdateOp::Modify { from, to } => table.modify(from, to.clone()),
        }
    }

    /// Applies a sequence of updates atomically: if any update fails, all
    /// previously applied updates of the sequence are rolled back and the
    /// error is returned.
    pub fn apply_all(&mut self, updates: &[Update]) -> Result<()> {
        let mut undo: Vec<Update> = Vec::with_capacity(updates.len());
        for u in updates {
            match self.apply_update(u) {
                Ok(()) => undo.push(Self::inverse(u)),
                Err(e) => {
                    for inv in undo.iter().rev() {
                        // Undo operations reverse successful forward
                        // operations, so they cannot fail.
                        self.apply_unchecked(inv).expect("undo of applied update");
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Applies all updates of a transaction atomically.
    pub fn apply_transaction(&mut self, txn: &Transaction) -> Result<()> {
        self.apply_all(txn.updates())
    }

    /// Applies an update without constraint checking (used for undo).
    fn apply_unchecked(&mut self, update: &Update) -> Result<()> {
        let table = self.table_mut(&update.relation)?;
        match &update.op {
            UpdateOp::Insert(t) => table.insert(t.clone()),
            UpdateOp::Delete(t) => table.delete(t),
            UpdateOp::Modify { from, to } => table.modify(from, to.clone()),
        }
    }

    /// The inverse of an update (used to roll back partially applied
    /// sequences).
    fn inverse(update: &Update) -> Update {
        match &update.op {
            UpdateOp::Insert(t) => {
                Update::delete(update.relation.clone(), t.clone(), update.origin)
            }
            UpdateOp::Delete(t) => {
                Update::insert(update.relation.clone(), t.clone(), update.origin)
            }
            UpdateOp::Modify { from, to } => {
                Update::modify(update.relation.clone(), to.clone(), from.clone(), update.origin)
            }
        }
    }

    /// A deep copy of the instance (the paper's published instance `I_i`).
    pub fn snapshot(&self) -> Database {
        self.clone()
    }

    /// Returns true if the relation currently contains exactly this tuple.
    pub fn contains_tuple_exact(&self, relation: &str, tuple: &Tuple) -> bool {
        self.tables.get(relation).map(|t| t.contains(tuple)).unwrap_or(false)
    }

    /// Returns true if some row exists under the primary key of `tuple`
    /// (whatever its non-key attributes are).
    pub fn key_present(&self, relation: &str, tuple: &Tuple) -> bool {
        self.tables
            .get(relation)
            .map(|t| t.get(&t.schema().key_of(tuple)).is_some())
            .unwrap_or(false)
    }

    /// The value stored under `(relation, key)`, if any. Used by the
    /// state-ratio metric, which compares per-key values across participants.
    pub fn value_at(&self, relation: &str, key: &KeyValue) -> Option<Tuple> {
        self.tables.get(relation).and_then(|t| t.get(key).cloned())
    }

    /// All `(key, tuple)` pairs of a relation, in key order.
    pub fn relation_contents(&self, relation: &str) -> Vec<(KeyValue, Tuple)> {
        self.tables
            .get(relation)
            .map(|t| t.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default()
    }
}

impl InstanceView for Database {
    fn get_by_key(&self, relation: &str, key: &KeyValue) -> Option<Tuple> {
        self.tables.get(relation).and_then(|t| t.get(key).cloned())
    }

    fn contains_tuple(&self, relation: &str, tuple: &Tuple) -> bool {
        self.tables.get(relation).map(|t| t.contains(tuple)).unwrap_or(false)
    }

    fn scan(&self, relation: &str) -> Vec<Tuple> {
        self.tables.get(relation).map(Table::rows).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Constraint, ParticipantId};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn db() -> Database {
        Database::new(bioinformatics_schema())
    }

    #[test]
    fn fresh_instance_is_empty() {
        let d = db();
        assert!(d.is_empty());
        assert_eq!(d.total_tuples(), 0);
        assert!(d.table("Function").is_ok());
        assert!(d.table("Missing").is_err());
    }

    #[test]
    fn apply_insert_delete_modify() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3)))
            .unwrap();
        d.apply_update(&Update::modify(
            "Function",
            func("rat", "prot1", "cell-metab"),
            func("rat", "prot1", "immune"),
            p(3),
        ))
        .unwrap();
        assert!(d.contains_tuple("Function", &func("rat", "prot1", "immune")));
        d.apply_update(&Update::delete("Function", func("rat", "prot1", "immune"), p(3))).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn incompatible_updates_detected() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(3))).unwrap();
        let divergent = Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2));
        assert!(!d.is_compatible(&divergent));
        assert!(d.apply_update(&divergent).is_err());
        let identical = Update::insert("Function", func("rat", "prot1", "immune"), p(2));
        assert!(d.is_compatible(&identical));
        let missing_delete = Update::delete("Function", func("dog", "prot9", "z"), p(2));
        assert!(!d.is_compatible(&missing_delete));
        let unknown_rel = Update::insert("Nope", func("a", "b", "c"), p(2));
        assert!(!d.is_compatible(&unknown_rel));
    }

    #[test]
    fn apply_all_is_atomic() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        let batch = vec![
            Update::insert("Function", func("mouse", "prot2", "immune"), p(1)),
            // This one fails: divergent insert over existing key.
            Update::insert("Function", func("rat", "prot1", "cell-resp"), p(1)),
        ];
        assert!(d.apply_all(&batch).is_err());
        // The first update of the batch must have been rolled back.
        assert!(!d.contains_tuple("Function", &func("mouse", "prot2", "immune")));
        assert_eq!(d.total_tuples(), 1);
    }

    #[test]
    fn apply_all_rolls_back_modifies() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "a"), p(1))).unwrap();
        let batch = vec![
            Update::modify("Function", func("rat", "prot1", "a"), func("rat", "prot1", "b"), p(1)),
            Update::delete("Function", func("zebra", "prot9", "zzz"), p(1)),
        ];
        assert!(d.apply_all(&batch).is_err());
        assert!(d.contains_tuple("Function", &func("rat", "prot1", "a")));
    }

    #[test]
    fn apply_transaction_applies_every_update() {
        let mut d = db();
        let txn = Transaction::from_parts(
            p(2),
            0,
            vec![
                Update::insert("Function", func("mouse", "prot2", "immune"), p(2)),
                Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2)),
            ],
        )
        .unwrap();
        d.apply_transaction(&txn).unwrap();
        assert_eq!(d.total_tuples(), 2);
    }

    #[test]
    fn constraints_are_enforced_on_apply() {
        let mut schema = bioinformatics_schema();
        schema
            .add_constraint(Constraint::ForeignKey {
                relation: "XRef".into(),
                columns: vec!["organism".into(), "protein".into()],
                ref_relation: "Function".into(),
                ref_columns: vec!["organism".into(), "protein".into()],
            })
            .unwrap();
        let mut d = Database::new(schema);
        let xref =
            Update::insert("XRef", Tuple::of_text(&["rat", "prot1", "genbank", "ACC1"]), p(1));
        assert!(d.apply_update(&xref).is_err());
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        assert!(d.apply_update(&xref).is_ok());
    }

    #[test]
    fn snapshot_is_independent() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        let snap = d.snapshot();
        d.apply_update(&Update::delete("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        assert!(snap.contains_tuple("Function", &func("rat", "prot1", "immune")));
        assert!(d.is_empty());
    }

    #[test]
    fn value_at_and_relation_contents() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        let key = KeyValue::of_text(&["rat", "prot1"]);
        assert_eq!(d.value_at("Function", &key).unwrap(), func("rat", "prot1", "immune"));
        assert!(d.value_at("Function", &KeyValue::of_text(&["x", "y"])).is_none());
        let contents = d.relation_contents("Function");
        assert_eq!(contents.len(), 1);
        assert_eq!(contents[0].0, key);
    }

    #[test]
    fn instance_view_impl() {
        let mut d = db();
        d.apply_update(&Update::insert("Function", func("rat", "prot1", "immune"), p(1))).unwrap();
        let view: &dyn InstanceView = &d;
        assert!(view.contains_tuple("Function", &func("rat", "prot1", "immune")));
        assert_eq!(view.scan("Function").len(), 1);
        assert_eq!(view.scan("XRef").len(), 0);
        assert!(view.get_by_key("Function", &KeyValue::of_text(&["rat", "prot1"])).is_some());
    }
}
