//! Error types for the storage engine.

use orchestra_model::ModelError;
use std::fmt;

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An error bubbled up from the data model (schema mismatch, constraint
    /// violation, unknown relation, ...).
    Model(ModelError),
    /// An insertion targeted a primary key that already exists with a
    /// different tuple value.
    DuplicateKey {
        /// Relation of the attempted insertion.
        relation: String,
        /// Rendering of the duplicate key.
        key: String,
    },
    /// A deletion or modification referenced a tuple that is not present.
    MissingTuple {
        /// Relation of the attempted operation.
        relation: String,
        /// Rendering of the missing tuple.
        tuple: String,
    },
    /// A deletion or modification found a tuple with the right key but a
    /// different value than the one named by the update.
    StaleTuple {
        /// Relation of the attempted operation.
        relation: String,
        /// Rendering of the expected (antecedent) tuple.
        expected: String,
        /// Rendering of the tuple actually present.
        found: String,
    },
    /// The requested epoch or publication record does not exist.
    UnknownEpoch(u64),
    /// A transaction id was published twice or referenced before publication.
    TransactionLog(String),
    /// Persistence (serialisation or deserialisation) failed.
    Persistence(String),
    /// A reconciliation-session operation referenced an unknown, expired or
    /// foreign session handle.
    Session(String),
    /// A retention operation was invalid (retiring an unknown participant,
    /// pruning past the convergence horizon, ...).
    Retention(String),
    /// A causal stamp was rejected (out-of-order per-publisher sequence,
    /// unknown parent, or a causal operation in scalar mode).
    Causal(String),
    /// A wire-protocol frame was rejected: its version byte did not match
    /// the version this build speaks, or its payload was malformed.
    Protocol {
        /// The protocol version this build speaks.
        expected: u8,
        /// The version byte found on the frame (0 for an empty frame).
        found: u8,
        /// What went wrong while decoding.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Model(e) => write!(f, "{e}"),
            StorageError::DuplicateKey { relation, key } => {
                write!(f, "duplicate key {key} in relation `{relation}`")
            }
            StorageError::MissingTuple { relation, tuple } => {
                write!(f, "tuple {tuple} not present in relation `{relation}`")
            }
            StorageError::StaleTuple { relation, expected, found } => write!(
                f,
                "relation `{relation}` holds {found} where the update expected {expected}"
            ),
            StorageError::UnknownEpoch(e) => write!(f, "unknown epoch {e}"),
            StorageError::TransactionLog(msg) => write!(f, "transaction log error: {msg}"),
            StorageError::Persistence(msg) => write!(f, "persistence error: {msg}"),
            StorageError::Session(msg) => write!(f, "reconciliation session error: {msg}"),
            StorageError::Retention(msg) => write!(f, "retention error: {msg}"),
            StorageError::Causal(msg) => write!(f, "causal stamp error: {msg}"),
            StorageError::Protocol { expected, found, detail } => {
                write!(f, "protocol error (speaking v{expected}, frame carried v{found}): {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for StorageError {
    fn from(e: ModelError) -> Self {
        StorageError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_errors_convert() {
        let e: StorageError = ModelError::UnknownRelation("R".into()).into();
        assert!(matches!(e, StorageError::Model(_)));
        assert!(e.to_string().contains("R"));
    }

    #[test]
    fn display_variants() {
        let dup = StorageError::DuplicateKey { relation: "F".into(), key: "[rat]".into() };
        assert!(dup.to_string().contains("duplicate key"));
        let missing = StorageError::MissingTuple { relation: "F".into(), tuple: "(x)".into() };
        assert!(missing.to_string().contains("not present"));
        let stale = StorageError::StaleTuple {
            relation: "F".into(),
            expected: "(a)".into(),
            found: "(b)".into(),
        };
        assert!(stale.to_string().contains("expected"));
        assert!(StorageError::UnknownEpoch(7).to_string().contains('7'));
        let proto =
            StorageError::Protocol { expected: 2, found: 9, detail: "unknown frame".into() };
        let rendered = proto.to_string();
        assert!(rendered.contains("v2"));
        assert!(rendered.contains("v9"));
        assert!(rendered.contains("unknown frame"));
    }
}
