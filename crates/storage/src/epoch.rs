//! Epoch allocation and publication bookkeeping.
//!
//! Section 5.2.1 of the paper: an epoch counter (an SQL sequence in the
//! original implementation) timestamps each batch of published transactions.
//! Because publishing is not instantaneous, each peer records when it starts
//! and when it finishes publishing; a reconciling peer then uses the *largest
//! stable epoch* — the latest epoch not preceded by an unfinished epoch — as
//! its reconciliation point, so that no transaction can later appear "in the
//! past".

use crate::error::{Result, StorageError};
use orchestra_model::{Epoch, ParticipantId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Publication status of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PublicationStatus {
    /// The publishing peer has requested the epoch but not finished writing
    /// its transactions.
    Started,
    /// The publishing peer has finished writing all transactions for the
    /// epoch.
    Finished,
}

/// One allocated epoch and who is publishing in it.
///
/// Fields are `pub(crate)` so the binary codec ([`crate::codec`]) can
/// serialise and rebuild records without an intermediate representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct EpochRecord {
    pub(crate) publisher: ParticipantId,
    pub(crate) status: PublicationStatus,
}

/// The epoch sequence plus per-epoch publication records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRegistry {
    pub(crate) records: BTreeMap<u64, EpochRecord>,
    pub(crate) next: u64,
    /// The stable frontier, advanced incrementally as publications finish so
    /// that [`EpochRegistry::largest_stable_epoch`] is O(1) instead of a scan
    /// over every epoch ever allocated.
    pub(crate) stable: u64,
}

impl Default for EpochRegistry {
    fn default() -> Self {
        EpochRegistry::new()
    }
}

impl EpochRegistry {
    /// Creates an empty registry; the first allocated epoch will be 1.
    pub fn new() -> Self {
        EpochRegistry { records: BTreeMap::new(), next: 1, stable: 0 }
    }

    /// Allocates the next epoch for a publishing peer and marks it started.
    pub fn begin_publish(&mut self, publisher: ParticipantId) -> Epoch {
        let epoch = Epoch(self.next);
        self.next += 1;
        self.records
            .insert(epoch.as_u64(), EpochRecord { publisher, status: PublicationStatus::Started });
        epoch
    }

    /// Marks an epoch's publication as finished.
    pub fn finish_publish(&mut self, epoch: Epoch) -> Result<()> {
        match self.records.get_mut(&epoch.as_u64()) {
            Some(rec) => {
                rec.status = PublicationStatus::Finished;
                // Advance the stable frontier over every consecutively
                // finished epoch. Each epoch is crossed exactly once over the
                // registry's lifetime, so the amortised cost is O(1).
                while self
                    .records
                    .get(&(self.stable + 1))
                    .map(|r| r.status == PublicationStatus::Finished)
                    .unwrap_or(false)
                {
                    self.stable += 1;
                }
                Ok(())
            }
            None => Err(StorageError::UnknownEpoch(epoch.as_u64())),
        }
    }

    /// The publication status of an epoch, if it has been allocated.
    pub fn status(&self, epoch: Epoch) -> Option<PublicationStatus> {
        self.records.get(&epoch.as_u64()).map(|r| r.status)
    }

    /// The peer publishing in an epoch, if it has been allocated.
    pub fn publisher(&self, epoch: Epoch) -> Option<ParticipantId> {
        self.records.get(&epoch.as_u64()).map(|r| r.publisher)
    }

    /// The most recently allocated epoch (`Epoch::ZERO` if none).
    pub fn latest_allocated(&self) -> Epoch {
        Epoch(self.next.saturating_sub(1))
    }

    /// The largest stable epoch: the greatest epoch `e` such that every
    /// allocated epoch `≤ e` has finished publishing. A reconciling peer uses
    /// this as its reconciliation epoch so that no unpublished transaction
    /// can precede it.
    pub fn largest_stable_epoch(&self) -> Epoch {
        Epoch(self.stable)
    }

    /// Drops the publication records of every epoch at or below `through`,
    /// keeping the allocation counter and the stable frontier intact — the
    /// retention layer calls this for epochs below the convergence horizon,
    /// which are always finished (the horizon never passes the stable
    /// frontier). Returns the number of records removed. Pruned epochs
    /// answer [`EpochRegistry::status`] / [`EpochRegistry::publisher`] with
    /// `None`, exactly like never-allocated ones.
    pub fn prune_through(&mut self, through: Epoch) -> u64 {
        let before = self.records.len();
        self.records.retain(|&e, _| e > through.as_u64());
        (before - self.records.len()) as u64
    }

    /// Number of live (unpruned) epoch records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true if no epoch has been allocated.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    #[test]
    fn epochs_are_allocated_sequentially_from_one() {
        let mut reg = EpochRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.begin_publish(p(1)), Epoch(1));
        assert_eq!(reg.begin_publish(p(2)), Epoch(2));
        assert_eq!(reg.latest_allocated(), Epoch(2));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.publisher(Epoch(1)), Some(p(1)));
        assert_eq!(reg.publisher(Epoch(2)), Some(p(2)));
        assert_eq!(reg.publisher(Epoch(3)), None);
    }

    #[test]
    fn stable_epoch_stops_at_first_unfinished() {
        let mut reg = EpochRegistry::new();
        let e1 = reg.begin_publish(p(1));
        let e2 = reg.begin_publish(p(2));
        let e3 = reg.begin_publish(p(3));
        assert_eq!(reg.largest_stable_epoch(), Epoch::ZERO);

        reg.finish_publish(e1).unwrap();
        assert_eq!(reg.largest_stable_epoch(), Epoch(1));

        // Epoch 3 finishes before epoch 2: the stable frontier stays at 1.
        reg.finish_publish(e3).unwrap();
        assert_eq!(reg.largest_stable_epoch(), Epoch(1));

        reg.finish_publish(e2).unwrap();
        assert_eq!(reg.largest_stable_epoch(), Epoch(3));
    }

    #[test]
    fn finish_of_unknown_epoch_is_error() {
        let mut reg = EpochRegistry::new();
        assert!(matches!(reg.finish_publish(Epoch(5)), Err(StorageError::UnknownEpoch(5))));
    }

    #[test]
    fn status_transitions() {
        let mut reg = EpochRegistry::new();
        let e = reg.begin_publish(p(1));
        assert_eq!(reg.status(e), Some(PublicationStatus::Started));
        reg.finish_publish(e).unwrap();
        assert_eq!(reg.status(e), Some(PublicationStatus::Finished));
        assert_eq!(reg.status(Epoch(99)), None);
    }

    #[test]
    fn pruning_keeps_the_counter_and_frontier() {
        let mut reg = EpochRegistry::new();
        for i in 1..=4u32 {
            let e = reg.begin_publish(p(i));
            reg.finish_publish(e).unwrap();
        }
        assert_eq!(reg.prune_through(Epoch(2)), 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.status(Epoch(1)), None);
        assert_eq!(reg.publisher(Epoch(2)), None);
        assert_eq!(reg.publisher(Epoch(3)), Some(p(3)));
        // Allocation continues where it left off; stability is unaffected.
        assert_eq!(reg.largest_stable_epoch(), Epoch(4));
        assert_eq!(reg.begin_publish(p(9)), Epoch(5));
        assert_eq!(reg.latest_allocated(), Epoch(5));
        // Pruning the same range again is a no-op.
        assert_eq!(reg.prune_through(Epoch(2)), 0);
    }

    #[test]
    fn empty_registry_is_stable_at_zero() {
        let reg = EpochRegistry::new();
        assert_eq!(reg.largest_stable_epoch(), Epoch::ZERO);
        assert_eq!(reg.latest_allocated(), Epoch::ZERO);
    }
}
