//! Epoch allocation and publication bookkeeping.
//!
//! Section 5.2.1 of the paper: an epoch counter (an SQL sequence in the
//! original implementation) timestamps each batch of published transactions.
//! Because publishing is not instantaneous, each peer records when it starts
//! and when it finishes publishing; a reconciling peer then uses the *largest
//! stable epoch* — the latest epoch not preceded by an unfinished epoch — as
//! its reconciliation point, so that no transaction can later appear "in the
//! past".
//!
//! # Causal mode
//!
//! The scalar counter is the store's one global serialisation point, and a
//! partitioned participant cannot publish against it at all. In *causal mode*
//! the registry additionally maintains a [`CausalRegistry`]: publishers
//! allocate their own 1-based per-publisher sequences client-side
//! ([`orchestra_model::CausalStamp`]), the store ingests stamps in any
//! interleaving that respects each publisher's FIFO, and every ingested stamp
//! still receives an *arrival epoch* from the scalar sequence — the store's
//! linear extension of the causal order, which keeps cursors, sessions and
//! retention horizons epoch-keyed while the stamps remain the ground truth
//! for ordering and merge decisions.

use crate::error::{Result, StorageError};
use orchestra_model::{
    compare_clocks, AntichainClock, CausalRelation, CausalStamp, Epoch, ParticipantId, StampId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Publication status of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PublicationStatus {
    /// The publishing peer has requested the epoch but not finished writing
    /// its transactions.
    Started,
    /// The publishing peer has finished writing all transactions for the
    /// epoch.
    Finished,
}

/// One allocated epoch and who is publishing in it.
///
/// Fields are `pub(crate)` so the binary codec ([`crate::codec`]) can
/// serialise and rebuild records without an intermediate representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct EpochRecord {
    pub(crate) publisher: ParticipantId,
    pub(crate) status: PublicationStatus,
}

/// One ingested causal stamp's durable DAG node: the parent frontier it
/// descends from and the arrival epoch the store assigned on ingest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalNode {
    /// The frontier the stamped publication causally descends from.
    pub parents: AntichainClock,
    /// The stamp's slot in the store's linear extension of the causal order.
    pub epoch: Epoch,
}

/// The causal side of the registry: the stamp DAG, the per-publisher ingest
/// frontier, and the mode switch.
///
/// The frontier doubles as the per-publisher FIFO validator: a publisher's
/// next acceptable stamp is always `frontier.seq_of(publisher) + 1`, whether
/// the publisher was online or buffered the stamp while partitioned. Pruning
/// drops DAG nodes but never the frontier, so comparisons against pruned
/// history degrade gracefully (unknown parents act as roots) and sequence
/// validation keeps working.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CausalRegistry {
    pub(crate) enabled: bool,
    /// DAG nodes by stamp id.
    pub(crate) nodes: BTreeMap<StampId, CausalNode>,
    /// Deepest ingested stamp per publisher.
    pub(crate) frontier: AntichainClock,
}

impl CausalRegistry {
    /// Whether the registry is in causal mode.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Switches causal mode on (idempotent; there is no way back — scalar
    /// epochs keep being allocated as the linear extension either way).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// The store's ingest frontier: the deepest ingested stamp per publisher.
    pub fn frontier(&self) -> &AntichainClock {
        &self.frontier
    }

    /// The deepest ingested sequence of a publisher (0 if it never
    /// published).
    pub fn last_seq(&self, publisher: ParticipantId) -> u64 {
        self.frontier.seq_of(publisher).unwrap_or(0)
    }

    /// The sequence number the publisher's next stamp must carry.
    pub fn next_seq(&self, publisher: ParticipantId) -> u64 {
        self.last_seq(publisher) + 1
    }

    /// Checks that a stamp is admissible without recording it: the registry
    /// must be in causal mode, the per-publisher sequence must be the next in
    /// FIFO order, and every parent must already be ingested at least that
    /// deep. Callers that interleave stamp admission with other bookkeeping
    /// (epoch allocation, WAL appends) validate first so a rejected stamp
    /// leaves no trace.
    pub fn validate(&self, stamp: &CausalStamp) -> Result<()> {
        if !self.enabled {
            return Err(StorageError::Causal("store is not in causal mode".to_string()));
        }
        let expected = self.next_seq(stamp.publisher);
        if stamp.seq != expected {
            return Err(StorageError::Causal(format!(
                "stamp {} out of order: expected {}#{expected}",
                stamp.id(),
                stamp.publisher
            )));
        }
        for &parent in stamp.parents.members() {
            let known = if parent.publisher == stamp.publisher {
                parent.seq < stamp.seq
            } else {
                self.last_seq(parent.publisher) >= parent.seq
            };
            if !known {
                return Err(StorageError::Causal(format!(
                    "stamp {} names unknown parent {parent}",
                    stamp.id()
                )));
            }
        }
        Ok(())
    }

    /// Validates and records one stamp (see [`CausalRegistry::validate`]).
    /// `epoch` is the arrival slot the scalar sequence assigned.
    pub fn ingest(&mut self, stamp: &CausalStamp, epoch: Epoch) -> Result<()> {
        self.validate(stamp)?;
        self.nodes.insert(stamp.id(), CausalNode { parents: stamp.parents.clone(), epoch });
        self.frontier.insert(stamp.id());
        Ok(())
    }

    /// The recorded parent frontier of a stamp (`None` once pruned or never
    /// ingested — [`compare_clocks`] treats that as a root).
    pub fn parents_of(&self, id: StampId) -> Option<AntichainClock> {
        self.nodes.get(&id).map(|n| n.parents.clone())
    }

    /// The arrival epoch a stamp was ingested at, if its node is live.
    pub fn epoch_of(&self, id: StampId) -> Option<Epoch> {
        self.nodes.get(&id).map(|n| n.epoch)
    }

    /// The stamp ingested at an arrival epoch, if its node is live.
    pub fn stamp_at_epoch(&self, epoch: Epoch) -> Option<StampId> {
        self.nodes.iter().find(|(_, n)| n.epoch == epoch).map(|(&id, _)| id)
    }

    /// Compares two frontiers over the recorded DAG (see
    /// [`compare_clocks`]).
    pub fn compare(
        &self,
        subject: &AntichainClock,
        other: &AntichainClock,
        budget: usize,
    ) -> CausalRelation {
        compare_clocks(subject, other, |id| self.parents_of(id), budget)
    }

    /// Drops the DAG nodes of every stamp whose arrival epoch is at or below
    /// `through`, keeping the frontier (and with it FIFO validation) intact.
    /// Returns the number of nodes removed.
    pub fn prune_through(&mut self, through: Epoch) -> u64 {
        let before = self.nodes.len();
        self.nodes.retain(|_, n| n.epoch > through);
        (before - self.nodes.len()) as u64
    }

    /// Number of live (unpruned) DAG nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no stamp's node is live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The epoch sequence plus per-epoch publication records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRegistry {
    pub(crate) records: BTreeMap<u64, EpochRecord>,
    pub(crate) next: u64,
    /// The stable frontier, advanced incrementally as publications finish so
    /// that [`EpochRegistry::largest_stable_epoch`] is O(1) instead of a scan
    /// over every epoch ever allocated.
    pub(crate) stable: u64,
    /// The causal side: stamp DAG, ingest frontier, mode switch (disabled —
    /// and empty — in scalar mode).
    pub(crate) causal: CausalRegistry,
}

impl Default for EpochRegistry {
    fn default() -> Self {
        EpochRegistry::new()
    }
}

impl EpochRegistry {
    /// Creates an empty registry; the first allocated epoch will be 1.
    pub fn new() -> Self {
        EpochRegistry {
            records: BTreeMap::new(),
            next: 1,
            stable: 0,
            causal: CausalRegistry::default(),
        }
    }

    /// The causal side of the registry (stamp DAG, ingest frontier, mode).
    pub fn causal(&self) -> &CausalRegistry {
        &self.causal
    }

    /// Mutable access to the causal side.
    pub fn causal_mut(&mut self) -> &mut CausalRegistry {
        &mut self.causal
    }

    /// Allocates the next epoch for a publishing peer and marks it started.
    pub fn begin_publish(&mut self, publisher: ParticipantId) -> Epoch {
        let epoch = Epoch(self.next);
        self.next += 1;
        self.records
            .insert(epoch.as_u64(), EpochRecord { publisher, status: PublicationStatus::Started });
        epoch
    }

    /// Marks an epoch's publication as finished.
    pub fn finish_publish(&mut self, epoch: Epoch) -> Result<()> {
        match self.records.get_mut(&epoch.as_u64()) {
            Some(rec) => {
                rec.status = PublicationStatus::Finished;
                // Advance the stable frontier over every consecutively
                // finished epoch. Each epoch is crossed exactly once over the
                // registry's lifetime, so the amortised cost is O(1).
                while self
                    .records
                    .get(&(self.stable + 1))
                    .map(|r| r.status == PublicationStatus::Finished)
                    .unwrap_or(false)
                {
                    self.stable += 1;
                }
                Ok(())
            }
            None => Err(StorageError::UnknownEpoch(epoch.as_u64())),
        }
    }

    /// The publication status of an epoch, if it has been allocated.
    pub fn status(&self, epoch: Epoch) -> Option<PublicationStatus> {
        self.records.get(&epoch.as_u64()).map(|r| r.status)
    }

    /// The peer publishing in an epoch, if it has been allocated.
    pub fn publisher(&self, epoch: Epoch) -> Option<ParticipantId> {
        self.records.get(&epoch.as_u64()).map(|r| r.publisher)
    }

    /// The most recently allocated epoch (`Epoch::ZERO` if none).
    pub fn latest_allocated(&self) -> Epoch {
        Epoch(self.next.saturating_sub(1))
    }

    /// The largest stable epoch: the greatest epoch `e` such that every
    /// allocated epoch `≤ e` has finished publishing. A reconciling peer uses
    /// this as its reconciliation epoch so that no unpublished transaction
    /// can precede it.
    pub fn largest_stable_epoch(&self) -> Epoch {
        Epoch(self.stable)
    }

    /// Drops the publication records of every epoch at or below `through`,
    /// keeping the allocation counter and the stable frontier intact — the
    /// retention layer calls this for epochs below the convergence horizon,
    /// which are always finished (the horizon never passes the stable
    /// frontier). Returns the number of records removed. Pruned epochs
    /// answer [`EpochRegistry::status`] / [`EpochRegistry::publisher`] with
    /// `None`, exactly like never-allocated ones.
    pub fn prune_through(&mut self, through: Epoch) -> u64 {
        let before = self.records.len();
        self.records.retain(|&e, _| e > through.as_u64());
        // Causal DAG nodes live and die with their arrival epoch's record.
        self.causal.prune_through(through);
        (before - self.records.len()) as u64
    }

    /// Number of live (unpruned) epoch records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true if no epoch has been allocated.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    #[test]
    fn epochs_are_allocated_sequentially_from_one() {
        let mut reg = EpochRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.begin_publish(p(1)), Epoch(1));
        assert_eq!(reg.begin_publish(p(2)), Epoch(2));
        assert_eq!(reg.latest_allocated(), Epoch(2));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.publisher(Epoch(1)), Some(p(1)));
        assert_eq!(reg.publisher(Epoch(2)), Some(p(2)));
        assert_eq!(reg.publisher(Epoch(3)), None);
    }

    #[test]
    fn stable_epoch_stops_at_first_unfinished() {
        let mut reg = EpochRegistry::new();
        let e1 = reg.begin_publish(p(1));
        let e2 = reg.begin_publish(p(2));
        let e3 = reg.begin_publish(p(3));
        assert_eq!(reg.largest_stable_epoch(), Epoch::ZERO);

        reg.finish_publish(e1).unwrap();
        assert_eq!(reg.largest_stable_epoch(), Epoch(1));

        // Epoch 3 finishes before epoch 2: the stable frontier stays at 1.
        reg.finish_publish(e3).unwrap();
        assert_eq!(reg.largest_stable_epoch(), Epoch(1));

        reg.finish_publish(e2).unwrap();
        assert_eq!(reg.largest_stable_epoch(), Epoch(3));
    }

    #[test]
    fn finish_of_unknown_epoch_is_error() {
        let mut reg = EpochRegistry::new();
        assert!(matches!(reg.finish_publish(Epoch(5)), Err(StorageError::UnknownEpoch(5))));
    }

    #[test]
    fn status_transitions() {
        let mut reg = EpochRegistry::new();
        let e = reg.begin_publish(p(1));
        assert_eq!(reg.status(e), Some(PublicationStatus::Started));
        reg.finish_publish(e).unwrap();
        assert_eq!(reg.status(e), Some(PublicationStatus::Finished));
        assert_eq!(reg.status(Epoch(99)), None);
    }

    #[test]
    fn pruning_keeps_the_counter_and_frontier() {
        let mut reg = EpochRegistry::new();
        for i in 1..=4u32 {
            let e = reg.begin_publish(p(i));
            reg.finish_publish(e).unwrap();
        }
        assert_eq!(reg.prune_through(Epoch(2)), 2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.status(Epoch(1)), None);
        assert_eq!(reg.publisher(Epoch(2)), None);
        assert_eq!(reg.publisher(Epoch(3)), Some(p(3)));
        // Allocation continues where it left off; stability is unaffected.
        assert_eq!(reg.largest_stable_epoch(), Epoch(4));
        assert_eq!(reg.begin_publish(p(9)), Epoch(5));
        assert_eq!(reg.latest_allocated(), Epoch(5));
        // Pruning the same range again is a no-op.
        assert_eq!(reg.prune_through(Epoch(2)), 0);
    }

    #[test]
    fn empty_registry_is_stable_at_zero() {
        let reg = EpochRegistry::new();
        assert_eq!(reg.largest_stable_epoch(), Epoch::ZERO);
        assert_eq!(reg.latest_allocated(), Epoch::ZERO);
    }

    fn stamp(publisher: u32, seq: u64, parents: &[StampId]) -> CausalStamp {
        CausalStamp::new(p(publisher), seq, AntichainClock::from_stamps(parents.iter().copied()))
    }

    #[test]
    fn causal_ingest_enforces_per_publisher_fifo() {
        let mut causal = CausalRegistry::default();
        assert!(matches!(causal.ingest(&stamp(1, 1, &[]), Epoch(1)), Err(StorageError::Causal(_))));
        causal.enable();
        assert!(causal.is_enabled());
        causal.ingest(&stamp(1, 1, &[]), Epoch(1)).unwrap();
        // A gap and a replay are both rejected.
        assert!(matches!(causal.ingest(&stamp(1, 3, &[]), Epoch(2)), Err(StorageError::Causal(_))));
        assert!(matches!(causal.ingest(&stamp(1, 1, &[]), Epoch(2)), Err(StorageError::Causal(_))));
        causal.ingest(&stamp(1, 2, &[StampId::new(p(1), 1)]), Epoch(2)).unwrap();
        assert_eq!(causal.last_seq(p(1)), 2);
        assert_eq!(causal.next_seq(p(2)), 1);
        assert_eq!(causal.frontier().to_string(), "{p1:2}");
    }

    #[test]
    fn causal_ingest_rejects_unknown_parents() {
        let mut causal = CausalRegistry::default();
        causal.enable();
        causal.ingest(&stamp(1, 1, &[]), Epoch(1)).unwrap();
        // A parent the store has never seen that deep is rejected.
        assert!(matches!(
            causal.ingest(&stamp(2, 1, &[StampId::new(p(1), 5)]), Epoch(2)),
            Err(StorageError::Causal(_))
        ));
        // A parent at or behind the frontier is fine.
        causal.ingest(&stamp(2, 1, &[StampId::new(p(1), 1)]), Epoch(2)).unwrap();
        assert_eq!(causal.epoch_of(StampId::new(p(2), 1)), Some(Epoch(2)));
        assert_eq!(causal.stamp_at_epoch(Epoch(1)), Some(StampId::new(p(1), 1)));
    }

    #[test]
    fn causal_compare_walks_the_recorded_dag() {
        let mut causal = CausalRegistry::default();
        causal.enable();
        causal.ingest(&stamp(1, 1, &[]), Epoch(1)).unwrap();
        causal.ingest(&stamp(1, 2, &[StampId::new(p(1), 1)]), Epoch(2)).unwrap();
        causal.ingest(&stamp(2, 1, &[StampId::new(p(1), 1)]), Epoch(3)).unwrap();
        let newer = AntichainClock::from_stamps([StampId::new(p(1), 2)]);
        let older = AntichainClock::from_stamps([StampId::new(p(1), 1)]);
        let side = AntichainClock::from_stamps([StampId::new(p(2), 1)]);
        assert!(matches!(
            causal.compare(&newer, &older, 100),
            CausalRelation::StrictDescends { .. }
        ));
        assert!(matches!(causal.compare(&newer, &side, 100), CausalRelation::DivergedSince { .. }));
    }

    #[test]
    fn registry_prune_drops_causal_nodes_but_keeps_the_frontier() {
        let mut reg = EpochRegistry::new();
        reg.causal_mut().enable();
        for seq in 1..=3u64 {
            let e = reg.begin_publish(p(1));
            let parents: &[StampId] =
                &(seq > 1).then(|| StampId::new(p(1), seq - 1)).into_iter().collect::<Vec<_>>();
            reg.causal_mut().ingest(&stamp(1, seq, parents), e).unwrap();
            reg.finish_publish(e).unwrap();
        }
        assert_eq!(reg.causal().len(), 3);
        reg.prune_through(Epoch(2));
        assert_eq!(reg.causal().len(), 1);
        // FIFO validation survives: the next stamp is still #4.
        assert_eq!(reg.causal().next_seq(p(1)), 4);
        assert_eq!(reg.causal().parents_of(StampId::new(p(1), 1)), None);
        // Comparing against pruned history treats unknown parents as roots.
        let head = AntichainClock::from_stamps([StampId::new(p(1), 3)]);
        let pruned = AntichainClock::from_stamps([StampId::new(p(1), 1)]);
        assert!(matches!(
            reg.causal().compare(&head, &pruned, 100),
            CausalRelation::StrictDescends { .. }
        ));
    }

    #[test]
    fn causal_registry_serialises_round_trip() {
        let mut causal = CausalRegistry::default();
        causal.enable();
        causal.ingest(&stamp(1, 1, &[]), Epoch(1)).unwrap();
        causal.ingest(&stamp(2, 1, &[StampId::new(p(1), 1)]), Epoch(2)).unwrap();
        let json = serde_json::to_string(&causal).unwrap();
        let back: CausalRegistry = serde_json::from_str(&json).unwrap();
        assert!(back.is_enabled());
        assert_eq!(back.frontier(), causal.frontier());
        assert_eq!(
            back.parents_of(StampId::new(p(2), 1)),
            causal.parents_of(StampId::new(p(2), 1))
        );
    }
}
