//! A single relation: primary-key-indexed rows plus optional secondary
//! indexes.

use crate::error::{Result, StorageError};
use orchestra_model::{KeyValue, RelationSchema, Tuple, Value};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A non-unique secondary index over a subset of columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
struct SecondaryIndex {
    /// Column indexes this index covers, in order.
    columns: Vec<usize>,
    /// Index data: projected values -> primary keys of matching rows.
    entries: BTreeMap<Vec<Value>, Vec<KeyValue>>,
}

impl SecondaryIndex {
    fn new(columns: Vec<usize>) -> Self {
        SecondaryIndex { columns, entries: BTreeMap::new() }
    }

    fn project(&self, tuple: &Tuple) -> Vec<Value> {
        tuple.project(&self.columns)
    }

    fn add(&mut self, tuple: &Tuple, key: &KeyValue) {
        self.entries.entry(self.project(tuple)).or_default().push(key.clone());
    }

    fn remove(&mut self, tuple: &Tuple, key: &KeyValue) {
        let proj = self.project(tuple);
        if let Some(keys) = self.entries.get_mut(&proj) {
            keys.retain(|k| k != key);
            if keys.is_empty() {
                self.entries.remove(&proj);
            }
        }
    }
}

/// A relation instance: rows indexed by primary key, plus any number of
/// named secondary indexes.
///
/// Serialisation uses a row-list representation ([`TableRepr`]) because JSON
/// cannot encode structured map keys; indexes are rebuilt on deserialisation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
#[serde(from = "TableRepr", into = "TableRepr")]
pub struct Table {
    schema: RelationSchema,
    rows: BTreeMap<KeyValue, Tuple>,
    indexes: FxHashMap<String, SecondaryIndex>,
}

/// Serialised form of a [`Table`]: the schema, the rows, and the secondary
/// index definitions by column name.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TableRepr {
    schema: RelationSchema,
    rows: Vec<Tuple>,
    indexes: Vec<(String, Vec<String>)>,
}

impl From<Table> for TableRepr {
    fn from(table: Table) -> Self {
        let indexes = table
            .indexes
            .iter()
            .map(|(name, idx)| {
                let cols =
                    idx.columns.iter().map(|&i| table.schema.columns()[i].name.clone()).collect();
                (name.clone(), cols)
            })
            .collect();
        TableRepr { rows: table.rows.values().cloned().collect(), schema: table.schema, indexes }
    }
}

impl From<TableRepr> for Table {
    fn from(repr: TableRepr) -> Self {
        let mut table = Table::new(repr.schema);
        for (name, cols) in &repr.indexes {
            let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
            // Index definitions were valid when serialised.
            let _ = table.create_index(name.clone(), &cols);
        }
        for row in repr.rows {
            // Rows were valid and key-unique when serialised.
            let _ = table.insert(row);
        }
        table
    }
}

impl Table {
    /// Creates an empty table for the given relation schema.
    pub fn new(schema: RelationSchema) -> Self {
        Table { schema, rows: BTreeMap::new(), indexes: FxHashMap::default() }
    }

    /// The relation schema of this table.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by primary key.
    pub fn get(&self, key: &KeyValue) -> Option<&Tuple> {
        self.rows.get(key)
    }

    /// Returns true if the table contains exactly this tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.rows.get(&self.schema.key_of(tuple)) == Some(tuple)
    }

    /// Iterates over all rows in primary-key order.
    pub fn iter(&self) -> impl Iterator<Item = (&KeyValue, &Tuple)> {
        self.rows.iter()
    }

    /// All rows, in primary-key order.
    pub fn rows(&self) -> Vec<Tuple> {
        self.rows.values().cloned().collect()
    }

    /// Declares a named secondary index over the given columns. Existing rows
    /// are indexed immediately.
    pub fn create_index(&mut self, name: impl Into<String>, columns: &[&str]) -> Result<()> {
        let col_idx: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<std::result::Result<_, _>>()?;
        let mut index = SecondaryIndex::new(col_idx);
        for (key, tuple) in &self.rows {
            index.add(tuple, key);
        }
        self.indexes.insert(name.into(), index);
        Ok(())
    }

    /// Looks up rows via a secondary index. Returns `None` if the index does
    /// not exist; otherwise the matching tuples (possibly empty).
    pub fn index_lookup(&self, index: &str, values: &[Value]) -> Option<Vec<Tuple>> {
        let idx = self.indexes.get(index)?;
        let keys = idx.entries.get(values).cloned().unwrap_or_default();
        Some(keys.iter().filter_map(|k| self.rows.get(k).cloned()).collect())
    }

    /// Validates and inserts a tuple. Inserting a tuple identical to one
    /// already present is a no-op; inserting a different tuple under an
    /// existing key is a [`StorageError::DuplicateKey`].
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.schema.validate_tuple(&tuple)?;
        let key = self.schema.key_of(&tuple);
        match self.rows.get(&key) {
            Some(existing) if *existing == tuple => Ok(()),
            Some(_) => Err(StorageError::DuplicateKey {
                relation: self.schema.name().to_owned(),
                key: key.to_string(),
            }),
            None => {
                for idx in self.indexes.values_mut() {
                    idx.add(&tuple, &key);
                }
                self.rows.insert(key, tuple);
                Ok(())
            }
        }
    }

    /// Deletes the given tuple. The tuple named by the update must match the
    /// stored row exactly; deleting an absent tuple is
    /// [`StorageError::MissingTuple`] and deleting a row whose value has
    /// diverged is [`StorageError::StaleTuple`].
    pub fn delete(&mut self, tuple: &Tuple) -> Result<()> {
        let key = self.schema.key_of(tuple);
        match self.rows.get(&key) {
            None => Err(StorageError::MissingTuple {
                relation: self.schema.name().to_owned(),
                tuple: tuple.to_string(),
            }),
            Some(existing) if existing != tuple => Err(StorageError::StaleTuple {
                relation: self.schema.name().to_owned(),
                expected: tuple.to_string(),
                found: existing.to_string(),
            }),
            Some(_) => {
                for idx in self.indexes.values_mut() {
                    idx.remove(tuple, &key);
                }
                self.rows.remove(&key);
                Ok(())
            }
        }
    }

    /// Replaces `from` with `to`. The `from` tuple must be present exactly;
    /// if the key changes, the new key must not collide with another row.
    pub fn modify(&mut self, from: &Tuple, to: Tuple) -> Result<()> {
        self.schema.validate_tuple(&to)?;
        let from_key = self.schema.key_of(from);
        let to_key = self.schema.key_of(&to);
        match self.rows.get(&from_key) {
            None => {
                return Err(StorageError::MissingTuple {
                    relation: self.schema.name().to_owned(),
                    tuple: from.to_string(),
                })
            }
            Some(existing) if existing != from => {
                return Err(StorageError::StaleTuple {
                    relation: self.schema.name().to_owned(),
                    expected: from.to_string(),
                    found: existing.to_string(),
                })
            }
            Some(_) => {}
        }
        if to_key != from_key {
            if let Some(other) = self.rows.get(&to_key) {
                if *other != to {
                    return Err(StorageError::DuplicateKey {
                        relation: self.schema.name().to_owned(),
                        key: to_key.to_string(),
                    });
                }
            }
        }
        for idx in self.indexes.values_mut() {
            idx.remove(from, &from_key);
            idx.add(&to, &to_key);
        }
        self.rows.remove(&from_key);
        self.rows.insert(to_key, to);
        Ok(())
    }

    /// Checks whether an insertion of `tuple` would succeed, without applying
    /// it.
    pub fn can_insert(&self, tuple: &Tuple) -> bool {
        if self.schema.validate_tuple(tuple).is_err() {
            return false;
        }
        match self.rows.get(&self.schema.key_of(tuple)) {
            Some(existing) => existing == tuple,
            None => true,
        }
    }

    /// Checks whether a deletion of `tuple` would succeed.
    pub fn can_delete(&self, tuple: &Tuple) -> bool {
        self.rows.get(&self.schema.key_of(tuple)) == Some(tuple)
    }

    /// Checks whether replacing `from` with `to` would succeed.
    pub fn can_modify(&self, from: &Tuple, to: &Tuple) -> bool {
        if self.schema.validate_tuple(to).is_err() {
            return false;
        }
        if self.rows.get(&self.schema.key_of(from)) != Some(from) {
            return false;
        }
        let from_key = self.schema.key_of(from);
        let to_key = self.schema.key_of(to);
        if to_key != from_key {
            match self.rows.get(&to_key) {
                Some(other) => other == to,
                None => true,
            }
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;

    fn function_table() -> Table {
        Table::new(bioinformatics_schema().relation("Function").unwrap().clone())
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    #[test]
    fn insert_get_and_contains() {
        let mut t = function_table();
        assert!(t.is_empty());
        t.insert(func("rat", "prot1", "immune")).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.contains(&func("rat", "prot1", "immune")));
        assert!(!t.contains(&func("rat", "prot1", "cell-resp")));
        let key = KeyValue::of_text(&["rat", "prot1"]);
        assert_eq!(t.get(&key).unwrap(), &func("rat", "prot1", "immune"));
    }

    #[test]
    fn duplicate_inserts() {
        let mut t = function_table();
        t.insert(func("rat", "prot1", "immune")).unwrap();
        // Identical insert is a no-op.
        t.insert(func("rat", "prot1", "immune")).unwrap();
        assert_eq!(t.len(), 1);
        // Divergent insert under the same key is an error.
        let err = t.insert(func("rat", "prot1", "cell-resp")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
    }

    #[test]
    fn delete_requires_exact_match() {
        let mut t = function_table();
        t.insert(func("rat", "prot1", "immune")).unwrap();
        let missing = t.delete(&func("mouse", "prot2", "x")).unwrap_err();
        assert!(matches!(missing, StorageError::MissingTuple { .. }));
        let stale = t.delete(&func("rat", "prot1", "cell-resp")).unwrap_err();
        assert!(matches!(stale, StorageError::StaleTuple { .. }));
        t.delete(&func("rat", "prot1", "immune")).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn modify_in_place_and_key_change() {
        let mut t = function_table();
        t.insert(func("rat", "prot1", "cell-metab")).unwrap();
        t.modify(&func("rat", "prot1", "cell-metab"), func("rat", "prot1", "immune")).unwrap();
        assert!(t.contains(&func("rat", "prot1", "immune")));

        // Key-changing modify, as in the paper's X3:3.
        t.insert(func("mouse", "prot2", "cell-resp")).unwrap();
        t.modify(&func("mouse", "prot2", "cell-resp"), func("mouse", "prot3", "cell-resp"))
            .unwrap();
        assert!(t.get(&KeyValue::of_text(&["mouse", "prot2"])).is_none());
        assert!(t.contains(&func("mouse", "prot3", "cell-resp")));
    }

    #[test]
    fn modify_collision_detected() {
        let mut t = function_table();
        t.insert(func("rat", "prot1", "a")).unwrap();
        t.insert(func("rat", "prot2", "b")).unwrap();
        let err = t.modify(&func("rat", "prot1", "a"), func("rat", "prot2", "c")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
    }

    #[test]
    fn modify_of_missing_or_stale_tuple_fails() {
        let mut t = function_table();
        assert!(matches!(
            t.modify(&func("rat", "prot1", "a"), func("rat", "prot1", "b")),
            Err(StorageError::MissingTuple { .. })
        ));
        t.insert(func("rat", "prot1", "x")).unwrap();
        assert!(matches!(
            t.modify(&func("rat", "prot1", "a"), func("rat", "prot1", "b")),
            Err(StorageError::StaleTuple { .. })
        ));
    }

    #[test]
    fn can_apply_probes_match_apply_behaviour() {
        let mut t = function_table();
        t.insert(func("rat", "prot1", "a")).unwrap();
        assert!(t.can_insert(&func("mouse", "prot2", "b")));
        assert!(t.can_insert(&func("rat", "prot1", "a")));
        assert!(!t.can_insert(&func("rat", "prot1", "z")));
        assert!(t.can_delete(&func("rat", "prot1", "a")));
        assert!(!t.can_delete(&func("rat", "prot1", "z")));
        assert!(t.can_modify(&func("rat", "prot1", "a"), &func("rat", "prot1", "b")));
        assert!(!t.can_modify(&func("rat", "prot1", "z"), &func("rat", "prot1", "b")));
        assert!(!t.can_insert(&Tuple::of_text(&["wrong-arity"])));
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = function_table();
        t.create_index("by_function", &["function"]).unwrap();
        t.insert(func("rat", "prot1", "immune")).unwrap();
        t.insert(func("mouse", "prot2", "immune")).unwrap();
        t.insert(func("dog", "prot3", "cell-resp")).unwrap();
        let immune = t.index_lookup("by_function", &[Value::text("immune")]).unwrap();
        assert_eq!(immune.len(), 2);
        let none = t.index_lookup("by_function", &[Value::text("nothing")]).unwrap();
        assert!(none.is_empty());
        assert!(t.index_lookup("missing_index", &[Value::text("x")]).is_none());

        // Index is maintained across deletes and modifies.
        t.delete(&func("rat", "prot1", "immune")).unwrap();
        t.modify(&func("mouse", "prot2", "immune"), func("mouse", "prot2", "cell-resp")).unwrap();
        let immune = t.index_lookup("by_function", &[Value::text("immune")]).unwrap();
        assert!(immune.is_empty());
        let resp = t.index_lookup("by_function", &[Value::text("cell-resp")]).unwrap();
        assert_eq!(resp.len(), 2);
    }

    #[test]
    fn index_on_unknown_column_is_an_error() {
        let mut t = function_table();
        assert!(t.create_index("bad", &["nope"]).is_err());
    }

    #[test]
    fn rows_are_returned_in_key_order() {
        let mut t = function_table();
        t.insert(func("zebra", "prot9", "a")).unwrap();
        t.insert(func("ant", "prot1", "b")).unwrap();
        let rows = t.rows();
        assert_eq!(rows[0], func("ant", "prot1", "b"));
        assert_eq!(rows[1], func("zebra", "prot9", "a"));
        assert_eq!(t.iter().count(), 2);
    }
}
