//! Embedded relational storage engine for the Orchestra CDSS.
//!
//! The paper's centralised update store is built on a commercial RDBMS and
//! each participant maintains a local relational instance. This crate is the
//! from-scratch substitute for both roles:
//!
//! * [`Table`] — a primary-key-indexed relation with optional secondary
//!   indexes.
//! * [`Database`] — a set of tables conforming to a
//!   [`orchestra_model::Schema`], with update application, constraint
//!   enforcement, snapshots and JSON persistence. Implements
//!   [`orchestra_model::InstanceView`], so integrity constraints and the
//!   reconciliation algorithm's `CheckState` can evaluate against it.
//! * [`TransactionLog`] — the append-only log of published transactions, with
//!   epoch and per-participant indexes (the `updates` table of the paper's
//!   central store design).
//! * [`EpochRegistry`] — the epoch sequence with started/finished publication
//!   records and the "largest stable epoch" computation of Section 5.2.1.
//! * [`DecisionLog`] — the per-participant record of accepted and rejected
//!   transactions that the paper moves into the update store so that client
//!   state stays soft.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod database;
pub mod decisions;
pub mod epoch;
pub mod error;
pub mod log;
pub mod persist;
pub mod table;

pub use database::Database;
pub use decisions::{Decision, DecisionLog, ParticipantRecord};
pub use epoch::{EpochRegistry, PublicationStatus};
pub use error::{Result, StorageError};
pub use log::{LogEntry, TransactionLog};
pub use table::Table;
