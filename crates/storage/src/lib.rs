//! Embedded relational storage engine for the Orchestra CDSS.
//!
//! The paper's centralised update store is built on a commercial RDBMS and
//! each participant maintains a local relational instance. This crate is the
//! from-scratch substitute for both roles:
//!
//! * [`Table`] — a primary-key-indexed relation with optional secondary
//!   indexes.
//! * [`Database`] — a set of tables conforming to a
//!   [`orchestra_model::Schema`], with update application, constraint
//!   enforcement, snapshots and JSON persistence. Implements
//!   [`orchestra_model::InstanceView`], so integrity constraints and the
//!   reconciliation algorithm's `CheckState` can evaluate against it.
//! * [`TransactionLog`] — the append-only log of published transactions, with
//!   epoch and per-participant indexes (the `updates` table of the paper's
//!   central store design).
//! * [`EpochRegistry`] — the epoch sequence with started/finished publication
//!   records and the "largest stable epoch" computation of Section 5.2.1.
//! * [`DecisionLog`] — the per-participant record of accepted and rejected
//!   transactions that the paper moves into the update store so that client
//!   state stays soft.
//! * [`wal`] / [`snapshot`] — the durability layer: an append-only log of
//!   CRC-checked [`WalRecord`] frames plus a compacting [`StoreSnapshot`]
//!   format, from which `orchestra_store::StoreCatalog::recover` rebuilds the
//!   exact durable store state after a crash.
//! * [`retention`] — convergence-horizon retention: the [`RetentionPolicy`]
//!   knob and [`PruneReport`] accounting behind the bounded-memory store
//!   (`orchestra_store::StoreCatalog::prune_to_horizon`), plus the
//!   pinned-ancestor machinery in [`TransactionLog`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod database;
pub mod decisions;
pub mod epoch;
pub mod error;
pub mod log;
pub mod persist;
pub mod retention;
pub mod segment;
pub mod snapshot;
pub mod table;
pub mod wal;

pub use codec::Codec;
pub use database::Database;
pub use decisions::{Decision, DecisionLog, ParticipantRecord};
pub use epoch::{CausalNode, CausalRegistry, EpochRegistry, PublicationStatus};
pub use error::{Result, StorageError};
pub use log::{LogEntry, TransactionLog};
pub use retention::{PruneReport, RetentionPolicy};
pub use segment::{FrameStamp, SegmentedWal};
pub use snapshot::{InstanceCheckpoint, ParticipantSnapshot, StoreSnapshot};
pub use table::Table;
pub use wal::{FlushPolicy, FrameLog, WalRecord};
