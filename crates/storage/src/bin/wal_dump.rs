//! WAL and snapshot inspection tool.
//!
//! Pretty-prints any WAL segment (`wal.<gen>.log`, `wal.<gen>.p<id>.log`) or
//! snapshot (`snapshot.orc`) in either codec: per-frame offsets, payload
//! lengths, CRCs (with verification), `(epoch, seq)` stamps and one-line
//! record summaries. The tool never writes — point it at a live directory or
//! a torn-tail report and read.
//!
//! ```text
//! wal_dump <file>...          dump the given segment/snapshot files
//! wal_dump <dir>              dump every wal.*.log and snapshot.orc in dir
//! ```

use orchestra_storage::codec::{decode_record, decode_snapshot, payload_codec};
use orchestra_storage::segment::parse_stamp;
use orchestra_storage::wal::{crc32, WalRecord};
use orchestra_storage::Decision;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: wal_dump <segment-or-snapshot-file|durability-dir>...");
        eprintln!("  prints frame offsets, CRCs, (epoch, seq) stamps and record summaries");
        return if args.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    let mut failed = false;
    for arg in &args {
        let path = Path::new(arg);
        let files = if path.is_dir() { dir_files(path) } else { vec![path.to_path_buf()] };
        if files.is_empty() {
            eprintln!("{}: no WAL segments or snapshot found", path.display());
            failed = true;
        }
        for file in files {
            if let Err(e) = dump_file(&file) {
                eprintln!("{}: {e}", file.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The dumpable files of a durability directory: every WAL segment (sorted)
/// then the snapshot.
fn dir_files(dir: &Path) -> Vec<PathBuf> {
    let mut segments = Vec::new();
    let mut snapshot = None;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("wal.") && name.ends_with(".log") {
                segments.push(entry.path());
            } else if name == "snapshot.orc" {
                snapshot = Some(entry.path());
            }
        }
    }
    segments.sort();
    segments.extend(snapshot);
    segments
}

fn dump_file(path: &Path) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read: {e}"))?;
    let is_snapshot = path.file_name().and_then(|n| n.to_str()) == Some("snapshot.orc");
    println!("== {} ({} bytes) ==", path.display(), bytes.len());
    let mut pos = 0usize;
    let mut frame_no = 0u64;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            println!("  torn tail at offset {pos}: {} trailing byte(s)", bytes.len() - pos);
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            println!(
                "  torn tail at offset {pos}: frame claims {len} payload byte(s), {} remain",
                bytes.len() - pos - 8
            );
            break;
        };
        let actual_crc = crc32(payload);
        let crc_note = if actual_crc == stored_crc {
            "ok".to_string()
        } else {
            format!("MISMATCH (stored {stored_crc:#010x}, actual {actual_crc:#010x})")
        };
        print!("  frame {frame_no} @ {pos}: len {len}, crc {stored_crc:#010x} [{crc_note}]");
        if actual_crc != stored_crc {
            println!();
            println!("  stopping at corrupt frame (replay would truncate here)");
            break;
        }
        if is_snapshot {
            println!();
            describe_snapshot(payload);
        } else {
            describe_record(payload);
        }
        pos += 8 + len;
        frame_no += 1;
    }
    if pos == bytes.len() {
        println!("  {frame_no} intact frame(s), no torn tail");
    }
    println!();
    Ok(())
}

/// Prints the stamp and a one-line summary of a WAL-segment frame payload.
fn describe_record(payload: &[u8]) {
    match parse_stamp(payload) {
        Ok((stamp, record_bytes)) => {
            let causal = match stamp.stamp {
                Some(id) => format!(", causal {id}"),
                None => String::new(),
            };
            let note = format!("stamp (epoch {}, seq {}{causal})", stamp.epoch, stamp.seq);
            let codec = payload_codec(record_bytes);
            match decode_record(record_bytes) {
                Ok(record) => println!(", {note}, {codec}: {}", summarise(&record)),
                Err(e) => println!(", {note}, {codec}: undecodable: {e}"),
            }
        }
        Err(e) => println!(", unstamped or corrupt payload: {e}"),
    }
}

/// Prints a summary of a snapshot frame payload.
fn describe_snapshot(payload: &[u8]) {
    match decode_snapshot(payload) {
        Ok((snap, codec)) => {
            println!(
                "  {codec} snapshot: generation {}, {} epoch record(s), {} log entr(ies), \
                 {} participant(s), membership frontier {}, pruned through {}",
                snap.wal_generation,
                snap.registry.len(),
                snap.log.len(),
                snap.participants.len(),
                snap.membership_frontier.as_u64(),
                snap.pruned_through.as_u64(),
            );
            let causal = snap.registry.causal();
            if causal.is_enabled() {
                println!(
                    "    causal mode: frontier {}, {} live DAG node(s)",
                    causal.frontier(),
                    causal.len(),
                );
            }
            for p in &snap.participants {
                let accepted = p.record.with_decision(Decision::Accepted).len();
                let rejected = p.record.with_decision(Decision::Rejected).len();
                println!(
                    "    p{}: registered={}, retired={}, cursor={:?}, +{accepted} -{rejected}",
                    p.id.as_u32(),
                    p.registered,
                    p.retired,
                    p.cursor.map(|e| e.as_u64()),
                );
            }
        }
        Err(e) => println!("  undecodable snapshot: {e}"),
    }
}

fn summarise(record: &WalRecord) -> String {
    match record {
        WalRecord::Init { schema } => {
            format!("Init ({} relation(s))", schema.relations().count())
        }
        WalRecord::RegisterPolicy { policy } => format!(
            "RegisterPolicy p{} ({} rule(s))",
            policy.owner().as_u32(),
            policy.rules().len()
        ),
        WalRecord::Publish { participant, epoch, transactions } => format!(
            "Publish p{} epoch {} ({} txn(s), {} update(s))",
            participant.as_u32(),
            epoch.as_u64(),
            transactions.len(),
            transactions.iter().map(|t| t.updates().len()).sum::<usize>(),
        ),
        WalRecord::CommitReconciliation { participant, recno, epoch, accepted, rejected } => {
            format!(
                "CommitReconciliation p{} recno {} epoch {} (+{} -{})",
                participant.as_u32(),
                recno.0,
                epoch.as_u64(),
                accepted.len(),
                rejected.len(),
            )
        }
        WalRecord::Decisions { participant, accepted, rejected } => {
            format!("Decisions p{} (+{} -{})", participant.as_u32(), accepted.len(), rejected.len())
        }
        WalRecord::MembershipFrontier { epoch } => {
            format!("MembershipFrontier epoch {}", epoch.as_u64())
        }
        WalRecord::RetireParticipant { participant } => {
            format!("RetireParticipant p{}", participant.as_u32())
        }
        WalRecord::Prune { horizon } => format!("Prune through epoch {}", horizon.as_u64()),
        WalRecord::EpochMode { causal } => {
            format!("EpochMode {}", if *causal { "causal" } else { "scalar" })
        }
        WalRecord::PublishCausal { epoch, stamp, transactions } => format!(
            "PublishCausal {} arrival epoch {} ({} txn(s), {} update(s)); parents {}",
            stamp.id(),
            epoch.as_u64(),
            transactions.len(),
            transactions.iter().map(|t| t.updates().len()).sum::<usize>(),
            stamp.parents,
        ),
        WalRecord::InstanceCheckpoint { participant, checkpoint } => format!(
            "InstanceCheckpoint p{} through epoch {} ({} relation(s), {} tuple(s), \
             next local {}, accepted through {})",
            participant.as_u32(),
            checkpoint.epoch.as_u64(),
            checkpoint.relations.len(),
            checkpoint.relations.values().map(Vec::len).sum::<usize>(),
            checkpoint.next_local,
            checkpoint.accepted_through,
        ),
    }
}
