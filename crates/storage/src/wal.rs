//! The write-ahead log: an append-only file of CRC-checked, length-prefixed
//! frames, plus the typed records the update store writes into it.
//!
//! The paper's update store is backed by a commercial RDBMS, which makes
//! published transactions and decision records durable for free. Our
//! catalogue is in-memory, so durability is layered underneath it: every
//! state-changing store operation appends one [`WalRecord`] to a
//! [`FrameLog`], and recovery replays the records in order to rebuild the
//! exact durable state (see `orchestra_store::StoreCatalog::recover`).
//!
//! # Frame format
//!
//! ```text
//! ┌───────────┬───────────┬──────────────┐
//! │ len: u32  │ crc: u32  │ payload      │   (both integers little-endian)
//! └───────────┴───────────┴──────────────┘
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload. A reader stops at the first
//! frame whose length or checksum does not hold — a crash mid-append leaves a
//! *torn tail*, which is truncated on the next open, exactly like a database
//! WAL. Payloads are JSON ([`WalRecord::encode`]) so the log stays
//! inspectable with standard tools.
//!
//! The default crash model is process death: appends reach the operating
//! system before the call returns (one `write` syscall per frame), but the
//! log is not `fsync`ed per record. Callers that need media-failure
//! durability pick a [`FlushPolicy`]: `EveryAppend` syncs each record (the
//! classic one-fsync-per-commit), while the **group-commit** policies
//! (`EveryN`, `Interval`) batch many appends behind one `fsync`, amortising
//! the dominant cost without changing the record order — WAL order still
//! equals apply order, and a torn tail past the last intact frame is
//! truncated on the next open exactly as before.

use crate::error::{Result, StorageError};
use crate::snapshot::InstanceCheckpoint;
use orchestra_model::{
    CausalStamp, Epoch, ParticipantId, ReconciliationId, Schema, Transaction, TransactionId,
    TrustPolicy,
};
use orchestra_obs::{Counter, Obs, Tracer};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Upper bound on a single frame payload (guards against interpreting a
/// corrupt length prefix as a multi-gigabyte allocation).
const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// Slicing-by-8 lookup tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC_TABLES[t]` advances a byte `t` positions further. Eight table
/// lookups then fold eight input bytes per step, which matters because every
/// WAL byte is checksummed twice (once on append, once on replay).
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 (IEEE 802.3) of a byte slice — the checksum guarding every frame.
/// Slicing-by-8: eight bytes per iteration, byte-at-a-time on the tail.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Encodes one frame (length prefix, checksum, payload) into a byte vector.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes every valid frame of a byte buffer. Returns the payloads and the
/// number of bytes consumed by valid frames; decoding stops (without error)
/// at a torn or corrupt tail.
pub fn decode_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u64 > u64::from(MAX_FRAME_LEN) {
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else { break };
        if crc32(payload) != crc {
            break;
        }
        frames.push(payload.to_vec());
        pos += 8 + len;
    }
    (frames, pos)
}

/// When the log `fsync`s what it has appended.
///
/// The knob behind group commit: `EveryN` and `Interval` batch many appends
/// behind one `fsync`. A policy only adds syncs — it never delays or reorders
/// the appends themselves, so replay order is identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Never `fsync` on append (the default): frames reach the operating
    /// system per append, surviving process death but not media failure.
    /// Callers may still [`FrameLog::sync`] explicitly.
    #[default]
    OsBuffered,
    /// `fsync` after every append — one sync per record, the classic
    /// durability/latency trade.
    EveryAppend,
    /// Group commit by count: `fsync` once every `n` appends (`n` is clamped
    /// to at least 1).
    EveryN(u64),
    /// Group commit by time: `fsync` on the first append after this much
    /// time has passed since the last sync.
    Interval(Duration),
}

/// Observability handles of one frame log: detached (free-standing
/// counters, disabled tracer) until [`FrameLog::set_observability`] binds
/// them to a shared sink, so an unobserved log pays only relaxed atomic
/// increments.
#[derive(Debug, Default)]
struct WalObs {
    appends: Counter,
    append_bytes: Counter,
    syncs: Counter,
    replayed: Counter,
    tracer: Tracer,
}

impl WalObs {
    fn resolved(obs: &Obs) -> WalObs {
        WalObs {
            appends: obs.metrics.counter("wal.appends"),
            append_bytes: obs.metrics.counter("wal.append_bytes"),
            syncs: obs.metrics.counter("wal.syncs"),
            replayed: obs.metrics.counter("wal.replayed_frames"),
            tracer: obs.tracer.clone(),
        }
    }
}

/// An append-only, file-backed log of CRC-checked frames.
///
/// Opening an existing file validates every frame and truncates a torn tail,
/// so the writer always resumes at the end of the last intact record.
#[derive(Debug)]
pub struct FrameLog {
    file: File,
    path: PathBuf,
    records: u64,
    bytes: u64,
    flush: FlushPolicy,
    /// Records appended since the last sync (drives the group-commit
    /// policies).
    unsynced: u64,
    last_sync: Instant,
    obs: WalObs,
}

impl FrameLog {
    /// Opens (or creates) a frame log, returning the log positioned for
    /// appends together with the payloads of every intact frame already in
    /// the file. A torn or corrupt tail is truncated away.
    pub fn open(path: &Path) -> Result<(FrameLog, Vec<Vec<u8>>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::Persistence(format!("open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StorageError::Persistence(format!("read {}: {e}", path.display())))?;
        let (frames, valid) = decode_frames(&bytes);
        if valid < bytes.len() {
            file.set_len(valid as u64)
                .map_err(|e| StorageError::Persistence(format!("truncate torn tail: {e}")))?;
        }
        file.seek(SeekFrom::Start(valid as u64))
            .map_err(|e| StorageError::Persistence(format!("seek: {e}")))?;
        let log = FrameLog {
            file,
            path: path.to_path_buf(),
            records: frames.len() as u64,
            bytes: valid as u64,
            flush: FlushPolicy::default(),
            unsynced: 0,
            last_sync: Instant::now(),
            obs: WalObs::default(),
        };
        Ok((log, frames))
    }

    /// [`FrameLog::open`] with observability bound from the start: the
    /// recovered frames are counted under `wal.replayed_frames` and a
    /// `wal.replay` trace event records the replay.
    pub fn open_observed(path: &Path, obs: &Obs) -> Result<(FrameLog, Vec<Vec<u8>>)> {
        let (mut log, frames) = FrameLog::open(path)?;
        log.set_observability(obs);
        log.obs.replayed.add(frames.len() as u64);
        log.obs
            .tracer
            .event("wal.replay", &[("frames", frames.len() as u64), ("bytes", log.bytes)]);
        Ok((log, frames))
    }

    /// Creates a fresh, empty frame log, truncating any existing file.
    pub fn create(path: &Path) -> Result<FrameLog> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::Persistence(format!("create {}: {e}", path.display())))?;
        Ok(FrameLog {
            file,
            path: path.to_path_buf(),
            records: 0,
            bytes: 0,
            flush: FlushPolicy::default(),
            unsynced: 0,
            last_sync: Instant::now(),
            obs: WalObs::default(),
        })
    }

    /// Binds the log's counters (`wal.appends`, `wal.append_bytes`,
    /// `wal.syncs`, `wal.replayed_frames`) and trace events to a shared
    /// sink. Until this is called the counters are free-standing and the
    /// tracer is disabled, so an unobserved log costs only relaxed atomics.
    pub fn set_observability(&mut self, obs: &Obs) {
        self.obs = WalObs::resolved(obs);
    }

    /// Sets when appends `fsync` (see [`FlushPolicy`]).
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) {
        self.flush = policy;
    }

    /// The current flush policy.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.flush
    }

    /// Records appended since the last `fsync` (0 under `EveryAppend`).
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced
    }

    /// Appends one frame. The frame is handed to the operating system in a
    /// single write before the call returns, and `fsync`ed when the flush
    /// policy says so.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let frame = encode_frame(payload);
        self.file.write_all(&frame).map_err(|e| {
            StorageError::Persistence(format!("append {}: {e}", self.path.display()))
        })?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        self.obs.appends.inc();
        self.obs.append_bytes.add(frame.len() as u64);
        let due = match self.flush {
            FlushPolicy::OsBuffered => false,
            FlushPolicy::EveryAppend => true,
            FlushPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FlushPolicy::Interval(window) => self.last_sync.elapsed() >= window,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes the log to stable storage (`fsync`) and resets the
    /// group-commit counters. Called by `append` per the flush policy, or
    /// explicitly by the owner.
    pub fn sync(&mut self) -> Result<()> {
        let _span = self.obs.tracer.span("wal.sync", &[("unsynced", self.unsynced)]);
        self.file.sync_data().map_err(|e| StorageError::Persistence(format!("sync: {e}")))?;
        self.obs.syncs.inc();
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Number of intact records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Size of the log in bytes (valid frames only).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The file the log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One durable store operation, in the order it was applied.
///
/// The records mirror the catalogue's four state-changing entry points; a
/// replay that applies them in order over the snapshot state reproduces the
/// durable catalogue byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// First record of a generation-zero log: pins the schema so that
    /// recovery is self-contained even before the first snapshot exists.
    Init {
        /// The schema the store serves.
        schema: Schema,
    },
    /// A trust policy was registered (or replaced).
    RegisterPolicy {
        /// The registered policy (its owner names the participant).
        policy: TrustPolicy,
    },
    /// A batch of transactions was published as one epoch.
    Publish {
        /// The publishing participant.
        participant: ParticipantId,
        /// The epoch the store allocated — replay asserts it re-derives the
        /// same one.
        epoch: Epoch,
        /// The published transactions, in batch order.
        transactions: Vec<Transaction>,
    },
    /// A reconciliation session committed: decisions, the reconciliation
    /// record and the epoch cursor move together.
    CommitReconciliation {
        /// The reconciling participant.
        participant: ParticipantId,
        /// The reconciliation number recorded.
        recno: ReconciliationId,
        /// The epoch the session was pinned to (becomes the new cursor).
        epoch: Epoch,
        /// Root and member transactions accepted by the session.
        accepted: Vec<TransactionId>,
        /// Root transactions rejected by the session.
        rejected: Vec<TransactionId>,
    },
    /// Out-of-session decisions (conflict resolution between
    /// reconciliations).
    Decisions {
        /// The deciding participant.
        participant: ParticipantId,
        /// Transactions accepted by the resolution.
        accepted: Vec<TransactionId>,
        /// Transactions rejected by the resolution.
        rejected: Vec<TransactionId>,
    },
    /// The membership frontier advanced: the operator declared that no
    /// participant registering after this point needs relevance entries at
    /// or below `epoch` (late joiners see only post-frontier history).
    MembershipFrontier {
        /// The new frontier (monotone; `u64::MAX` means membership closed).
        epoch: Epoch,
    },
    /// A participant was retired: it stops pinning the convergence horizon
    /// and receives no further candidates. Its decision record stays.
    RetireParticipant {
        /// The retired participant.
        participant: ParticipantId,
    },
    /// Converged history at or below `horizon` was pruned. The pinned
    /// ancestors are not recorded: replay re-derives them with the same
    /// deterministic closure over the same state, so recover-then-prune and
    /// prune-then-recover are byte-identical.
    Prune {
        /// The epoch pruned through.
        horizon: Epoch,
    },
    /// The store switched epoch modes. Durable so that replay re-derives the
    /// same allocation behaviour (causal mode is one-way; see
    /// [`crate::epoch::CausalRegistry`]).
    EpochMode {
        /// True when the store entered causal mode.
        causal: bool,
    },
    /// A batch of transactions published under a causal stamp (causal mode's
    /// [`WalRecord::Publish`]). The stamp is the publisher-allocated ground
    /// truth; `epoch` is the arrival slot the store assigned on ingest.
    PublishCausal {
        /// The arrival epoch — the stamp's slot in the store's linear
        /// extension of the causal order.
        epoch: Epoch,
        /// The publisher-allocated causal stamp (its `publisher` names the
        /// participant).
        stamp: CausalStamp,
        /// The published transactions, in batch order.
        transactions: Vec<Transaction>,
    },
    /// A participant checkpointed its materialised local instance into the
    /// store, so `rebuild_from_store` survives ConvergedOnly pruning.
    InstanceCheckpoint {
        /// The checkpointing participant.
        participant: ParticipantId,
        /// The materialised instance (replaces any earlier checkpoint).
        checkpoint: InstanceCheckpoint,
    },
}

impl WalRecord {
    /// Serialises the record to its frame payload in the given codec.
    pub fn encode(&self, codec: crate::codec::Codec) -> Vec<u8> {
        crate::codec::encode_record(self, codec)
    }

    /// Deserialises a record from a frame payload. The codec is sniffed from
    /// the payload's first byte, so binary and JSON records can be mixed
    /// freely within one log (see [`crate::codec`]).
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        crate::codec::decode_record(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{Tuple, Update};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orchestra-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_stop_at_torn_tail() {
        let a = encode_frame(b"first");
        let b = encode_frame(b"second");
        let mut bytes = [a.clone(), b.clone()].concat();
        let (frames, consumed) = decode_frames(&bytes);
        assert_eq!(frames, vec![b"first".to_vec(), b"second".to_vec()]);
        assert_eq!(consumed, bytes.len());

        // A torn third frame (half a header, then half a payload) is ignored.
        bytes.extend_from_slice(&[7, 0, 0, 0, 1]);
        let (frames, consumed) = decode_frames(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(consumed, a.len() + b.len());

        // A corrupt checksum also stops the reader.
        let mut corrupt = a.clone();
        corrupt[4] ^= 0xFF;
        let (frames, consumed) = decode_frames(&corrupt);
        assert!(frames.is_empty());
        assert_eq!(consumed, 0);
    }

    #[test]
    fn absurd_length_prefixes_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let (frames, consumed) = decode_frames(&bytes);
        assert!(frames.is_empty());
        assert_eq!(consumed, 0);
    }

    #[test]
    fn file_log_appends_and_reopens() {
        let path = tmp("append");
        std::fs::remove_file(&path).ok();
        {
            let (mut log, frames) = FrameLog::open(&path).unwrap();
            assert!(frames.is_empty());
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
            assert_eq!(log.records(), 2);
            log.sync().unwrap();
        }
        // Reopen: both records are intact, appends continue at the end.
        let (mut log, frames) = FrameLog::open(&path).unwrap();
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec()]);
        log.append(b"three").unwrap();
        let (log2, frames) = FrameLog::open(&path).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(log2.records(), 3);
        assert_eq!(log2.bytes(), (8 + 3) + (8 + 3) + (8 + 5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let (mut log, _) = FrameLog::open(&path).unwrap();
            log.append(b"intact").unwrap();
        }
        // Simulate a crash mid-append: garbage after the valid frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap();
        }
        let (log, frames) = FrameLog::open(&path).unwrap();
        assert_eq!(frames, vec![b"intact".to_vec()]);
        assert_eq!(log.records(), 1);
        // The torn bytes are gone from the file itself.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 8 + 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs_without_reordering() {
        let path = tmp("group-commit");
        std::fs::remove_file(&path).ok();
        {
            let (mut log, _) = FrameLog::open(&path).unwrap();
            assert_eq!(log.flush_policy(), FlushPolicy::OsBuffered);
            log.set_flush_policy(FlushPolicy::EveryN(3));
            for i in 0..7u8 {
                log.append(&[i]).unwrap();
            }
            // Two batches of three synced; one record still buffered.
            assert_eq!(log.unsynced_records(), 1);
        }
        // Reopen: every record is intact and in append order regardless of
        // which sync batch it fell into — WAL order equals apply order.
        let (mut log, frames) = FrameLog::open(&path).unwrap();
        assert_eq!(frames, (0..7u8).map(|i| vec![i]).collect::<Vec<_>>());

        // EveryAppend leaves nothing unsynced; an explicit sync resets the
        // counter under any policy.
        log.set_flush_policy(FlushPolicy::EveryAppend);
        log.append(b"synced").unwrap();
        assert_eq!(log.unsynced_records(), 0);
        log.set_flush_policy(FlushPolicy::OsBuffered);
        log.append(b"buffered").unwrap();
        assert_eq!(log.unsynced_records(), 1);
        log.sync().unwrap();
        assert_eq!(log.unsynced_records(), 0);

        // A zero-length interval syncs on the next append.
        log.set_flush_policy(FlushPolicy::Interval(Duration::ZERO));
        log.append(b"interval").unwrap();
        assert_eq!(log.unsynced_records(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncation_survives_group_commit() {
        let path = tmp("group-torn");
        std::fs::remove_file(&path).ok();
        {
            let (mut log, _) = FrameLog::open(&path).unwrap();
            log.set_flush_policy(FlushPolicy::EveryN(2));
            log.append(b"a").unwrap();
            log.append(b"b").unwrap();
            log.append(b"c").unwrap(); // unsynced tail record
        }
        // A crash mid-append leaves garbage past the last intact frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[42, 0, 0, 0, 9]).unwrap();
        }
        let (log, frames) = FrameLog::open(&path).unwrap();
        assert_eq!(frames, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(log.records(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn observed_logs_report_appends_syncs_and_replay() {
        let path = tmp("observed");
        std::fs::remove_file(&path).ok();
        let obs = Obs::enabled();
        {
            let (mut log, _) = FrameLog::open_observed(&path, &obs).unwrap();
            log.append(b"one").unwrap();
            log.append(b"four").unwrap();
            log.sync().unwrap();
        }
        assert_eq!(obs.metrics.counter("wal.appends").get(), 2);
        assert_eq!(obs.metrics.counter("wal.append_bytes").get(), (8 + 3) + (8 + 4));
        assert_eq!(obs.metrics.counter("wal.syncs").get(), 1);
        assert_eq!(obs.metrics.counter("wal.replayed_frames").get(), 0);

        // Reopen: the two intact frames count as replayed, and the sync
        // span plus the replay event land in the trace.
        let (_, frames) = FrameLog::open_observed(&path, &obs).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(obs.metrics.counter("wal.replayed_frames").get(), 2);
        let trace = obs.tracer.export();
        assert!(trace.contains("wal.sync"), "missing sync span: {trace}");
        assert!(trace.contains("wal.replay\tframes=2"), "missing replay event: {trace}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_truncates_an_existing_log() {
        let path = tmp("create");
        {
            let (mut log, _) = FrameLog::open(&path).unwrap();
            log.append(b"old").unwrap();
        }
        let log = FrameLog::create(&path).unwrap();
        assert_eq!(log.records(), 0);
        let (_, frames) = FrameLog::open(&path).unwrap();
        assert!(frames.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_records_round_trip() {
        let p = ParticipantId(3);
        let txn = Transaction::from_parts(
            p,
            0,
            vec![Update::insert("Function", Tuple::of_text(&["rat", "prot1", "a"]), p)],
        )
        .unwrap();
        let records = vec![
            WalRecord::Init { schema: bioinformatics_schema() },
            WalRecord::RegisterPolicy {
                policy: TrustPolicy::new(p).trusting(ParticipantId(2), 1u32),
            },
            WalRecord::Publish { participant: p, epoch: Epoch(1), transactions: vec![txn.clone()] },
            WalRecord::CommitReconciliation {
                participant: ParticipantId(2),
                recno: ReconciliationId(1),
                epoch: Epoch(1),
                accepted: vec![txn.id()],
                rejected: vec![],
            },
            WalRecord::Decisions {
                participant: ParticipantId(2),
                accepted: vec![],
                rejected: vec![txn.id()],
            },
            WalRecord::MembershipFrontier { epoch: Epoch(u64::MAX) },
            WalRecord::RetireParticipant { participant: ParticipantId(2) },
            WalRecord::Prune { horizon: Epoch(7) },
            WalRecord::EpochMode { causal: true },
            WalRecord::PublishCausal {
                epoch: Epoch(2),
                stamp: CausalStamp::new(
                    p,
                    1,
                    orchestra_model::AntichainClock::from_stamps([orchestra_model::StampId::new(
                        ParticipantId(1),
                        3,
                    )]),
                ),
                transactions: vec![txn.clone()],
            },
            WalRecord::InstanceCheckpoint {
                participant: p,
                checkpoint: InstanceCheckpoint {
                    relations: std::collections::BTreeMap::from([(
                        "Function".to_string(),
                        vec![Tuple::of_text(&["rat", "prot1", "a"])],
                    )]),
                    next_local: 2,
                    epoch: Epoch(1),
                    accepted_through: 2,
                },
            },
        ];
        for record in records {
            for codec in [crate::codec::Codec::Binary, crate::codec::Codec::Json] {
                let back = WalRecord::decode(&record.encode(codec)).unwrap();
                assert_eq!(back, record);
            }
        }
        assert!(WalRecord::decode(b"{not json").is_err());
        assert!(WalRecord::decode(&[0xFF, 0xFE]).is_err());
    }
}
