//! Convergence-horizon retention: the policy and report types of the
//! bounded-memory store.
//!
//! The paper's update store accumulates every published transaction forever —
//! fine for a figure-scale experiment, fatal for a long-running
//! confederation. The retention subsystem prunes history that can no longer
//! influence any future decision:
//!
//! * The **convergence horizon** is the largest epoch `H` such that every
//!   registered, unretired participant's epoch cursor has passed `H` *and*
//!   every trusted relevant transaction at or below `H` is decided
//!   (accepted or rejected) by every participant whose policy finds it
//!   relevant. Below the horizon, nothing will ever be offered as a
//!   candidate again: decisions are durable and final.
//! * The horizon is additionally capped by the **membership frontier** — the
//!   store's explicit declaration of how much history a participant
//!   registering *later* may still need. Until the frontier is advanced (or
//!   membership is closed), nothing is prunable, so the default is always
//!   safe for open-ended confederations.
//! * Pruning keeps the **pinned-ancestor set**
//!   ([`crate::TransactionLog::pinned_ancestors`]): the sub-horizon entries a
//!   future antecedent chase can still reach. This makes pruning
//!   **decision-invariant** — a pruned and an unpruned store produce
//!   identical candidate extensions and therefore identical decisions for
//!   every future reconciliation.
//!
//! What pruning keeps versus drops:
//!
//! | state | kept? |
//! |-------|-------|
//! | decision sets / acceptance order | always (tiny, and decisions are final) |
//! | post-horizon log entries | always |
//! | pinned ancestors at or below the horizon | yes (live-value lineage) |
//! | other sub-horizon log entries | dropped |
//! | sub-horizon relevance-index slices | dropped (every trusted entry is decided) |
//! | sub-horizon epoch publication records | dropped |
//!
//! The trade-off is the paper's soft-state rebuild: a participant
//! reconstructing its *instance* from the store replays its accepted
//! transactions, and with `ConvergedOnly` retention the sub-horizon part of
//! that stream is gone. Confederations that rely on client rebuild below the
//! horizon should keep [`RetentionPolicy::KeepAll`] (the default) or checkpoint
//! instances out of band; decisions, deferred conflicts and everything the
//! reconciliation protocol itself needs survive pruning in full.

use orchestra_model::Epoch;
use serde::{Deserialize, Serialize};

/// How aggressively the store prunes converged history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetentionPolicy {
    /// Never prune (the paper's behaviour, and the default): the log,
    /// relevance index and durable state grow with history.
    #[default]
    KeepAll,
    /// Prune everything at or below the convergence horizon except the
    /// pinned-ancestor set: memory is bounded by the live data set plus the
    /// undecided suffix, not by history length.
    ConvergedOnly,
    /// Like `ConvergedOnly`, but always retain the most recent `n` epochs
    /// even if they have converged — a hedge for operators who want a
    /// recent-history window for inspection or debugging. Never prunes
    /// *beyond* the convergence horizon.
    KeepLastN(u64),
}

impl RetentionPolicy {
    /// Caps a computed convergence horizon by this policy: `KeepAll` forbids
    /// pruning, `KeepLastN` holds back the trailing window below the stable
    /// frontier.
    pub fn cap(&self, horizon: Epoch, stable: Epoch) -> Epoch {
        match self {
            RetentionPolicy::KeepAll => Epoch::ZERO,
            RetentionPolicy::ConvergedOnly => horizon,
            RetentionPolicy::KeepLastN(n) => {
                Epoch(horizon.as_u64().min(stable.as_u64().saturating_sub(*n)))
            }
        }
    }
}

/// What one [`prune`](RetentionPolicy) pass did — returned by
/// `StoreCatalog::prune_to_horizon` and recorded by the retention workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneReport {
    /// The epoch pruned through (the policy-capped convergence horizon at the
    /// time of the call; `Epoch::ZERO` means the pass was a no-op).
    pub horizon: Epoch,
    /// Log entries removed by this pass.
    pub pruned_log_entries: u64,
    /// Relevance-index entries removed by this pass (summed over shards).
    pub pruned_relevance_entries: u64,
    /// Epoch publication records removed by this pass.
    pub pruned_epoch_records: u64,
    /// Sub-horizon entries retained as pinned ancestors.
    pub pinned: u64,
    /// Live log entries remaining after the pass.
    pub live_log_entries: u64,
    /// Superseded instance checkpoints dropped by this pass (checkpoints of
    /// retired or unregistered participants whose epoch fell behind the
    /// horizon — nothing will ever rebuild from them).
    pub pruned_checkpoints: u64,
}

impl PruneReport {
    /// True when the pass removed nothing (horizon unchanged or zero).
    pub fn is_noop(&self) -> bool {
        self.pruned_log_entries == 0
            && self.pruned_relevance_entries == 0
            && self.pruned_epoch_records == 0
            && self.pruned_checkpoints == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_cap_the_horizon() {
        let h = Epoch(10);
        let stable = Epoch(14);
        assert_eq!(RetentionPolicy::KeepAll.cap(h, stable), Epoch::ZERO);
        assert_eq!(RetentionPolicy::ConvergedOnly.cap(h, stable), Epoch(10));
        // KeepLastN holds back the window below the stable frontier...
        assert_eq!(RetentionPolicy::KeepLastN(6).cap(h, stable), Epoch(8));
        // ...but never extends beyond the convergence horizon.
        assert_eq!(RetentionPolicy::KeepLastN(1).cap(h, stable), Epoch(10));
        assert_eq!(RetentionPolicy::KeepLastN(20).cap(h, stable), Epoch::ZERO);
        assert_eq!(RetentionPolicy::default(), RetentionPolicy::KeepAll);
    }

    #[test]
    fn reports_know_when_nothing_happened() {
        assert!(PruneReport::default().is_noop());
        let real = PruneReport { pruned_log_entries: 3, ..PruneReport::default() };
        assert!(!real.is_noop());
    }
}
