//! Compacting snapshots of the update store's durable state.
//!
//! A write-ahead log grows without bound, and replaying a long history on
//! every restart defeats the point of an incremental store. A snapshot
//! captures the full durable state — schema, epoch registry, publication log
//! and per-participant records — in one CRC-checked frame, and names the WAL
//! *generation* that continues after it: recovery loads the snapshot, then
//! replays only `wal.<generation>.log`. Taking a snapshot starts a fresh
//! (empty) generation and deletes the old log, so the on-disk footprint is
//! bounded by one snapshot plus the records since it.
//!
//! Derived state (the log's lookup indexes, the decision records'
//! accepted/rejected `Arc` sets, the store's relevance index) is *not*
//! serialised — it is re-derived after loading, exactly as the in-memory
//! structures were first built.
//!
//! Snapshots are written to a temporary file and atomically renamed into
//! place, so a crash mid-snapshot leaves the previous snapshot (and its WAL
//! generation) intact.

use crate::codec::Codec;
use crate::decisions::ParticipantRecord;
use crate::epoch::EpochRegistry;
use crate::error::{Result, StorageError};
use crate::log::TransactionLog;
use crate::wal::{decode_frames, encode_frame};
use orchestra_model::{Epoch, ParticipantId, Schema, TrustPolicy, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the snapshot inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.orc";

/// File name of the WAL's log-shard segment for a given generation.
pub fn wal_file_name(generation: u64) -> String {
    format!("wal.{generation}.log")
}

/// File name of a participant shard's WAL segment for a given generation.
pub fn shard_wal_file_name(generation: u64, participant: ParticipantId) -> String {
    format!("wal.{generation}.p{}.log", participant.as_u32())
}

/// Path of the WAL's log-shard segment inside a durability directory.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(wal_file_name(generation))
}

/// Path of a participant shard's WAL segment inside a durability directory.
pub fn shard_wal_path(dir: &Path, generation: u64, participant: ParticipantId) -> PathBuf {
    dir.join(shard_wal_file_name(generation, participant))
}

/// Path of the snapshot inside a durability directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// A participant's materialised local instance at one reconciliation point,
/// stored centrally so that `rebuild_from_store` keeps working after
/// ConvergedOnly retention has pruned the transactions the instance was built
/// from (the one known retention trade, carried since the retention PR).
///
/// Tuples are kept sorted per relation so equal instances serialise (and
/// `Debug`-render) byte-identically regardless of the apply order that
/// produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceCheckpoint {
    /// Materialised tuples per relation name.
    pub relations: BTreeMap<String, Vec<Tuple>>,
    /// The participant's next local transaction number when it checkpointed.
    pub next_local: u64,
    /// The reconciliation epoch the instance reflects: replaying decisions
    /// strictly above it on top of the checkpoint reproduces the live
    /// instance.
    pub epoch: Epoch,
    /// How many entries of the participant's acceptance-order prefix the
    /// checkpoint folds in. Replay skips exactly this many accepted
    /// transactions (counting pruned ones) and applies only the suffix —
    /// epoch-based filtering would be wrong because late conflict resolution
    /// can accept old-epoch transactions after the checkpoint was taken.
    pub accepted_through: u64,
}

/// One participant's durable slice of the store: policy, registration flag,
/// epoch cursor and decision record. The relevance index is derived state and
/// is rebuilt from the log after loading.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParticipantSnapshot {
    /// The participant.
    pub id: ParticipantId,
    /// Its trust policy (empty for shards auto-created for bare publishers).
    pub policy: TrustPolicy,
    /// Whether the participant explicitly registered the policy.
    pub registered: bool,
    /// Whether the participant has been retired (it keeps its decision
    /// record but no longer pins the convergence horizon).
    pub retired: bool,
    /// The epoch cursor of its last committed reconciliation, if any.
    pub cursor: Option<Epoch>,
    /// Relevance-index entries exist only for epochs strictly above this
    /// floor (raised by the membership frontier at registration time and by
    /// every prune). Recovery rebuilds the index from the log restricted to
    /// the floor, reproducing the live slice exactly.
    pub relevance_floor: Epoch,
    /// Its durable decision and reconciliation record.
    pub record: ParticipantRecord,
    /// Its latest instance checkpoint, if it has taken one.
    pub checkpoint: Option<InstanceCheckpoint>,
}

/// The complete durable state of an update store at one point in time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// The schema the store serves.
    pub schema: Schema,
    /// The epoch registry (allocation counter and publication records).
    pub registry: EpochRegistry,
    /// The published-transaction log (indexes re-derived after loading).
    pub log: TransactionLog,
    /// The membership frontier: late registrants see only history above it.
    pub membership_frontier: Epoch,
    /// Epochs at or below this have been pruned by retention.
    pub pruned_through: Epoch,
    /// Every participant shard, in participant order.
    pub participants: Vec<ParticipantSnapshot>,
    /// The WAL generation that continues after this snapshot: recovery
    /// replays `wal.<wal_generation>.log` on top of the snapshot state.
    pub wal_generation: u64,
}

/// Writes a snapshot as a single CRC-checked frame in the given codec,
/// atomically (temp file + rename), then syncs it to stable storage.
pub fn write_snapshot(dir: &Path, snapshot: &StoreSnapshot, codec: Codec) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| StorageError::Persistence(format!("create {}: {e}", dir.display())))?;
    let payload = crate::codec::encode_snapshot(snapshot, codec)?;
    let frame = encode_frame(&payload);
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    {
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| StorageError::Persistence(format!("create {}: {e}", tmp.display())))?;
        file.write_all(&frame)
            .map_err(|e| StorageError::Persistence(format!("write snapshot: {e}")))?;
        file.sync_data().map_err(|e| StorageError::Persistence(format!("sync snapshot: {e}")))?;
    }
    std::fs::rename(&tmp, snapshot_path(dir))
        .map_err(|e| StorageError::Persistence(format!("rename snapshot: {e}")))
}

/// Loads the snapshot of a durability directory, if one exists. The returned
/// state still carries un-derived indexes — callers rebuild them (the store
/// does so inside `recover`).
pub fn read_snapshot(dir: &Path) -> Result<Option<StoreSnapshot>> {
    Ok(read_snapshot_with_codec(dir)?.map(|(snapshot, _)| snapshot))
}

/// Like [`read_snapshot`], but also reports the codec the snapshot was
/// written in (sniffed from the payload), so recovery can keep appending new
/// records in the same codec.
pub fn read_snapshot_with_codec(dir: &Path) -> Result<Option<(StoreSnapshot, Codec)>> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::Persistence(format!("read {}: {e}", path.display()))),
    };
    let (frames, consumed) = decode_frames(&bytes);
    if frames.len() != 1 || consumed != bytes.len() {
        return Err(StorageError::Persistence(format!(
            "snapshot {} is corrupt ({} intact frame(s) over {consumed} of {} bytes)",
            path.display(),
            frames.len(),
            bytes.len()
        )));
    }
    crate::codec::decode_snapshot(&frames[0]).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, ReconciliationId, Transaction, Tuple, Update};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("orchestra-snapshot-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_snapshot() -> StoreSnapshot {
        let p = ParticipantId(1);
        let mut registry = EpochRegistry::new();
        let epoch = registry.begin_publish(p);
        registry.finish_publish(epoch).unwrap();
        let mut log = TransactionLog::new();
        let txn = Transaction::from_parts(
            p,
            0,
            vec![Update::insert("Function", Tuple::of_text(&["rat", "prot1", "a"]), p)],
        )
        .unwrap();
        log.publish(epoch, txn.clone()).unwrap();
        let mut record = ParticipantRecord::new();
        record.record(txn.id(), crate::decisions::Decision::Accepted);
        record.record_reconciliation(ReconciliationId(1), epoch);
        StoreSnapshot {
            schema: bioinformatics_schema(),
            registry,
            log,
            membership_frontier: Epoch(2),
            pruned_through: Epoch::ZERO,
            participants: vec![ParticipantSnapshot {
                id: p,
                policy: TrustPolicy::new(p).trusting(ParticipantId(2), 1u32),
                registered: true,
                retired: false,
                cursor: Some(epoch),
                relevance_floor: Epoch::ZERO,
                record,
                checkpoint: Some(InstanceCheckpoint {
                    relations: BTreeMap::from([(
                        "Function".to_string(),
                        vec![Tuple::of_text(&["rat", "prot1", "a"])],
                    )]),
                    next_local: 1,
                    epoch,
                    accepted_through: 1,
                }),
            }],
            wal_generation: 3,
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        assert!(read_snapshot(&dir).unwrap().is_none());
        let snapshot = sample_snapshot();
        write_snapshot(&dir, &snapshot, Codec::Json).unwrap();
        let (_, codec) = read_snapshot_with_codec(&dir).unwrap().unwrap();
        assert_eq!(codec, Codec::Json);
        write_snapshot(&dir, &snapshot, Codec::Binary).unwrap();
        let (_, codec) = read_snapshot_with_codec(&dir).unwrap().unwrap();
        assert_eq!(codec, Codec::Binary);
        let mut back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.wal_generation, 3);
        assert_eq!(back.schema, snapshot.schema);
        assert_eq!(back.registry.largest_stable_epoch(), Epoch(1));
        assert_eq!(back.membership_frontier, Epoch(2));
        assert_eq!(back.pruned_through, Epoch::ZERO);
        back.log.rebuild_indexes();
        assert_eq!(back.log.len(), 1);
        let participant = &mut back.participants[0];
        assert!(participant.registered);
        assert!(!participant.retired);
        assert_eq!(participant.cursor, Some(Epoch(1)));
        assert_eq!(participant.relevance_floor, Epoch::ZERO);
        let checkpoint = participant.checkpoint.as_ref().unwrap();
        assert_eq!(checkpoint.next_local, 1);
        assert_eq!(checkpoint.epoch, Epoch(1));
        assert_eq!(checkpoint.accepted_through, 1);
        assert_eq!(checkpoint.relations["Function"].len(), 1);
        participant.record.rebuild_sets();
        assert_eq!(participant.record.accepted_set().len(), 1);
        assert_eq!(participant.record.last_reconciliation(), Some((ReconciliationId(1), Epoch(1))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewriting_replaces_atomically() {
        let dir = tmp_dir("rewrite");
        let mut snapshot = sample_snapshot();
        write_snapshot(&dir, &snapshot, Codec::Binary).unwrap();
        snapshot.wal_generation = 9;
        write_snapshot(&dir, &snapshot, Codec::Binary).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap().wal_generation, 9);
        // No stray temp file is left behind.
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshots_are_reported_not_half_loaded() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample_snapshot(), Codec::Binary).unwrap();
        let path = snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&dir), Err(StorageError::Persistence(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_paths_follow_the_generation() {
        let dir = Path::new("/x");
        assert_eq!(wal_path(dir, 0), Path::new("/x/wal.0.log"));
        assert_eq!(wal_path(dir, 12), Path::new("/x/wal.12.log"));
        assert_eq!(shard_wal_path(dir, 3, ParticipantId(7)), Path::new("/x/wal.3.p7.log"));
        assert_eq!(snapshot_path(dir), Path::new("/x/snapshot.orc"));
    }
}
