//! A CDSS participant: local instance, trust policy, publication and
//! reconciliation.
//!
//! Participants talk to the update store through a *shared reference*
//! (`&S where S: UpdateStore + ?Sized`): the store synchronises internally,
//! so many participants — one per thread — publish and reconcile against the
//! same store concurrently. Reconciliation uses the store's session API:
//! candidates are streamed in bounded pages
//! ([`Participant::reconcile_batch_size`]), decided by the client-centric
//! engine, and the decisions are committed atomically with the session.

use crate::report::{ReconcileReport, ResolutionReport, TimingBreakdown};
use orchestra_model::{ParticipantId, Schema, Transaction, TransactionId, TrustPolicy, Update};
use orchestra_recon::{
    resolution::resolve_conflicts, CandidateTransaction, ConflictGroup, ReconcileEngine,
    ReconcileInput, ResolutionChoice, SoftState,
};
use orchestra_storage::{Database, Result, StorageError};
use orchestra_store::{ReconciliationSession, StoreTiming, UpdateStore};
use std::time::Instant;

/// Default page size for session-based candidate retrieval: bounds the
/// store-side working set materialised per `next_batch` call.
pub const DEFAULT_RECONCILE_BATCH_SIZE: usize = 64;

/// Configuration of a participant: its trust policy (which also names the
/// participant) and, optionally, a pre-populated initial instance.
#[derive(Debug, Clone)]
pub struct ParticipantConfig {
    /// The participant's trust policy (acceptance rules).
    pub policy: TrustPolicy,
    /// An optional initial database instance; an empty instance of the
    /// system schema is used when absent.
    pub initial_instance: Option<Database>,
}

impl ParticipantConfig {
    /// Creates a configuration from a trust policy with an empty initial
    /// instance.
    pub fn new(policy: TrustPolicy) -> Self {
        ParticipantConfig { policy, initial_instance: None }
    }

    /// Sets an initial instance.
    pub fn with_instance(mut self, instance: Database) -> Self {
        self.initial_instance = Some(instance);
        self
    }
}

/// An autonomous participant of the CDSS.
///
/// A participant executes transactions against its local instance, publishes
/// them to the shared update store, and reconciles — importing the trusted,
/// non-conflicting transactions other participants have published. All
/// per-participant state besides the instance (deferred transactions, dirty
/// values, conflict groups) is soft and can be reconstructed from the update
/// store.
#[derive(Debug, Clone)]
pub struct Participant {
    id: ParticipantId,
    policy: TrustPolicy,
    instance: Database,
    engine: ReconcileEngine,
    soft: SoftState,
    next_local_txn: u64,
    /// Page size for session-based candidate retrieval.
    reconcile_batch_size: usize,
    /// Transactions executed locally but not yet published.
    pending_publish: Vec<Transaction>,
    /// Updates published since the last reconciliation, used as the "delta
    /// for recno" when the next reconciliation runs. Accumulated across
    /// publications (a participant may publish several times between
    /// reconciliations) and consumed by the reconciliation that covers them.
    last_published_updates: Vec<Update>,
    /// Cumulative timing across all operations.
    total_timing: TimingBreakdown,
    /// Locally mirrored rejected set: loaded from the store once (on the
    /// first reconciliation) and extended with this participant's own
    /// decisions afterwards, so steady-state reconciliations never re-read
    /// the whole rejected record. Shared (`Arc`) with the engine per run.
    rejected_cache: Option<std::sync::Arc<rustc_hash::FxHashSet<TransactionId>>>,
}

impl Participant {
    /// Creates a participant for the given schema and configuration.
    pub fn new(schema: Schema, config: ParticipantConfig) -> Self {
        let id = config.policy.owner();
        let instance = config.initial_instance.unwrap_or_else(|| Database::new(schema.clone()));
        Participant {
            id,
            policy: config.policy,
            instance,
            engine: ReconcileEngine::new(schema),
            soft: SoftState::new(),
            next_local_txn: 0,
            reconcile_batch_size: DEFAULT_RECONCILE_BATCH_SIZE,
            pending_publish: Vec::new(),
            last_published_updates: Vec::new(),
            total_timing: TimingBreakdown::default(),
            rejected_cache: None,
        }
    }

    /// Reconstructs a participant from the update store alone — the paper's
    /// soft-state property: everything but the trust policy can be recovered
    /// from the store. Three pieces are rebuilt:
    ///
    /// * the **instance**, by replaying every transaction the store records
    ///   as accepted by this participant, in acceptance order (the order the
    ///   instance originally applied them);
    /// * the **own-publish delta**: this participant's own transactions
    ///   published *after* its last committed reconciliation have not yet
    ///   been covered by one, so they are restored into
    ///   `last_published_updates` (a trusted remote transaction conflicting
    ///   with them must still be rejected);
    /// * the **deferred soft state**: the store's undecided relevant
    ///   transactions at or before the cursor are exactly the candidates
    ///   earlier reconciliations deferred, so the dirty-value set and the
    ///   conflict groups are rebuilt from them — a crash no longer silently
    ///   drops conflicts awaiting user resolution.
    pub fn rebuild_from_store<S: UpdateStore + ?Sized>(
        schema: Schema,
        config: ParticipantConfig,
        store: &S,
    ) -> Result<Self> {
        let mut participant = Participant::new(schema.clone(), config);
        let cursor = store.epoch_cursor(participant.id);
        let mut max_local = 0u64;
        let mut own_delta: Vec<Update> = Vec::new();
        // Replay unit by unit: each unit is the newly accepted slice of one
        // candidate extension and was originally applied as one *flattened*
        // net effect, so a chain that collapsed to a no-op (e.g. a modify
        // and its exact inverse accepted together) replays as a no-op too.
        //
        // The own-delta test below (publish epoch > cursor) relies on
        // publishes being atomic under the log lock: the stable frontier a
        // session pins always covers every finished epoch, so an own
        // publication past the cursor is exactly one no reconciliation has
        // consumed yet.
        for unit in store.accepted_replay_units(participant.id) {
            for txn in &unit {
                if txn.origin() == participant.id {
                    max_local = max_local.max(txn.id().local + 1);
                    if store.epoch_of(txn.id()).map(|e| e > cursor).unwrap_or(false) {
                        own_delta.extend(txn.updates().iter().cloned());
                    }
                }
            }
            let footprint: Vec<Update> =
                unit.iter().flat_map(|t| t.updates().iter().cloned()).collect();
            for update in orchestra_model::flatten(&schema, &footprint) {
                Self::apply_lenient(&mut participant.instance, &update);
            }
        }
        participant.next_local_txn = max_local;
        participant.last_published_updates = own_delta;

        let deferred = store.undecided_candidates(participant.id);
        if !deferred.is_empty() {
            let recno = store.current_reconciliation(participant.id);
            participant.soft.rebuild(
                recno,
                deferred,
                participant.engine.schema(),
                participant.engine.extension_cache(),
            );
        }
        Ok(participant)
    }

    /// Applies an update, tolerating effects that are already present or no
    /// longer applicable (replay of accepted transactions may encounter
    /// values that a later accepted transaction already superseded).
    fn apply_lenient(instance: &mut Database, update: &Update) {
        use orchestra_model::UpdateOp;
        let already_satisfied = match &update.op {
            UpdateOp::Insert(t) => instance.contains_tuple_exact(&update.relation, t),
            UpdateOp::Delete(t) => !instance.key_present(&update.relation, t),
            UpdateOp::Modify { from, to } => {
                !instance.contains_tuple_exact(&update.relation, from)
                    && instance.contains_tuple_exact(&update.relation, to)
            }
        };
        if !already_satisfied {
            let _ = instance.apply_update(update);
        }
    }

    /// The participant's identity.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// The participant's trust policy.
    pub fn policy(&self) -> &TrustPolicy {
        &self.policy
    }

    /// The participant's current database instance.
    pub fn instance(&self) -> &Database {
        &self.instance
    }

    /// The participant's soft state (deferred transactions, dirty values,
    /// conflict groups).
    pub fn soft_state(&self) -> &SoftState {
        &self.soft
    }

    /// The conflict groups awaiting user resolution.
    pub fn deferred_conflicts(&self) -> &[ConflictGroup] {
        self.soft.conflict_groups()
    }

    /// Transactions executed locally but not yet published.
    pub fn pending_publications(&self) -> &[Transaction] {
        &self.pending_publish
    }

    /// Updates published since the last reconciliation (the own-delta the
    /// next reconciliation will treat as this participant's own version).
    pub fn own_publish_delta(&self) -> &[Update] {
        &self.last_published_updates
    }

    /// Cumulative timing across every operation performed so far.
    pub fn total_timing(&self) -> TimingBreakdown {
        self.total_timing
    }

    /// The page size used for session-based candidate retrieval.
    pub fn reconcile_batch_size(&self) -> usize {
        self.reconcile_batch_size
    }

    /// Sets the page size for session-based candidate retrieval (clamped to
    /// at least 1).
    pub fn set_reconcile_batch_size(&mut self, size: usize) {
        self.reconcile_batch_size = size.max(1);
    }

    /// The participant's rejected set: read from the store on first use
    /// (already a shared snapshot — a reference-count bump), then maintained
    /// incrementally from this participant's own decisions (it is the only
    /// writer of its decision record), so steady-state reconciliations do
    /// O(new rejections) work instead of re-reading the whole record.
    fn rejected_set_cached<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> std::sync::Arc<rustc_hash::FxHashSet<TransactionId>> {
        match &self.rejected_cache {
            Some(set) => std::sync::Arc::clone(set),
            None => {
                let set = store.rejected_set(self.id);
                self.rejected_cache = Some(std::sync::Arc::clone(&set));
                set
            }
        }
    }

    /// Folds freshly recorded rejections into the local mirror. `Arc::make_mut`
    /// is copy-free in the steady state: the engine's borrow has been dropped
    /// by the time decisions are recorded.
    fn extend_rejected_cache(&mut self, rejected: &[TransactionId]) {
        if let Some(cache) = &mut self.rejected_cache {
            std::sync::Arc::make_mut(cache).extend(rejected.iter().copied());
        }
    }

    /// Shrinks the participant's soft caches to what can still be needed:
    /// the flattened-extension cache keeps only chains whose root is still
    /// deferred. The engine already prunes the cache after every
    /// reconciliation; this is the explicit hook retention-minded drivers
    /// call alongside [`store-side pruning`](orchestra_store::StoreCatalog::prune_to_horizon)
    /// so client memory tracks the deferred set rather than history.
    pub fn prune_caches(&mut self) {
        let soft = &self.soft;
        self.engine.extension_cache().retain(|id| soft.is_deferred(id));
    }

    /// Number of flattened extensions held by the engine's cache (for the
    /// retention workload's client-side live-set accounting).
    pub fn engine_cache_len(&self) -> usize {
        self.engine.extension_cache().len()
    }

    /// Executes a transaction against the local instance. The updates must
    /// all originate from this participant (the origin field is checked). The
    /// transaction is applied atomically and queued for the next publication.
    pub fn execute_transaction(&mut self, updates: Vec<Update>) -> Result<TransactionId> {
        for u in &updates {
            if u.origin != self.id {
                return Err(StorageError::Model(orchestra_model::ModelError::InvalidTransaction(
                    format!("update originated by {} executed at {}", u.origin, self.id),
                )));
            }
        }
        let txn = Transaction::from_parts(self.id, self.next_local_txn, updates)
            .map_err(StorageError::Model)?;
        self.instance.apply_transaction(&txn)?;
        self.next_local_txn += 1;
        let id = txn.id();
        self.pending_publish.push(txn);
        Ok(id)
    }

    /// Publishes all pending transactions to the update store as one epoch.
    /// Returns `None` if there was nothing to publish.
    pub fn publish<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Option<orchestra_model::Epoch>> {
        if self.pending_publish.is_empty() {
            return Ok(None);
        }
        let batch = std::mem::take(&mut self.pending_publish);
        // Accumulate, do not overwrite: publishing twice before reconciling
        // must keep the first batch in the own-delta, or a trusted remote
        // transaction conflicting with it would wrongly be accepted.
        self.last_published_updates.extend(batch.iter().flat_map(|t| t.updates().iter().cloned()));
        let published = store.publish(self.id, batch)?;
        self.total_timing.accumulate(TimingBreakdown {
            store: published.timing.total(),
            local: std::time::Duration::ZERO,
        });
        Ok(Some(published.value))
    }

    /// Reconciles against the update store: opens a session, streams the
    /// relevant trusted candidates page by page, decides them with the
    /// client-centric algorithm, applies the accepted ones to the local
    /// instance, and commits the session (decisions plus reconciliation
    /// record) back at the store.
    pub fn reconcile<S: UpdateStore + ?Sized>(&mut self, store: &S) -> Result<ReconcileReport> {
        let mut session = ReconciliationSession::open(store, self.id)?;
        let candidates = session.drain(self.reconcile_batch_size)?;
        self.finish_reconcile(store, session, candidates, None)
    }

    /// Reconciles in the network-centric mode of Section 5: antecedent
    /// resolution and conflict detection are performed across the DHT peers
    /// (charged to store time and network traffic), and the local algorithm
    /// only resolves priorities and applies updates. The decisions made are
    /// identical to [`Participant::reconcile`]; only the cost distribution
    /// differs.
    pub fn reconcile_network_centric(
        &mut self,
        store: &orchestra_store::DhtStore,
    ) -> Result<ReconcileReport> {
        let timed = store.begin_network_centric_reconciliation(self.id)?;
        let retrieval = timed.timing;
        let plan = timed.value;
        self.finish_reconcile_raw(
            store,
            plan.session,
            plan.recno,
            plan.epoch,
            retrieval,
            plan.candidates,
            Some(plan.conflicts),
        )
    }

    /// Shared tail of the session-based reconciliation: run the engine over
    /// the streamed candidates, apply, and commit the session.
    fn finish_reconcile<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        session: ReconciliationSession<'_, S>,
        candidates: Vec<CandidateTransaction>,
        precomputed_conflicts: Option<
            rustc_hash::FxHashMap<TransactionId, rustc_hash::FxHashSet<TransactionId>>,
        >,
    ) -> Result<ReconcileReport> {
        let recno = session.recno();
        let epoch = session.epoch();
        let retrieval = session.timing();
        // Detach the RAII wrapper: the commit (or error-path abort) below
        // finishes the session.
        let session_id = session.detach();
        self.finish_reconcile_raw(
            store,
            session_id,
            recno,
            epoch,
            retrieval,
            candidates,
            precomputed_conflicts,
        )
    }

    /// The engine + commit tail shared by the client-centric and
    /// network-centric paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_reconcile_raw<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        session: orchestra_store::SessionId,
        recno: orchestra_model::ReconciliationId,
        epoch: orchestra_model::Epoch,
        retrieval: StoreTiming,
        candidates: Vec<CandidateTransaction>,
        precomputed_conflicts: Option<
            rustc_hash::FxHashMap<TransactionId, rustc_hash::FxHashSet<TransactionId>>,
        >,
    ) -> Result<ReconcileReport> {
        let previously_rejected = self.rejected_set_cached(store);
        let previously_accepted = store.accepted_set(self.id);

        let local_start = Instant::now();
        let input = ReconcileInput {
            recno,
            candidates,
            own_updates: std::mem::take(&mut self.last_published_updates),
            previously_rejected,
            previously_accepted,
            precomputed_conflicts,
        };
        let outcome = self.engine.reconcile(input, &mut self.instance, &mut self.soft);
        let local_elapsed = local_start.elapsed();

        let commit_timing = match store.commit_reconciliation(
            session,
            &outcome.accepted_members,
            &outcome.rejected,
        ) {
            Ok(timing) => timing,
            Err(e) => {
                let _ = store.abort_reconciliation(session);
                return Err(e);
            }
        };
        self.extend_rejected_cache(&outcome.rejected);

        let mut store_time = retrieval;
        store_time.accumulate(commit_timing);
        let timing = TimingBreakdown { store: store_time.total(), local: local_elapsed };
        self.total_timing.accumulate(timing);

        Ok(ReconcileReport {
            recno: outcome.recno,
            epoch,
            accepted: outcome.accepted_roots,
            rejected: outcome.rejected,
            deferred: outcome.deferred,
            conflict_groups: outcome.conflict_groups,
            timing,
        })
    }

    /// Publishes pending transactions (if any) and then reconciles — the
    /// combined step the paper assumes participants perform together.
    pub fn publish_and_reconcile<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<ReconcileReport> {
        self.publish(store)?;
        self.reconcile(store)
    }

    /// Resolves deferred conflicts according to the user's choices, records
    /// the resulting decisions at the store, and returns what changed.
    pub fn resolve_conflicts<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        choices: &[ResolutionChoice],
    ) -> Result<ResolutionReport> {
        let previously_rejected = self.rejected_set_cached(store);
        let previously_accepted = store.accepted_set(self.id);
        let recno = store.current_reconciliation(self.id);

        let local_start = Instant::now();
        let outcome = resolve_conflicts(
            &self.engine,
            recno,
            choices,
            &mut self.instance,
            &mut self.soft,
            &previously_rejected,
            previously_accepted,
        );
        let local_elapsed = local_start.elapsed();

        let mut rejected_all = outcome.newly_rejected.clone();
        rejected_all.extend(outcome.rerun.rejected.iter().copied());
        let record_timing =
            store.record_decisions(self.id, &outcome.rerun.accepted_members, &rejected_all)?;
        self.extend_rejected_cache(&rejected_all);

        let timing = TimingBreakdown { store: record_timing.total(), local: local_elapsed };
        self.total_timing.accumulate(timing);

        Ok(ResolutionReport {
            newly_rejected: rejected_all,
            newly_accepted: outcome.rerun.accepted_roots,
            still_deferred: outcome.rerun.deferred,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::Tuple;
    use orchestra_store::CentralStore;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn setup_pair() -> (CentralStore, Participant, Participant) {
        let schema = bioinformatics_schema();
        let store = CentralStore::new(schema.clone());
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32);
        let policy2 = TrustPolicy::new(p(2)).trusting(p(1), 1u32);
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        let p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let p2 = Participant::new(schema, ParticipantConfig::new(policy2));
        (store, p1, p2)
    }

    #[test]
    fn execute_applies_locally_and_queues_for_publication() {
        let (_store, mut p1, _) = setup_pair();
        let id = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("rat", "prot1", "immune"),
                p(1),
            )])
            .unwrap();
        assert_eq!(id, TransactionId::new(p(1), 0));
        assert_eq!(p1.instance().total_tuples(), 1);
        assert_eq!(p1.pending_publications().len(), 1);

        // A second transaction gets the next local id.
        let id2 = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("mouse", "prot2", "immune"),
                p(1),
            )])
            .unwrap();
        assert_eq!(id2, TransactionId::new(p(1), 1));
    }

    #[test]
    fn execute_rejects_foreign_updates_and_invalid_transactions() {
        let (_store, mut p1, _) = setup_pair();
        let err = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("rat", "prot1", "immune"),
                p(2),
            )])
            .unwrap_err();
        assert!(matches!(err, StorageError::Model(_)));
        assert!(p1.execute_transaction(vec![]).is_err());
        // A transaction violating local state is not applied or queued.
        p1.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        let err = p1
            .execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "b"), p(1))])
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(p1.pending_publications().len(), 1);
    }

    #[test]
    fn publish_and_reconcile_propagates_between_participants() {
        let (store, mut p1, mut p2) = setup_pair();
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        let report1 = p1.publish_and_reconcile(&store).unwrap();
        assert!(report1.accepted.is_empty());
        assert_eq!(report1.epoch, orchestra_model::Epoch(1));

        let report2 = p2.publish_and_reconcile(&store).unwrap();
        assert_eq!(report2.accepted.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(report2.timing.total() >= report2.timing.local);
        assert!(p2.total_timing().total() >= report2.timing.total());
    }

    #[test]
    fn publishing_nothing_is_a_noop() {
        let (store, mut p1, _) = setup_pair();
        assert_eq!(p1.publish(&store).unwrap(), None);
    }

    #[test]
    fn tiny_batch_sizes_reach_the_same_decisions() {
        // Page size 1 forces many next_batch calls; decisions and instances
        // must match the default page size.
        let run = |batch: usize| {
            let (store, mut p1, mut p2) = setup_pair();
            p1.set_reconcile_batch_size(batch);
            p2.set_reconcile_batch_size(batch);
            for i in 0..5u64 {
                p1.execute_transaction(vec![Update::insert(
                    "Function",
                    func("rat", &format!("prot{i}"), "immune"),
                    p(1),
                )])
                .unwrap();
                p1.publish(&store).unwrap();
            }
            let report = p2.publish_and_reconcile(&store).unwrap();
            (report.accepted.len(), p2.instance().relation_contents("Function"))
        };
        assert_eq!(run(1), run(DEFAULT_RECONCILE_BATCH_SIZE));
    }

    #[test]
    fn own_version_wins_over_remote_conflicting_version() {
        let (store, mut p1, mut p2) = setup_pair();
        // p1 publishes its value first.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish_and_reconcile(&store).unwrap();

        // p2 executes a divergent value for the same key, then reconciles.
        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "cell-resp"),
            p(2),
        )])
        .unwrap();
        let report = p2.publish_and_reconcile(&store).unwrap();
        assert_eq!(report.rejected.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
    }

    #[test]
    fn own_delta_accumulates_across_multiple_publications() {
        // Regression test: `publish` used to *overwrite* the own-delta, so
        // publishing twice before reconciling dropped the first batch and a
        // trusted remote transaction conflicting with it was wrongly
        // accepted. The scenario needs a remote update that is compatible
        // with p1's instance but conflicts with p1's first published batch: a
        // remote DELETE of the tuple p1 inserted.
        let (store, mut p1, mut p2) = setup_pair();

        // p1 publishes its insert (first batch, epoch 1) without reconciling.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish(&store).unwrap();

        // p2 accepts it, then publishes a delete of that very tuple.
        p2.publish_and_reconcile(&store).unwrap();
        p2.execute_transaction(vec![Update::delete(
            "Function",
            func("rat", "prot1", "immune"),
            p(2),
        )])
        .unwrap();
        p2.publish(&store).unwrap();

        // p1 publishes a second, unrelated batch — with the bug this
        // overwrote the delta and forgot the prot1 insert.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("mouse", "prot2", "ligase"),
            p(1),
        )])
        .unwrap();
        let report = p1.publish_and_reconcile(&store).unwrap();

        // The remote delete conflicts with p1's own (still unreconciled)
        // insert: the participant always prefers its own version, so the
        // delete must be rejected and the tuple must survive.
        assert_eq!(report.rejected.len(), 1, "remote delete must be rejected");
        assert!(report.accepted.is_empty());
        assert!(p1.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    }

    #[test]
    fn prune_caches_tracks_the_deferred_set() {
        let schema = bioinformatics_schema();
        let store = CentralStore::new(schema.clone());
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32);
        let policy2 = TrustPolicy::new(p(2));
        let policy3 = TrustPolicy::new(p(3));
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        store.register_participant(policy3.clone());
        let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(policy2));
        let mut p3 = Participant::new(schema, ParticipantConfig::new(policy3));

        // Equal-priority conflict: p1 defers both options.
        p2.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "x"), p(2))])
            .unwrap();
        p2.publish_and_reconcile(&store).unwrap();
        p3.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "y"), p(3))])
            .unwrap();
        p3.publish_and_reconcile(&store).unwrap();
        p1.publish_and_reconcile(&store).unwrap();
        assert!(!p1.deferred_conflicts().is_empty());
        let cached = p1.engine_cache_len();
        assert!(cached > 0, "deferred chains must be cached");

        // Pruning keeps exactly the still-deferred chains...
        p1.prune_caches();
        assert_eq!(p1.engine_cache_len(), cached);

        // ...and drops them once the conflict resolves.
        let key = p1.deferred_conflicts()[0].key.clone();
        p1.resolve_conflicts(&store, &[ResolutionChoice { group: key, chosen_option: Some(0) }])
            .unwrap();
        p1.prune_caches();
        assert_eq!(p1.engine_cache_len(), 0);
    }

    #[test]
    fn conflict_resolution_round_trip() {
        let schema = bioinformatics_schema();
        let store = CentralStore::new(schema.clone());
        // p1 trusts p2 and p3 equally; p2 and p3 trust nobody.
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32);
        let policy2 = TrustPolicy::new(p(2));
        let policy3 = TrustPolicy::new(p(3));
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        store.register_participant(policy3.clone());
        let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(policy2));
        let mut p3 = Participant::new(schema, ParticipantConfig::new(policy3));

        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "cell-resp"),
            p(2),
        )])
        .unwrap();
        p2.publish_and_reconcile(&store).unwrap();
        p3.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(3),
        )])
        .unwrap();
        p3.publish_and_reconcile(&store).unwrap();

        let report = p1.publish_and_reconcile(&store).unwrap();
        assert_eq!(report.deferred.len(), 2);
        assert_eq!(p1.deferred_conflicts().len(), 1);

        // Resolve in favour of p3's value.
        let group = &p1.deferred_conflicts()[0];
        let key = group.key.clone();
        let idx = group
            .options
            .iter()
            .position(|o| o.transactions.iter().any(|t| t.participant == p(3)))
            .unwrap();
        let resolution = p1
            .resolve_conflicts(&store, &[ResolutionChoice { group: key, chosen_option: Some(idx) }])
            .unwrap();
        assert_eq!(resolution.newly_accepted.len(), 1);
        assert_eq!(resolution.newly_rejected.len(), 1);
        assert!(resolution.still_deferred.is_empty());
        assert!(p1.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(p1.deferred_conflicts().is_empty());
    }
}
