//! A CDSS participant: local instance, trust policy, publication and
//! reconciliation.

use crate::report::{ReconcileReport, ResolutionReport, TimingBreakdown};
use orchestra_model::{ParticipantId, Schema, Transaction, TransactionId, TrustPolicy, Update};
use orchestra_recon::{
    resolution::resolve_conflicts, ConflictGroup, ReconcileEngine, ReconcileInput,
    ResolutionChoice, SoftState,
};
use orchestra_storage::{Database, Result, StorageError};
use orchestra_store::UpdateStore;
use std::time::Instant;

/// Configuration of a participant: its trust policy (which also names the
/// participant) and, optionally, a pre-populated initial instance.
#[derive(Debug, Clone)]
pub struct ParticipantConfig {
    /// The participant's trust policy (acceptance rules).
    pub policy: TrustPolicy,
    /// An optional initial database instance; an empty instance of the
    /// system schema is used when absent.
    pub initial_instance: Option<Database>,
}

impl ParticipantConfig {
    /// Creates a configuration from a trust policy with an empty initial
    /// instance.
    pub fn new(policy: TrustPolicy) -> Self {
        ParticipantConfig { policy, initial_instance: None }
    }

    /// Sets an initial instance.
    pub fn with_instance(mut self, instance: Database) -> Self {
        self.initial_instance = Some(instance);
        self
    }
}

/// An autonomous participant of the CDSS.
///
/// A participant executes transactions against its local instance, publishes
/// them to the shared update store, and reconciles — importing the trusted,
/// non-conflicting transactions other participants have published. All
/// per-participant state besides the instance (deferred transactions, dirty
/// values, conflict groups) is soft and can be reconstructed from the update
/// store.
#[derive(Debug, Clone)]
pub struct Participant {
    id: ParticipantId,
    policy: TrustPolicy,
    instance: Database,
    engine: ReconcileEngine,
    soft: SoftState,
    next_local_txn: u64,
    /// Transactions executed locally but not yet published.
    pending_publish: Vec<Transaction>,
    /// Updates published since the last reconciliation, used as the "delta
    /// for recno" when the next reconciliation runs. Accumulated across
    /// publications (a participant may publish several times between
    /// reconciliations) and consumed by the reconciliation that covers them.
    last_published_updates: Vec<Update>,
    /// Cumulative timing across all operations.
    total_timing: TimingBreakdown,
    /// Locally mirrored rejected set: loaded from the store once (on the
    /// first reconciliation) and extended with this participant's own
    /// decisions afterwards, so steady-state reconciliations never re-read
    /// the whole rejected record. Shared (`Arc`) with the engine per run.
    rejected_cache: Option<std::sync::Arc<rustc_hash::FxHashSet<TransactionId>>>,
}

impl Participant {
    /// Creates a participant for the given schema and configuration.
    pub fn new(schema: Schema, config: ParticipantConfig) -> Self {
        let id = config.policy.owner();
        let instance = config.initial_instance.unwrap_or_else(|| Database::new(schema.clone()));
        Participant {
            id,
            policy: config.policy,
            instance,
            engine: ReconcileEngine::new(schema),
            soft: SoftState::new(),
            next_local_txn: 0,
            pending_publish: Vec::new(),
            last_published_updates: Vec::new(),
            total_timing: TimingBreakdown::default(),
            rejected_cache: None,
        }
    }

    /// Reconstructs a participant from the update store alone: a fresh
    /// instance is built by replaying, in publication order, every
    /// transaction the store records as accepted by this participant. This is
    /// the paper's soft-state property — everything but the trust policy can
    /// be recovered from the store up to the participant's last
    /// reconciliation. Deferred conflicts are soft and are rediscovered at
    /// the next reconciliation.
    pub fn rebuild_from_store<S: UpdateStore>(
        schema: Schema,
        config: ParticipantConfig,
        store: &S,
    ) -> Result<Self> {
        let mut participant = Participant::new(schema, config);
        let mut max_local = 0u64;
        for txn in store.accepted_transactions(participant.id) {
            if txn.origin() == participant.id {
                max_local = max_local.max(txn.id().local + 1);
            }
            for update in txn.updates() {
                Self::apply_lenient(&mut participant.instance, update);
            }
        }
        participant.next_local_txn = max_local;
        Ok(participant)
    }

    /// Applies an update, tolerating effects that are already present or no
    /// longer applicable (replay of accepted transactions may encounter
    /// values that a later accepted transaction already superseded).
    fn apply_lenient(instance: &mut Database, update: &Update) {
        use orchestra_model::UpdateOp;
        let already_satisfied = match &update.op {
            UpdateOp::Insert(t) => instance.contains_tuple_exact(&update.relation, t),
            UpdateOp::Delete(t) => !instance.key_present(&update.relation, t),
            UpdateOp::Modify { from, to } => {
                !instance.contains_tuple_exact(&update.relation, from)
                    && instance.contains_tuple_exact(&update.relation, to)
            }
        };
        if !already_satisfied {
            let _ = instance.apply_update(update);
        }
    }

    /// The participant's identity.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// The participant's trust policy.
    pub fn policy(&self) -> &TrustPolicy {
        &self.policy
    }

    /// The participant's current database instance.
    pub fn instance(&self) -> &Database {
        &self.instance
    }

    /// The participant's soft state (deferred transactions, dirty values,
    /// conflict groups).
    pub fn soft_state(&self) -> &SoftState {
        &self.soft
    }

    /// The conflict groups awaiting user resolution.
    pub fn deferred_conflicts(&self) -> &[ConflictGroup] {
        self.soft.conflict_groups()
    }

    /// Transactions executed locally but not yet published.
    pub fn pending_publications(&self) -> &[Transaction] {
        &self.pending_publish
    }

    /// Cumulative timing across every operation performed so far.
    pub fn total_timing(&self) -> TimingBreakdown {
        self.total_timing
    }

    /// The participant's rejected set: read from the store on first use, then
    /// maintained incrementally from this participant's own decisions (it is
    /// the only writer of its decision record), so steady-state
    /// reconciliations do O(new rejections) work instead of re-reading the
    /// whole record.
    fn rejected_set_cached<S: UpdateStore>(
        &mut self,
        store: &S,
    ) -> std::sync::Arc<rustc_hash::FxHashSet<TransactionId>> {
        match &self.rejected_cache {
            Some(set) => std::sync::Arc::clone(set),
            None => {
                let set = std::sync::Arc::new(store.rejected_set(self.id));
                self.rejected_cache = Some(std::sync::Arc::clone(&set));
                set
            }
        }
    }

    /// Folds freshly recorded rejections into the local mirror. `Arc::make_mut`
    /// is copy-free in the steady state: the engine's borrow has been dropped
    /// by the time decisions are recorded.
    fn extend_rejected_cache(&mut self, rejected: &[TransactionId]) {
        if let Some(cache) = &mut self.rejected_cache {
            std::sync::Arc::make_mut(cache).extend(rejected.iter().copied());
        }
    }

    /// Executes a transaction against the local instance. The updates must
    /// all originate from this participant (the origin field is checked). The
    /// transaction is applied atomically and queued for the next publication.
    pub fn execute_transaction(&mut self, updates: Vec<Update>) -> Result<TransactionId> {
        for u in &updates {
            if u.origin != self.id {
                return Err(StorageError::Model(orchestra_model::ModelError::InvalidTransaction(
                    format!("update originated by {} executed at {}", u.origin, self.id),
                )));
            }
        }
        let txn = Transaction::from_parts(self.id, self.next_local_txn, updates)
            .map_err(StorageError::Model)?;
        self.instance.apply_transaction(&txn)?;
        self.next_local_txn += 1;
        let id = txn.id();
        self.pending_publish.push(txn);
        Ok(id)
    }

    /// Publishes all pending transactions to the update store as one epoch.
    /// Returns `None` if there was nothing to publish.
    pub fn publish<S: UpdateStore>(
        &mut self,
        store: &mut S,
    ) -> Result<Option<orchestra_model::Epoch>> {
        if self.pending_publish.is_empty() {
            return Ok(None);
        }
        let batch = std::mem::take(&mut self.pending_publish);
        // Accumulate, do not overwrite: publishing twice before reconciling
        // must keep the first batch in the own-delta, or a trusted remote
        // transaction conflicting with it would wrongly be accepted.
        self.last_published_updates.extend(batch.iter().flat_map(|t| t.updates().iter().cloned()));
        let epoch = store.publish(self.id, batch)?;
        let store_time = store.take_timing();
        self.total_timing.accumulate(TimingBreakdown {
            store: store_time.total(),
            local: std::time::Duration::ZERO,
        });
        Ok(Some(epoch))
    }

    /// Reconciles against the update store: retrieves the relevant trusted
    /// transactions, decides them with the client-centric algorithm, applies
    /// the accepted ones to the local instance and records the decisions back
    /// at the store.
    pub fn reconcile<S: UpdateStore>(&mut self, store: &mut S) -> Result<ReconcileReport> {
        store.take_timing();
        let relevant = store.begin_reconciliation(self.id)?;
        self.finish_reconcile(store, relevant, None)
    }

    /// Reconciles in the network-centric mode of Section 5: antecedent
    /// resolution and conflict detection are performed across the DHT peers
    /// (charged to store time and network traffic), and the local algorithm
    /// only resolves priorities and applies updates. The decisions made are
    /// identical to [`Participant::reconcile`]; only the cost distribution
    /// differs.
    pub fn reconcile_network_centric(
        &mut self,
        store: &mut orchestra_store::DhtStore,
    ) -> Result<ReconcileReport> {
        store.take_timing();
        let plan = store.begin_network_centric_reconciliation(self.id)?;
        let orchestra_store::NetworkCentricPlan { relevant, conflicts } = plan;
        self.finish_reconcile(store, relevant, Some(conflicts))
    }

    /// Shared tail of both reconciliation modes: run the engine over the
    /// retrieved candidates, apply, and record decisions at the store.
    fn finish_reconcile<S: UpdateStore>(
        &mut self,
        store: &mut S,
        relevant: orchestra_store::RelevantTransactions,
        precomputed_conflicts: Option<
            rustc_hash::FxHashMap<TransactionId, rustc_hash::FxHashSet<TransactionId>>,
        >,
    ) -> Result<ReconcileReport> {
        let previously_rejected = self.rejected_set_cached(store);
        let retrieval_timing = store.take_timing();

        let local_start = Instant::now();
        let input = ReconcileInput {
            recno: relevant.recno,
            candidates: relevant.candidates,
            own_updates: std::mem::take(&mut self.last_published_updates),
            previously_rejected,
            precomputed_conflicts,
        };
        let outcome = self.engine.reconcile(input, &mut self.instance, &mut self.soft);
        let local_elapsed = local_start.elapsed();

        store.record_decisions(self.id, &outcome.accepted_members, &outcome.rejected)?;
        self.extend_rejected_cache(&outcome.rejected);
        let record_timing = store.take_timing();

        let timing = TimingBreakdown {
            store: retrieval_timing.total() + record_timing.total(),
            local: local_elapsed,
        };
        self.total_timing.accumulate(timing);

        Ok(ReconcileReport {
            recno: outcome.recno,
            epoch: relevant.epoch,
            accepted: outcome.accepted_roots,
            rejected: outcome.rejected,
            deferred: outcome.deferred,
            conflict_groups: outcome.conflict_groups,
            timing,
        })
    }

    /// Publishes pending transactions (if any) and then reconciles — the
    /// combined step the paper assumes participants perform together.
    pub fn publish_and_reconcile<S: UpdateStore>(
        &mut self,
        store: &mut S,
    ) -> Result<ReconcileReport> {
        self.publish(store)?;
        self.reconcile(store)
    }

    /// Resolves deferred conflicts according to the user's choices, records
    /// the resulting decisions at the store, and returns what changed.
    pub fn resolve_conflicts<S: UpdateStore>(
        &mut self,
        store: &mut S,
        choices: &[ResolutionChoice],
    ) -> Result<ResolutionReport> {
        store.take_timing();
        let previously_rejected = self.rejected_set_cached(store);
        let recno = store.current_reconciliation(self.id);
        let read_timing = store.take_timing();

        let local_start = Instant::now();
        let outcome = resolve_conflicts(
            &self.engine,
            recno,
            choices,
            &mut self.instance,
            &mut self.soft,
            &previously_rejected,
        );
        let local_elapsed = local_start.elapsed();

        let mut rejected_all = outcome.newly_rejected.clone();
        rejected_all.extend(outcome.rerun.rejected.iter().copied());
        store.record_decisions(self.id, &outcome.rerun.accepted_members, &rejected_all)?;
        self.extend_rejected_cache(&rejected_all);
        let record_timing = store.take_timing();

        let timing = TimingBreakdown {
            store: read_timing.total() + record_timing.total(),
            local: local_elapsed,
        };
        self.total_timing.accumulate(timing);

        Ok(ResolutionReport {
            newly_rejected: rejected_all,
            newly_accepted: outcome.rerun.accepted_roots,
            still_deferred: outcome.rerun.deferred,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::Tuple;
    use orchestra_store::CentralStore;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn setup_pair() -> (CentralStore, Participant, Participant) {
        let schema = bioinformatics_schema();
        let mut store = CentralStore::new(schema.clone());
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32);
        let policy2 = TrustPolicy::new(p(2)).trusting(p(1), 1u32);
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        let p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let p2 = Participant::new(schema, ParticipantConfig::new(policy2));
        (store, p1, p2)
    }

    #[test]
    fn execute_applies_locally_and_queues_for_publication() {
        let (_store, mut p1, _) = setup_pair();
        let id = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("rat", "prot1", "immune"),
                p(1),
            )])
            .unwrap();
        assert_eq!(id, TransactionId::new(p(1), 0));
        assert_eq!(p1.instance().total_tuples(), 1);
        assert_eq!(p1.pending_publications().len(), 1);

        // A second transaction gets the next local id.
        let id2 = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("mouse", "prot2", "immune"),
                p(1),
            )])
            .unwrap();
        assert_eq!(id2, TransactionId::new(p(1), 1));
    }

    #[test]
    fn execute_rejects_foreign_updates_and_invalid_transactions() {
        let (_store, mut p1, _) = setup_pair();
        let err = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("rat", "prot1", "immune"),
                p(2),
            )])
            .unwrap_err();
        assert!(matches!(err, StorageError::Model(_)));
        assert!(p1.execute_transaction(vec![]).is_err());
        // A transaction violating local state is not applied or queued.
        p1.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        let err = p1
            .execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "b"), p(1))])
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(p1.pending_publications().len(), 1);
    }

    #[test]
    fn publish_and_reconcile_propagates_between_participants() {
        let (mut store, mut p1, mut p2) = setup_pair();
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        let report1 = p1.publish_and_reconcile(&mut store).unwrap();
        assert!(report1.accepted.is_empty());
        assert_eq!(report1.epoch, orchestra_model::Epoch(1));

        let report2 = p2.publish_and_reconcile(&mut store).unwrap();
        assert_eq!(report2.accepted.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(report2.timing.total() >= report2.timing.local);
        assert!(p2.total_timing().total() >= report2.timing.total());
    }

    #[test]
    fn publishing_nothing_is_a_noop() {
        let (mut store, mut p1, _) = setup_pair();
        assert_eq!(p1.publish(&mut store).unwrap(), None);
    }

    #[test]
    fn own_version_wins_over_remote_conflicting_version() {
        let (mut store, mut p1, mut p2) = setup_pair();
        // p1 publishes its value first.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish_and_reconcile(&mut store).unwrap();

        // p2 executes a divergent value for the same key, then reconciles.
        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "cell-resp"),
            p(2),
        )])
        .unwrap();
        let report = p2.publish_and_reconcile(&mut store).unwrap();
        assert_eq!(report.rejected.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
    }

    #[test]
    fn own_delta_accumulates_across_multiple_publications() {
        // Regression test: `publish` used to *overwrite* the own-delta, so
        // publishing twice before reconciling dropped the first batch and a
        // trusted remote transaction conflicting with it was wrongly
        // accepted. The scenario needs a remote update that is compatible
        // with p1's instance but conflicts with p1's first published batch: a
        // remote DELETE of the tuple p1 inserted.
        let (mut store, mut p1, mut p2) = setup_pair();

        // p1 publishes its insert (first batch, epoch 1) without reconciling.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish(&mut store).unwrap();

        // p2 accepts it, then publishes a delete of that very tuple.
        p2.publish_and_reconcile(&mut store).unwrap();
        p2.execute_transaction(vec![Update::delete(
            "Function",
            func("rat", "prot1", "immune"),
            p(2),
        )])
        .unwrap();
        p2.publish(&mut store).unwrap();

        // p1 publishes a second, unrelated batch — with the bug this
        // overwrote the delta and forgot the prot1 insert.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("mouse", "prot2", "ligase"),
            p(1),
        )])
        .unwrap();
        let report = p1.publish_and_reconcile(&mut store).unwrap();

        // The remote delete conflicts with p1's own (still unreconciled)
        // insert: the participant always prefers its own version, so the
        // delete must be rejected and the tuple must survive.
        assert_eq!(report.rejected.len(), 1, "remote delete must be rejected");
        assert!(report.accepted.is_empty());
        assert!(p1.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    }

    #[test]
    fn conflict_resolution_round_trip() {
        let schema = bioinformatics_schema();
        let mut store = CentralStore::new(schema.clone());
        // p1 trusts p2 and p3 equally; p2 and p3 trust nobody.
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32);
        let policy2 = TrustPolicy::new(p(2));
        let policy3 = TrustPolicy::new(p(3));
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        store.register_participant(policy3.clone());
        let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(policy2));
        let mut p3 = Participant::new(schema, ParticipantConfig::new(policy3));

        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "cell-resp"),
            p(2),
        )])
        .unwrap();
        p2.publish_and_reconcile(&mut store).unwrap();
        p3.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(3),
        )])
        .unwrap();
        p3.publish_and_reconcile(&mut store).unwrap();

        let report = p1.publish_and_reconcile(&mut store).unwrap();
        assert_eq!(report.deferred.len(), 2);
        assert_eq!(p1.deferred_conflicts().len(), 1);

        // Resolve in favour of p3's value.
        let group = &p1.deferred_conflicts()[0];
        let key = group.key.clone();
        let idx = group
            .options
            .iter()
            .position(|o| o.transactions.iter().any(|t| t.participant == p(3)))
            .unwrap();
        let resolution = p1
            .resolve_conflicts(
                &mut store,
                &[ResolutionChoice { group: key, chosen_option: Some(idx) }],
            )
            .unwrap();
        assert_eq!(resolution.newly_accepted.len(), 1);
        assert_eq!(resolution.newly_rejected.len(), 1);
        assert!(resolution.still_deferred.is_empty());
        assert!(p1.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(p1.deferred_conflicts().is_empty());
    }
}
