//! A CDSS participant: local instance, trust policy, publication and
//! reconciliation.
//!
//! Participants talk to the update store through a *shared reference*
//! (`&S where S: UpdateStore + ?Sized`): the store synchronises internally,
//! so many participants — one per thread — publish and reconcile against the
//! same store concurrently. Reconciliation uses the store's session API:
//! candidates are streamed in bounded pages
//! ([`Participant::reconcile_batch_size`]), decided by the client-centric
//! engine, and the decisions are committed atomically with the session.

use crate::report::{ReconcileReport, ResolutionReport, TimingBreakdown};
use orchestra_model::{
    AntichainClock, CausalStamp, ParticipantId, Schema, Transaction, TransactionId, TrustPolicy,
    Update,
};
use orchestra_obs::Obs;
use orchestra_recon::{
    resolution::resolve_conflicts, CandidateTransaction, ConflictGroup, ReconcileEngine,
    ReconcileInput, ReconcileOutcome, ResolutionChoice, SoftState,
};
use orchestra_storage::{Database, InstanceCheckpoint, Result, StorageError};
use orchestra_store::{ReconciliationSession, SessionClient, StoreTiming, UpdateStore};
use std::time::{Duration, Instant};

/// Default page size for session-based candidate retrieval: bounds the
/// store-side working set materialised per `next_batch` call.
pub const DEFAULT_RECONCILE_BATCH_SIZE: usize = 64;

/// Configuration of a participant: its trust policy (which also names the
/// participant) and, optionally, a pre-populated initial instance.
#[derive(Debug, Clone)]
pub struct ParticipantConfig {
    /// The participant's trust policy (acceptance rules).
    pub policy: TrustPolicy,
    /// An optional initial database instance; an empty instance of the
    /// system schema is used when absent.
    pub initial_instance: Option<Database>,
}

impl ParticipantConfig {
    /// Creates a configuration from a trust policy with an empty initial
    /// instance.
    pub fn new(policy: TrustPolicy) -> Self {
        ParticipantConfig { policy, initial_instance: None }
    }

    /// Sets an initial instance.
    pub fn with_instance(mut self, instance: Database) -> Self {
        self.initial_instance = Some(instance);
        self
    }
}

/// An autonomous participant of the CDSS.
///
/// A participant executes transactions against its local instance, publishes
/// them to the shared update store, and reconciles — importing the trusted,
/// non-conflicting transactions other participants have published. All
/// per-participant state besides the instance (deferred transactions, dirty
/// values, conflict groups) is soft and can be reconstructed from the update
/// store.
#[derive(Debug, Clone)]
pub struct Participant {
    id: ParticipantId,
    policy: TrustPolicy,
    instance: Database,
    engine: ReconcileEngine,
    soft: SoftState,
    next_local_txn: u64,
    /// Page size for session-based candidate retrieval.
    reconcile_batch_size: usize,
    /// Transactions executed locally but not yet published.
    pending_publish: Vec<Transaction>,
    /// Updates published since the last reconciliation, used as the "delta
    /// for recno" when the next reconciliation runs. Accumulated across
    /// publications (a participant may publish several times between
    /// reconciliations) and consumed by the reconciliation that covers them.
    last_published_updates: Vec<Update>,
    /// Cumulative timing across all operations.
    total_timing: TimingBreakdown,
    /// Shared observability sink: every timing accumulation also bumps the
    /// `participant.store_us` / `participant.local_us` counters there, and
    /// publish / reconcile / resolution milestones emit trace events.
    obs: Obs,
    /// Locally mirrored rejected set: loaded from the store once (on the
    /// first reconciliation) and extended with this participant's own
    /// decisions afterwards, so steady-state reconciliations never re-read
    /// the whole rejected record. Shared (`Arc`) with the engine per run.
    rejected_cache: Option<std::sync::Arc<rustc_hash::FxHashSet<TransactionId>>>,
    /// True while the participant is partitioned from the store: publishing
    /// stamps and buffers batches locally, reconciliation is refused until
    /// [`Participant::rejoin`].
    offline: bool,
    /// Causally stamped batches published while offline, in stamp order,
    /// drained into the store on rejoin.
    buffered: Vec<(CausalStamp, Vec<Transaction>)>,
    /// The per-publisher sequence number the participant's next causal stamp
    /// will carry (1-based; resynchronised from the store before each online
    /// stamped publish).
    causal_seq: u64,
    /// The causal frontier this participant has observed — its own stamps
    /// plus the store frontier merged in at each reconciliation. The next
    /// stamp names it as its parent set.
    observed: AntichainClock,
}

impl Participant {
    /// Creates a participant for the given schema and configuration.
    pub fn new(schema: Schema, config: ParticipantConfig) -> Self {
        let id = config.policy.owner();
        let instance = config.initial_instance.unwrap_or_else(|| Database::new(schema.clone()));
        Participant {
            id,
            policy: config.policy,
            instance,
            engine: ReconcileEngine::new(schema),
            soft: SoftState::new(),
            next_local_txn: 0,
            reconcile_batch_size: DEFAULT_RECONCILE_BATCH_SIZE,
            pending_publish: Vec::new(),
            last_published_updates: Vec::new(),
            total_timing: TimingBreakdown::default(),
            obs: Obs::disabled(),
            rejected_cache: None,
            offline: false,
            buffered: Vec::new(),
            causal_seq: 1,
            observed: AntichainClock::new(),
        }
    }

    /// Reconstructs a participant from the update store alone — the paper's
    /// soft-state property: everything but the trust policy can be recovered
    /// from the store. Three pieces are rebuilt:
    ///
    /// * the **instance**, by replaying every transaction the store records
    ///   as accepted by this participant, in acceptance order (the order the
    ///   instance originally applied them);
    /// * the **own-publish delta**: this participant's own transactions
    ///   published *after* its last committed reconciliation have not yet
    ///   been covered by one, so they are restored into
    ///   `last_published_updates` (a trusted remote transaction conflicting
    ///   with them must still be rejected);
    /// * the **deferred soft state**: the store's undecided relevant
    ///   transactions at or before the cursor are exactly the candidates
    ///   earlier reconciliations deferred, so the dirty-value set and the
    ///   conflict groups are rebuilt from them — a crash no longer silently
    ///   drops conflicts awaiting user resolution.
    ///
    /// When the store holds an [`InstanceCheckpoint`] for this participant
    /// (see [`Participant::checkpoint_to_store`]), the instance starts from
    /// the checkpointed tuples and only the acceptance-order *suffix* past
    /// `accepted_through` is replayed — so the rebuild survives
    /// `ConvergedOnly` retention having pruned the transactions the prefix
    /// was built from.
    pub fn rebuild_from_store<S: UpdateStore + ?Sized>(
        schema: Schema,
        config: ParticipantConfig,
        store: &S,
    ) -> Result<Self> {
        let mut participant = Participant::new(schema.clone(), config);
        let cursor = store.epoch_cursor(participant.id);
        let mut skip = 0u64;
        if let Some(checkpoint) = store.instance_checkpoint(participant.id) {
            for (relation, tuples) in &checkpoint.relations {
                for tuple in tuples {
                    Self::apply_lenient(
                        &mut participant.instance,
                        &Update::insert(relation, tuple.clone(), participant.id),
                    );
                }
            }
            participant.next_local_txn = checkpoint.next_local;
            skip = checkpoint.accepted_through;
        }
        let mut max_local = participant.next_local_txn;
        let mut own_delta: Vec<Update> = Vec::new();
        // Replay unit by unit: each unit is the newly accepted slice of one
        // candidate extension and was originally applied as one *flattened*
        // net effect, so a chain that collapsed to a no-op (e.g. a modify
        // and its exact inverse accepted together) replays as a no-op too.
        //
        // The own-delta test below (publish epoch > cursor) relies on
        // publishes being atomic under the log lock: the stable frontier a
        // session pins always covers every finished epoch, so an own
        // publication past the cursor is exactly one no reconciliation has
        // consumed yet.
        for unit in store.accepted_replay_units_after(participant.id, skip) {
            for txn in &unit {
                if txn.origin() == participant.id {
                    max_local = max_local.max(txn.id().local + 1);
                    if store.epoch_of(txn.id()).map(|e| e > cursor).unwrap_or(false) {
                        own_delta.extend(txn.updates().iter().cloned());
                    }
                }
            }
            let footprint: Vec<Update> =
                unit.iter().flat_map(|t| t.updates().iter().cloned()).collect();
            for update in orchestra_model::flatten(&schema, &footprint) {
                Self::apply_lenient(&mut participant.instance, &update);
            }
        }
        participant.next_local_txn = max_local;
        participant.last_published_updates = own_delta;
        participant.causal_seq = store.next_publisher_seq(participant.id);
        participant.observed.merge(&store.causal_frontier());

        let deferred = store.undecided_candidates(participant.id);
        if !deferred.is_empty() {
            let recno = store.current_reconciliation(participant.id);
            participant.soft.rebuild(
                recno,
                deferred,
                participant.engine.schema(),
                participant.engine.extension_cache(),
            );
        }
        Ok(participant)
    }

    /// Applies an update, tolerating effects that are already present or no
    /// longer applicable (replay of accepted transactions may encounter
    /// values that a later accepted transaction already superseded).
    fn apply_lenient(instance: &mut Database, update: &Update) {
        use orchestra_model::UpdateOp;
        let already_satisfied = match &update.op {
            UpdateOp::Insert(t) => instance.contains_tuple_exact(&update.relation, t),
            UpdateOp::Delete(t) => !instance.key_present(&update.relation, t),
            UpdateOp::Modify { from, to } => {
                !instance.contains_tuple_exact(&update.relation, from)
                    && instance.contains_tuple_exact(&update.relation, to)
            }
        };
        if !already_satisfied {
            let _ = instance.apply_update(update);
        }
    }

    /// The participant's identity.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// The participant's trust policy.
    pub fn policy(&self) -> &TrustPolicy {
        &self.policy
    }

    /// The participant's current database instance.
    pub fn instance(&self) -> &Database {
        &self.instance
    }

    /// The participant's soft state (deferred transactions, dirty values,
    /// conflict groups).
    pub fn soft_state(&self) -> &SoftState {
        &self.soft
    }

    /// The conflict groups awaiting user resolution.
    pub fn deferred_conflicts(&self) -> &[ConflictGroup] {
        self.soft.conflict_groups()
    }

    /// Transactions executed locally but not yet published.
    pub fn pending_publications(&self) -> &[Transaction] {
        &self.pending_publish
    }

    /// Updates published since the last reconciliation (the own-delta the
    /// next reconciliation will treat as this participant's own version).
    pub fn own_publish_delta(&self) -> &[Update] {
        &self.last_published_updates
    }

    /// Cumulative timing across every operation performed so far.
    pub fn total_timing(&self) -> TimingBreakdown {
        self.total_timing
    }

    /// Points the participant at a shared observability sink. Timing keeps
    /// accumulating into [`Participant::total_timing`] (the view) while the
    /// sink's `participant.store_us` / `participant.local_us` counters see
    /// the same micros, and trace events are recorded when the sink's tracer
    /// is enabled.
    pub fn set_observability(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    /// Accumulates one operation's timing into the cumulative view *and*
    /// the shared metric counters — the single sink that replaced ad-hoc
    /// `TimingBreakdown` summing in drivers.
    fn record_timing(&mut self, timing: TimingBreakdown) {
        self.total_timing.accumulate(timing);
        self.obs.metrics.counter("participant.store_us").add(timing.store.as_micros() as u64);
        self.obs.metrics.counter("participant.local_us").add(timing.local.as_micros() as u64);
    }

    /// The page size used for session-based candidate retrieval.
    pub fn reconcile_batch_size(&self) -> usize {
        self.reconcile_batch_size
    }

    /// Sets the page size for session-based candidate retrieval (clamped to
    /// at least 1).
    pub fn set_reconcile_batch_size(&mut self, size: usize) {
        self.reconcile_batch_size = size.max(1);
    }

    /// The participant's rejected set: read from the store on first use
    /// (already a shared snapshot — a reference-count bump), then maintained
    /// incrementally from this participant's own decisions (it is the only
    /// writer of its decision record), so steady-state reconciliations do
    /// O(new rejections) work instead of re-reading the whole record.
    fn rejected_set_cached<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> std::sync::Arc<rustc_hash::FxHashSet<TransactionId>> {
        match &self.rejected_cache {
            Some(set) => std::sync::Arc::clone(set),
            None => {
                let set = store.rejected_set(self.id);
                self.rejected_cache = Some(std::sync::Arc::clone(&set));
                set
            }
        }
    }

    /// Folds freshly recorded rejections into the local mirror. `Arc::make_mut`
    /// is copy-free in the steady state: the engine's borrow has been dropped
    /// by the time decisions are recorded.
    fn extend_rejected_cache(&mut self, rejected: &[TransactionId]) {
        if let Some(cache) = &mut self.rejected_cache {
            std::sync::Arc::make_mut(cache).extend(rejected.iter().copied());
        }
    }

    /// Shrinks the participant's soft caches to what can still be needed:
    /// the flattened-extension cache keeps only chains whose root is still
    /// deferred. The engine already prunes the cache after every
    /// reconciliation; this is the explicit hook retention-minded drivers
    /// call alongside [`store-side pruning`](orchestra_store::StoreCatalog::prune_to_horizon)
    /// so client memory tracks the deferred set rather than history.
    pub fn prune_caches(&mut self) {
        let soft = &self.soft;
        self.engine.extension_cache().retain(|id| soft.is_deferred(id));
    }

    /// Number of flattened extensions held by the engine's cache (for the
    /// retention workload's client-side live-set accounting).
    pub fn engine_cache_len(&self) -> usize {
        self.engine.extension_cache().len()
    }

    /// Executes a transaction against the local instance. The updates must
    /// all originate from this participant (the origin field is checked). The
    /// transaction is applied atomically and queued for the next publication.
    pub fn execute_transaction(&mut self, updates: Vec<Update>) -> Result<TransactionId> {
        for u in &updates {
            if u.origin != self.id {
                return Err(StorageError::Model(orchestra_model::ModelError::InvalidTransaction(
                    format!("update originated by {} executed at {}", u.origin, self.id),
                )));
            }
        }
        let txn = Transaction::from_parts(self.id, self.next_local_txn, updates)
            .map_err(StorageError::Model)?;
        self.instance.apply_transaction(&txn)?;
        self.next_local_txn += 1;
        let id = txn.id();
        self.pending_publish.push(txn);
        Ok(id)
    }

    /// Publishes all pending transactions to the update store as one epoch.
    /// Returns `None` if there was nothing to publish.
    ///
    /// In causal mode the participant allocates its own [`CausalStamp`]
    /// (per-publisher sequence plus its observed frontier as the parent set)
    /// and publishes through [`UpdateStore::publish_stamped`] — no central
    /// allocation round trip. While [offline](Participant::go_offline) the
    /// stamped batch is buffered locally instead and `None` is returned; it
    /// reaches the store when the participant [rejoins](Participant::rejoin).
    pub fn publish<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Option<orchestra_model::Epoch>> {
        let Some(batch) = self.stage_publish_batch() else {
            return Ok(None);
        };
        let txns = batch.len() as u64;
        let published = if store.causal_mode() {
            // Resynchronise the client-side sequence (a participant built
            // with `new` against a store that already holds its stamps would
            // otherwise replay a taken sequence number).
            self.causal_seq = self.causal_seq.max(store.next_publisher_seq(self.id));
            let stamp = self.next_stamp();
            store.publish_stamped(stamp, batch)?
        } else {
            store.publish(self.id, batch)?
        };
        self.record_timing(TimingBreakdown {
            store: published.timing.total(),
            local: Duration::ZERO,
        });
        self.obs.tracer.event(
            "participant.publish",
            &[
                ("participant", u64::from(self.id.as_u32())),
                ("epoch", published.value.as_u64()),
                ("txns", txns),
            ],
        );
        Ok(Some(published.value))
    }

    /// [`Participant::publish`] over the store service: the batch travels as
    /// a framed `Publish`/`PublishStamped` request through a
    /// [`SessionClient`] — a single service's
    /// [`ServiceClient`](orchestra_store::ServiceClient) or a whole
    /// fabric's [`FabricClient`](orchestra_store::FabricClient) — with frame
    /// latency charged to the driver's virtual clock. Decisions and store
    /// state end up identical to the in-process path.
    pub async fn publish_service<S: UpdateStore + ?Sized, C: SessionClient>(
        &mut self,
        store: &S,
        client: &C,
    ) -> Result<Option<orchestra_model::Epoch>> {
        let Some(batch) = self.stage_publish_batch() else {
            return Ok(None);
        };
        let start_us = client.clock().now_us();
        let epoch = if store.causal_mode() {
            self.causal_seq = self.causal_seq.max(store.next_publisher_seq(self.id));
            let stamp = self.next_stamp();
            client.publish_stamped(stamp, batch).await?
        } else {
            client.publish(batch).await?
        };
        self.record_timing(TimingBreakdown {
            store: Duration::from_micros(client.clock().now_us() - start_us),
            local: Duration::ZERO,
        });
        Ok(Some(epoch))
    }

    /// Shared head of the publish paths: takes the pending batch, folds it
    /// into the own-delta, and buffers it with a causal stamp while offline.
    /// Returns the batch to send, or `None` when nothing reaches the store
    /// (nothing pending, or offline-buffered).
    fn stage_publish_batch(&mut self) -> Option<Vec<Transaction>> {
        if self.pending_publish.is_empty() {
            return None;
        }
        let batch = std::mem::take(&mut self.pending_publish);
        // Accumulate, do not overwrite: publishing twice before reconciling
        // must keep the first batch in the own-delta, or a trusted remote
        // transaction conflicting with it would wrongly be accepted.
        self.last_published_updates.extend(batch.iter().flat_map(|t| t.updates().iter().cloned()));
        if self.offline {
            let stamp = self.next_stamp();
            self.buffered.push((stamp, batch));
            return None;
        }
        Some(batch)
    }

    /// Allocates the participant's next causal stamp: its own next sequence
    /// number over its observed frontier, which then advances to include the
    /// new stamp (so consecutive own stamps chain).
    fn next_stamp(&mut self) -> CausalStamp {
        let stamp = CausalStamp::new(self.id, self.causal_seq, self.observed.clone());
        self.causal_seq += 1;
        self.observed.insert(stamp.id());
        stamp
    }

    /// True while the participant is partitioned from the store.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// The causally stamped batches buffered while offline, in stamp order.
    pub fn buffered_publications(&self) -> &[(CausalStamp, Vec<Transaction>)] {
        &self.buffered
    }

    /// Partitions the participant from the store: until
    /// [`Participant::rejoin`], publications are causally stamped and
    /// buffered locally and reconciliation is refused. Local transaction
    /// execution keeps working — that is the point of offline publishing.
    pub fn go_offline(&mut self) {
        self.offline = true;
    }

    /// Rejoins after a partition: drains the buffered publications into the
    /// store in stamp order and returns the arrival epochs they were
    /// assigned. The store must be in causal mode (the buffered batches
    /// carry causal stamps). On an error the failing batch and its
    /// successors stay buffered and the participant stays offline, so the
    /// rejoin can be retried.
    pub fn rejoin<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Vec<orchestra_model::Epoch>> {
        let mut epochs = Vec::with_capacity(self.buffered.len());
        while let Some((stamp, batch)) = self.buffered.first() {
            let published = store.publish_stamped(stamp.clone(), batch.clone())?;
            self.buffered.remove(0);
            self.record_timing(TimingBreakdown {
                store: published.timing.total(),
                local: std::time::Duration::ZERO,
            });
            epochs.push(published.value);
        }
        self.offline = false;
        self.observed.merge(&store.causal_frontier());
        self.obs.tracer.event(
            "participant.rejoin",
            &[("participant", u64::from(self.id.as_u32())), ("batches", epochs.len() as u64)],
        );
        Ok(epochs)
    }

    /// Records the participant's materialised instance at the store as an
    /// [`InstanceCheckpoint`], so a later [`Participant::rebuild_from_store`]
    /// survives `ConvergedOnly` retention pruning the transactions the
    /// instance was built from. Call at a quiescent point: unpublished local
    /// transactions would be baked into the checkpoint without being in the
    /// store, so the call refuses while any are pending.
    pub fn checkpoint_to_store<S: UpdateStore + ?Sized>(&self, store: &S) -> Result<()> {
        if !self.pending_publish.is_empty() {
            return Err(StorageError::Causal(format!(
                "participant {} has {} unpublished transactions; publish before checkpointing",
                self.id,
                self.pending_publish.len()
            )));
        }
        let mut relations = std::collections::BTreeMap::new();
        for name in self.instance.schema().relation_names() {
            let mut tuples: Vec<orchestra_model::Tuple> =
                self.instance.relation_contents(name).into_iter().map(|(_, t)| t).collect();
            if tuples.is_empty() {
                continue;
            }
            tuples.sort();
            relations.insert(name.to_string(), tuples);
        }
        let checkpoint = InstanceCheckpoint {
            relations,
            next_local: self.next_local_txn,
            epoch: store.epoch_cursor(self.id),
            accepted_through: store.accepted_set(self.id).len() as u64,
        };
        store.record_instance_checkpoint(self.id, checkpoint)
    }

    /// Reconciles against the update store: opens a session, streams the
    /// relevant trusted candidates page by page, decides them with the
    /// client-centric algorithm, applies the accepted ones to the local
    /// instance, and commits the session (decisions plus reconciliation
    /// record) back at the store.
    pub fn reconcile<S: UpdateStore + ?Sized>(&mut self, store: &S) -> Result<ReconcileReport> {
        self.require_online()?;
        let _span =
            self.obs.tracer.span("reconcile", &[("participant", u64::from(self.id.as_u32()))]);
        let mut session = ReconciliationSession::open(store, self.id)?;
        let candidates = session.drain(self.reconcile_batch_size)?;
        self.finish_reconcile(store, session, candidates, None)
    }

    /// Reconciles in the network-centric mode of Section 5: antecedent
    /// resolution and conflict detection are performed across the DHT peers
    /// (charged to store time and network traffic), and the local algorithm
    /// only resolves priorities and applies updates. The decisions made are
    /// identical to [`Participant::reconcile`]; only the cost distribution
    /// differs.
    pub fn reconcile_network_centric(
        &mut self,
        store: &orchestra_store::DhtStore,
    ) -> Result<ReconcileReport> {
        self.require_online()?;
        let timed = store.begin_network_centric_reconciliation(self.id)?;
        let retrieval = timed.timing;
        let plan = timed.value;
        self.finish_reconcile_raw(
            store,
            plan.session,
            plan.recno,
            plan.epoch,
            retrieval,
            plan.candidates,
            Some(plan.conflicts),
        )
    }

    /// Refuses store-touching operations while partitioned.
    fn require_online(&self) -> Result<()> {
        if self.offline {
            return Err(StorageError::Causal(format!(
                "participant {} is offline; rejoin before reconciling",
                self.id
            )));
        }
        Ok(())
    }

    /// Shared tail of the session-based reconciliation: run the engine over
    /// the streamed candidates, apply, and commit the session.
    fn finish_reconcile<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        session: ReconciliationSession<'_, S>,
        candidates: Vec<CandidateTransaction>,
        precomputed_conflicts: Option<
            rustc_hash::FxHashMap<TransactionId, rustc_hash::FxHashSet<TransactionId>>,
        >,
    ) -> Result<ReconcileReport> {
        let recno = session.recno();
        let epoch = session.epoch();
        let retrieval = session.timing();
        // Detach the RAII wrapper: the commit (or error-path abort) below
        // finishes the session.
        let session_id = session.detach();
        self.finish_reconcile_raw(
            store,
            session_id,
            recno,
            epoch,
            retrieval,
            candidates,
            precomputed_conflicts,
        )
    }

    /// The engine + commit tail shared by the client-centric and
    /// network-centric paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_reconcile_raw<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        session: orchestra_store::SessionId,
        recno: orchestra_model::ReconciliationId,
        epoch: orchestra_model::Epoch,
        retrieval: StoreTiming,
        candidates: Vec<CandidateTransaction>,
        precomputed_conflicts: Option<
            rustc_hash::FxHashMap<TransactionId, rustc_hash::FxHashSet<TransactionId>>,
        >,
    ) -> Result<ReconcileReport> {
        let (outcome, local_elapsed) =
            self.run_engine(store, recno, candidates, precomputed_conflicts);

        let commit_timing = match store.commit_reconciliation(
            session,
            &outcome.accepted_members,
            &outcome.rejected,
        ) {
            Ok(timing) => timing,
            Err(e) => {
                let _ = store.abort_reconciliation(session);
                return Err(e);
            }
        };
        Ok(self.absorb_commit(store, outcome, retrieval, commit_timing, epoch, local_elapsed))
    }

    /// Runs the client-centric engine over the streamed candidates against
    /// the participant's soft-state snapshots. Shared by the in-process and
    /// service reconciliation paths so their decisions are computed by the
    /// exact same code.
    fn run_engine<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        recno: orchestra_model::ReconciliationId,
        candidates: Vec<CandidateTransaction>,
        precomputed_conflicts: Option<
            rustc_hash::FxHashMap<TransactionId, rustc_hash::FxHashSet<TransactionId>>,
        >,
    ) -> (ReconcileOutcome, Duration) {
        let previously_rejected = self.rejected_set_cached(store);
        let previously_accepted = store.accepted_set(self.id);

        let local_start = Instant::now();
        let input = ReconcileInput {
            recno,
            candidates,
            own_updates: std::mem::take(&mut self.last_published_updates),
            previously_rejected,
            previously_accepted,
            precomputed_conflicts,
        };
        let outcome = self.engine.reconcile(input, &mut self.instance, &mut self.soft);
        (outcome, local_start.elapsed())
    }

    /// Absorbs a committed reconciliation into the participant's caches and
    /// timing, and builds the report. Shared commit tail of the in-process
    /// and service paths.
    fn absorb_commit<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        outcome: ReconcileOutcome,
        retrieval: StoreTiming,
        commit_timing: StoreTiming,
        epoch: orchestra_model::Epoch,
        local_elapsed: Duration,
    ) -> ReconcileReport {
        self.extend_rejected_cache(&outcome.rejected);
        // The session's candidates covered everything at or behind the
        // store's causal frontier, so the participant has now observed it
        // (a no-op merge on scalar stores, whose frontier is empty).
        self.observed.merge(&store.causal_frontier());

        let mut store_time = retrieval;
        store_time.accumulate(commit_timing);
        let timing = TimingBreakdown { store: store_time.total(), local: local_elapsed };
        self.record_timing(timing);

        ReconcileReport {
            recno: outcome.recno,
            epoch,
            accepted: outcome.accepted_roots,
            rejected: outcome.rejected,
            deferred: outcome.deferred,
            conflict_groups: outcome.conflict_groups,
            timing,
        }
    }

    /// [`Participant::reconcile`] over the store service: the paged session
    /// protocol travels as framed requests through a [`SessionClient`] —
    /// begin (with admission-control retry), page streaming, commit (or
    /// error-path abort) — while the engine runs locally on the exact same
    /// code as the in-process path, so the decisions are identical. Store
    /// cost is the *virtual* time the frames took, which under a concurrent
    /// driver includes queueing at the service. Over a
    /// [`FabricClient`](orchestra_store::FabricClient) the session spans one
    /// shard session per store shard, merged into one candidate timeline.
    pub async fn reconcile_service<S: UpdateStore + ?Sized, C: SessionClient>(
        &mut self,
        store: &S,
        client: &C,
    ) -> Result<ReconcileReport> {
        self.require_online()?;
        let _span =
            self.obs.tracer.span("reconcile", &[("participant", u64::from(self.id.as_u32()))]);
        let clock = client.clock().clone();
        let retrieval_start = clock.now_us();
        let info = client.begin_session().await?;
        let candidates = client.drain_candidates(info.session, self.reconcile_batch_size).await?;
        let retrieval = StoreTiming {
            compute: Duration::ZERO,
            network: Duration::from_micros(clock.now_us() - retrieval_start),
        };

        let (outcome, local_elapsed) = self.run_engine(store, info.recno, candidates, None);

        let commit_start = clock.now_us();
        if let Err(e) =
            client.commit(info.session, &outcome.accepted_members, &outcome.rejected).await
        {
            let _ = client.abort(info.session).await;
            return Err(e);
        }
        let commit_timing = StoreTiming {
            compute: Duration::ZERO,
            network: Duration::from_micros(clock.now_us() - commit_start),
        };
        Ok(self.absorb_commit(store, outcome, retrieval, commit_timing, info.epoch, local_elapsed))
    }

    /// Publishes pending transactions (if any) and then reconciles — the
    /// combined step the paper assumes participants perform together.
    pub fn publish_and_reconcile<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<ReconcileReport> {
        self.publish(store)?;
        self.reconcile(store)
    }

    /// Resolves deferred conflicts according to the user's choices, records
    /// the resulting decisions at the store, and returns what changed.
    pub fn resolve_conflicts<S: UpdateStore + ?Sized>(
        &mut self,
        store: &S,
        choices: &[ResolutionChoice],
    ) -> Result<ResolutionReport> {
        self.require_online()?;
        let _span = self.obs.tracer.span(
            "conflict.resolve",
            &[("participant", u64::from(self.id.as_u32())), ("choices", choices.len() as u64)],
        );
        let previously_rejected = self.rejected_set_cached(store);
        let previously_accepted = store.accepted_set(self.id);
        let recno = store.current_reconciliation(self.id);

        let local_start = Instant::now();
        let outcome = resolve_conflicts(
            &self.engine,
            recno,
            choices,
            &mut self.instance,
            &mut self.soft,
            &previously_rejected,
            previously_accepted,
        );
        let local_elapsed = local_start.elapsed();

        let mut rejected_all = outcome.newly_rejected.clone();
        rejected_all.extend(outcome.rerun.rejected.iter().copied());
        let record_timing =
            store.record_decisions(self.id, &outcome.rerun.accepted_members, &rejected_all)?;
        self.extend_rejected_cache(&rejected_all);

        let timing = TimingBreakdown { store: record_timing.total(), local: local_elapsed };
        self.record_timing(timing);
        self.obs.tracer.event(
            "conflict.resolved",
            &[
                ("participant", u64::from(self.id.as_u32())),
                ("accepted", outcome.rerun.accepted_roots.len() as u64),
                ("rejected", rejected_all.len() as u64),
                ("deferred", outcome.rerun.deferred.len() as u64),
            ],
        );

        Ok(ResolutionReport {
            newly_rejected: rejected_all,
            newly_accepted: outcome.rerun.accepted_roots,
            still_deferred: outcome.rerun.deferred,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::Tuple;
    use orchestra_store::CentralStore;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn setup_pair() -> (CentralStore, Participant, Participant) {
        let schema = bioinformatics_schema();
        let store = CentralStore::new(schema.clone());
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32);
        let policy2 = TrustPolicy::new(p(2)).trusting(p(1), 1u32);
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        let p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let p2 = Participant::new(schema, ParticipantConfig::new(policy2));
        (store, p1, p2)
    }

    #[test]
    fn execute_applies_locally_and_queues_for_publication() {
        let (_store, mut p1, _) = setup_pair();
        let id = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("rat", "prot1", "immune"),
                p(1),
            )])
            .unwrap();
        assert_eq!(id, TransactionId::new(p(1), 0));
        assert_eq!(p1.instance().total_tuples(), 1);
        assert_eq!(p1.pending_publications().len(), 1);

        // A second transaction gets the next local id.
        let id2 = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("mouse", "prot2", "immune"),
                p(1),
            )])
            .unwrap();
        assert_eq!(id2, TransactionId::new(p(1), 1));
    }

    #[test]
    fn execute_rejects_foreign_updates_and_invalid_transactions() {
        let (_store, mut p1, _) = setup_pair();
        let err = p1
            .execute_transaction(vec![Update::insert(
                "Function",
                func("rat", "prot1", "immune"),
                p(2),
            )])
            .unwrap_err();
        assert!(matches!(err, StorageError::Model(_)));
        assert!(p1.execute_transaction(vec![]).is_err());
        // A transaction violating local state is not applied or queued.
        p1.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        let err = p1
            .execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "b"), p(1))])
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(p1.pending_publications().len(), 1);
    }

    #[test]
    fn publish_and_reconcile_propagates_between_participants() {
        let (store, mut p1, mut p2) = setup_pair();
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        let report1 = p1.publish_and_reconcile(&store).unwrap();
        assert!(report1.accepted.is_empty());
        assert_eq!(report1.epoch, orchestra_model::Epoch(1));

        let report2 = p2.publish_and_reconcile(&store).unwrap();
        assert_eq!(report2.accepted.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(report2.timing.total() >= report2.timing.local);
        assert!(p2.total_timing().total() >= report2.timing.total());
    }

    #[test]
    fn publishing_nothing_is_a_noop() {
        let (store, mut p1, _) = setup_pair();
        assert_eq!(p1.publish(&store).unwrap(), None);
    }

    #[test]
    fn tiny_batch_sizes_reach_the_same_decisions() {
        // Page size 1 forces many next_batch calls; decisions and instances
        // must match the default page size.
        let run = |batch: usize| {
            let (store, mut p1, mut p2) = setup_pair();
            p1.set_reconcile_batch_size(batch);
            p2.set_reconcile_batch_size(batch);
            for i in 0..5u64 {
                p1.execute_transaction(vec![Update::insert(
                    "Function",
                    func("rat", &format!("prot{i}"), "immune"),
                    p(1),
                )])
                .unwrap();
                p1.publish(&store).unwrap();
            }
            let report = p2.publish_and_reconcile(&store).unwrap();
            (report.accepted.len(), p2.instance().relation_contents("Function"))
        };
        assert_eq!(run(1), run(DEFAULT_RECONCILE_BATCH_SIZE));
    }

    #[test]
    fn own_version_wins_over_remote_conflicting_version() {
        let (store, mut p1, mut p2) = setup_pair();
        // p1 publishes its value first.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish_and_reconcile(&store).unwrap();

        // p2 executes a divergent value for the same key, then reconciles.
        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "cell-resp"),
            p(2),
        )])
        .unwrap();
        let report = p2.publish_and_reconcile(&store).unwrap();
        assert_eq!(report.rejected.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "cell-resp")));
    }

    #[test]
    fn own_delta_accumulates_across_multiple_publications() {
        // Regression test: `publish` used to *overwrite* the own-delta, so
        // publishing twice before reconciling dropped the first batch and a
        // trusted remote transaction conflicting with it was wrongly
        // accepted. The scenario needs a remote update that is compatible
        // with p1's instance but conflicts with p1's first published batch: a
        // remote DELETE of the tuple p1 inserted.
        let (store, mut p1, mut p2) = setup_pair();

        // p1 publishes its insert (first batch, epoch 1) without reconciling.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish(&store).unwrap();

        // p2 accepts it, then publishes a delete of that very tuple.
        p2.publish_and_reconcile(&store).unwrap();
        p2.execute_transaction(vec![Update::delete(
            "Function",
            func("rat", "prot1", "immune"),
            p(2),
        )])
        .unwrap();
        p2.publish(&store).unwrap();

        // p1 publishes a second, unrelated batch — with the bug this
        // overwrote the delta and forgot the prot1 insert.
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("mouse", "prot2", "ligase"),
            p(1),
        )])
        .unwrap();
        let report = p1.publish_and_reconcile(&store).unwrap();

        // The remote delete conflicts with p1's own (still unreconciled)
        // insert: the participant always prefers its own version, so the
        // delete must be rejected and the tuple must survive.
        assert_eq!(report.rejected.len(), 1, "remote delete must be rejected");
        assert!(report.accepted.is_empty());
        assert!(p1.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
    }

    #[test]
    fn prune_caches_tracks_the_deferred_set() {
        let schema = bioinformatics_schema();
        let store = CentralStore::new(schema.clone());
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32);
        let policy2 = TrustPolicy::new(p(2));
        let policy3 = TrustPolicy::new(p(3));
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        store.register_participant(policy3.clone());
        let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(policy2));
        let mut p3 = Participant::new(schema, ParticipantConfig::new(policy3));

        // Equal-priority conflict: p1 defers both options.
        p2.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "x"), p(2))])
            .unwrap();
        p2.publish_and_reconcile(&store).unwrap();
        p3.execute_transaction(vec![Update::insert("Function", func("rat", "prot1", "y"), p(3))])
            .unwrap();
        p3.publish_and_reconcile(&store).unwrap();
        p1.publish_and_reconcile(&store).unwrap();
        assert!(!p1.deferred_conflicts().is_empty());
        let cached = p1.engine_cache_len();
        assert!(cached > 0, "deferred chains must be cached");

        // Pruning keeps exactly the still-deferred chains...
        p1.prune_caches();
        assert_eq!(p1.engine_cache_len(), cached);

        // ...and drops them once the conflict resolves.
        let key = p1.deferred_conflicts()[0].key.clone();
        p1.resolve_conflicts(&store, &[ResolutionChoice { group: key, chosen_option: Some(0) }])
            .unwrap();
        p1.prune_caches();
        assert_eq!(p1.engine_cache_len(), 0);
    }

    #[test]
    fn causal_mode_publishes_with_client_side_stamps() {
        let (store, mut p1, mut p2) = setup_pair();
        store.enable_causal_mode().unwrap();
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        let epoch = p1.publish(&store).unwrap();
        assert_eq!(epoch, Some(orchestra_model::Epoch(1)));
        let report = p2.publish_and_reconcile(&store).unwrap();
        assert_eq!(report.accepted.len(), 1);
        assert!(p2.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        // The reconciliation merged the store frontier into p2's observed
        // clock: its next stamp names p1's publication as a parent.
        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("mouse", "prot2", "ligase"),
            p(2),
        )])
        .unwrap();
        p2.publish(&store).unwrap();
        let frontier = store.causal_frontier();
        assert_eq!(frontier.seq_of(p(1)), Some(1));
        assert_eq!(frontier.seq_of(p(2)), Some(1));
    }

    #[test]
    fn offline_publications_buffer_and_rejoin_delivers_them() {
        let (store, mut p1, mut p2) = setup_pair();
        store.enable_causal_mode().unwrap();
        p1.go_offline();
        assert!(p1.is_offline());
        for (prot, f) in [("prot1", "immune"), ("prot2", "ligase")] {
            p1.execute_transaction(vec![Update::insert("Function", func("rat", prot, f), p(1))])
                .unwrap();
            assert_eq!(p1.publish(&store).unwrap(), None, "offline publish buffers");
        }
        // Both batches are stamped, the second chaining on the first; the
        // store has seen none of it and reconciliation is refused.
        let buffered = p1.buffered_publications();
        assert_eq!(buffered.len(), 2);
        assert_eq!(buffered[0].0.id(), orchestra_model::StampId::new(p(1), 1));
        assert_eq!(buffered[1].0.id(), orchestra_model::StampId::new(p(1), 2));
        assert!(buffered[1].0.parents.covers(buffered[0].0.id()));
        assert!(store.causal_frontier().is_empty());
        let err = p1.reconcile(&store).unwrap_err();
        assert!(err.to_string().contains("offline"), "got {err}");

        let epochs = p1.rejoin(&store).unwrap();
        assert_eq!(epochs, vec![orchestra_model::Epoch(1), orchestra_model::Epoch(2)]);
        assert!(!p1.is_offline());
        assert!(p1.buffered_publications().is_empty());
        assert_eq!(store.causal_frontier().seq_of(p(1)), Some(2));

        let report = p2.publish_and_reconcile(&store).unwrap();
        assert_eq!(report.accepted.len(), 2);
        // The rejoined participant still prefers its own (already applied)
        // versions on its next reconciliation.
        p1.reconcile(&store).unwrap();
        assert_eq!(p1.instance().total_tuples(), 2);
    }

    #[test]
    fn rejoin_on_a_scalar_store_keeps_the_buffer_and_stays_offline() {
        let (store, mut p1, _) = setup_pair();
        p1.go_offline();
        p1.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(1),
        )])
        .unwrap();
        p1.publish(&store).unwrap();
        // The store is not in causal mode: the stamped batch is refused, the
        // buffer survives, the participant stays offline for a retry.
        assert!(p1.rejoin(&store).is_err());
        assert!(p1.is_offline());
        assert_eq!(p1.buffered_publications().len(), 1);
        store.enable_causal_mode().unwrap();
        assert_eq!(p1.rejoin(&store).unwrap(), vec![orchestra_model::Epoch(1)]);
        assert!(!p1.is_offline());
    }

    #[test]
    fn checkpoint_rebuild_survives_converged_pruning() {
        use orchestra_storage::RetentionPolicy;
        let (store, mut p1, mut p2) = setup_pair();
        // Superseded history — an insert later deleted — is what
        // `ConvergedOnly` pruning can actually drop (still-live effects stay
        // pinned), and exactly what a checkpoint-less rebuild would need.
        let step = |p1: &mut Participant, p2: &mut Participant, update: Update| {
            p1.execute_transaction(vec![update]).unwrap();
            p1.publish_and_reconcile(&store).unwrap();
            p2.reconcile(&store).unwrap();
        };
        step(&mut p1, &mut p2, Update::insert("Function", func("rat", "prot1", "v1"), p(1)));
        step(&mut p1, &mut p2, Update::delete("Function", func("rat", "prot1", "v1"), p(1)));
        step(&mut p1, &mut p2, Update::insert("Function", func("rat", "prot1", "v2"), p(1)));

        // A checkpoint with unpublished local transactions is refused.
        p1.execute_transaction(vec![Update::insert("Function", func("cow", "prot3", "x"), p(1))])
            .unwrap();
        assert!(p1.checkpoint_to_store(&store).is_err());
        p1.publish_and_reconcile(&store).unwrap();
        p2.reconcile(&store).unwrap();
        p1.checkpoint_to_store(&store).unwrap();

        // One more accepted unit after the checkpoint: the rebuild must
        // apply it on top of the checkpointed prefix.
        step(&mut p1, &mut p2, Update::insert("Function", func("cow", "prot4", "y"), p(1)));

        // Prune everything converged: the superseded insert/delete pair
        // leaves the log for good.
        store.catalog().close_membership().unwrap();
        store.catalog().set_retention(RetentionPolicy::ConvergedOnly);
        let report = store.catalog().prune_to_horizon().unwrap();
        assert!(report.pruned_log_entries > 0, "prune must drop history: {report:?}");

        let rebuilt = Participant::rebuild_from_store(
            bioinformatics_schema(),
            ParticipantConfig::new(p1.policy().clone()),
            &store,
        )
        .unwrap();
        assert_eq!(
            rebuilt.instance().relation_contents("Function"),
            p1.instance().relation_contents("Function"),
            "checkpointed rebuild must reproduce the live instance"
        );
        assert_eq!(rebuilt.pending_publications().len(), 0);
        // The next local transaction id continues where the live
        // participant left off (no id reuse after recovery).
        let id = rebuilt.clone().execute_transaction(vec![Update::insert(
            "Function",
            func("cow", "prot5", "z"),
            p(1),
        )]);
        assert_eq!(id.unwrap().local, 5);
    }

    #[test]
    fn conflict_resolution_round_trip() {
        let schema = bioinformatics_schema();
        let store = CentralStore::new(schema.clone());
        // p1 trusts p2 and p3 equally; p2 and p3 trust nobody.
        let policy1 = TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32);
        let policy2 = TrustPolicy::new(p(2));
        let policy3 = TrustPolicy::new(p(3));
        store.register_participant(policy1.clone());
        store.register_participant(policy2.clone());
        store.register_participant(policy3.clone());
        let mut p1 = Participant::new(schema.clone(), ParticipantConfig::new(policy1));
        let mut p2 = Participant::new(schema.clone(), ParticipantConfig::new(policy2));
        let mut p3 = Participant::new(schema, ParticipantConfig::new(policy3));

        p2.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "cell-resp"),
            p(2),
        )])
        .unwrap();
        p2.publish_and_reconcile(&store).unwrap();
        p3.execute_transaction(vec![Update::insert(
            "Function",
            func("rat", "prot1", "immune"),
            p(3),
        )])
        .unwrap();
        p3.publish_and_reconcile(&store).unwrap();

        let report = p1.publish_and_reconcile(&store).unwrap();
        assert_eq!(report.deferred.len(), 2);
        assert_eq!(p1.deferred_conflicts().len(), 1);

        // Resolve in favour of p3's value.
        let group = &p1.deferred_conflicts()[0];
        let key = group.key.clone();
        let idx = group
            .options
            .iter()
            .position(|o| o.transactions.iter().any(|t| t.participant == p(3)))
            .unwrap();
        let resolution = p1
            .resolve_conflicts(&store, &[ResolutionChoice { group: key, chosen_option: Some(idx) }])
            .unwrap();
        assert_eq!(resolution.newly_accepted.len(), 1);
        assert_eq!(resolution.newly_rejected.len(), 1);
        assert!(resolution.still_deferred.is_empty());
        assert!(p1.instance().contains_tuple_exact("Function", &func("rat", "prot1", "immune")));
        assert!(p1.deferred_conflicts().is_empty());
    }
}
