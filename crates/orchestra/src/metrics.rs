//! Evaluation metrics from Section 6 of the paper.
//!
//! The central quality metric is the *state ratio*: the average, over every
//! key present at any participant, of the number of distinct values the
//! participants hold for that key — counting "no value" as a value. It ranges
//! from 1 (all participants have exactly the same state) up to the number of
//! participants (every participant disagrees on every key); lower is better,
//! indicating more shared data.

use orchestra_model::{KeyValue, Tuple};
use orchestra_storage::Database;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// Computes the state ratio over a single relation.
///
/// For every key present in at least one instance, count the number of
/// distinct states among the participants — a state is either the tuple held
/// under that key or "absent" — and average over the keys. An empty key
/// population yields a ratio of 1.0 (all instances identical because all are
/// empty).
pub fn state_ratio_for_relation(instances: &[&Database], relation: &str) -> f64 {
    if instances.is_empty() {
        return 1.0;
    }
    // Union of keys across all instances.
    let mut keys: BTreeSet<KeyValue> = BTreeSet::new();
    let mut per_instance: Vec<FxHashMap<KeyValue, Tuple>> = Vec::with_capacity(instances.len());
    for db in instances {
        let contents = db.relation_contents(relation);
        let mut map = FxHashMap::default();
        for (k, v) in contents {
            keys.insert(k.clone());
            map.insert(k, v);
        }
        per_instance.push(map);
    }
    if keys.is_empty() {
        return 1.0;
    }
    let mut total_distinct = 0usize;
    for key in &keys {
        let mut distinct: FxHashSet<Option<&Tuple>> = FxHashSet::default();
        for map in &per_instance {
            distinct.insert(map.get(key));
        }
        total_distinct += distinct.len();
    }
    total_distinct as f64 / keys.len() as f64
}

/// Computes the state ratio averaged over every relation of the schema that
/// holds at least one tuple at any participant.
pub fn state_ratio(instances: &[&Database]) -> f64 {
    let Some(first) = instances.first() else { return 1.0 };
    let mut ratios = Vec::new();
    for relation in first.schema().relation_names() {
        let populated = instances.iter().any(|db| !db.relation_contents(relation).is_empty());
        if populated {
            ratios.push(state_ratio_for_relation(instances, relation));
        }
    }
    if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{ParticipantId, Update};

    fn db_with(rows: &[(&str, &str, &str)]) -> Database {
        let mut db = Database::new(bioinformatics_schema());
        for (org, prot, f) in rows {
            db.apply_update(&Update::insert(
                "Function",
                Tuple::of_text(&[org, prot, f]),
                ParticipantId(1),
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn identical_instances_have_ratio_one() {
        let a = db_with(&[("rat", "prot1", "immune"), ("mouse", "prot2", "cell-resp")]);
        let b = a.clone();
        let c = a.clone();
        let ratio = state_ratio_for_relation(&[&a, &b, &c], "Function");
        assert!((ratio - 1.0).abs() < 1e-9);
        assert!((state_ratio(&[&a, &b, &c]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instances_have_ratio_one() {
        let a = Database::new(bioinformatics_schema());
        let b = Database::new(bioinformatics_schema());
        assert!((state_ratio_for_relation(&[&a, &b], "Function") - 1.0).abs() < 1e-9);
        assert!((state_ratio(&[&a, &b]) - 1.0).abs() < 1e-9);
        assert!((state_ratio(&[]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disagreeing_values_raise_the_ratio() {
        let a = db_with(&[("rat", "prot1", "immune")]);
        let b = db_with(&[("rat", "prot1", "cell-resp")]);
        // Two participants, one key, two distinct values: ratio 2.
        let ratio = state_ratio_for_relation(&[&a, &b], "Function");
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_values_count_as_a_distinct_state() {
        let a = db_with(&[("rat", "prot1", "immune")]);
        let b = Database::new(bioinformatics_schema());
        // One has the key, one lacks it: two distinct states.
        let ratio = state_ratio_for_relation(&[&a, &b], "Function");
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_averages_over_keys() {
        // Key 1: both agree (1 distinct). Key 2: disagree (2 distinct).
        let a = db_with(&[("rat", "prot1", "immune"), ("mouse", "prot2", "x")]);
        let b = db_with(&[("rat", "prot1", "immune"), ("mouse", "prot2", "y")]);
        let ratio = state_ratio_for_relation(&[&a, &b], "Function");
        assert!((ratio - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_is_bounded_by_participant_count() {
        let a = db_with(&[("rat", "prot1", "v1")]);
        let b = db_with(&[("rat", "prot1", "v2")]);
        let c = db_with(&[("rat", "prot1", "v3")]);
        let d = db_with(&[("rat", "prot1", "v4")]);
        let ratio = state_ratio_for_relation(&[&a, &b, &c, &d], "Function");
        assert!((ratio - 4.0).abs() < 1e-9);
        assert!(ratio <= 4.0);
    }

    #[test]
    fn overall_ratio_ignores_unpopulated_relations() {
        let a = db_with(&[("rat", "prot1", "v1")]);
        let b = db_with(&[("rat", "prot1", "v1")]);
        // XRef is empty everywhere and must not drag the average.
        assert!((state_ratio(&[&a, &b]) - 1.0).abs() < 1e-9);
    }
}
