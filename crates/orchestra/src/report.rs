//! Reports returned by participant operations: reconciliation outcomes,
//! conflict-resolution outcomes and timing breakdowns.

use orchestra_model::{Epoch, ReconciliationId, TransactionId};
use orchestra_recon::ConflictGroup;
use std::time::Duration;

/// Time spent during one operation, split the way the paper's Figures 10 and
/// 12 report it: time attributable to the update store (including, for the
/// distributed store, simulated network latency) versus time spent running
/// the local reconciliation algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingBreakdown {
    /// Store-side time (catalogue computation plus simulated network
    /// latency).
    pub store: Duration,
    /// Local time (the client-centric reconciliation algorithm and local
    /// instance updates).
    pub local: Duration,
}

impl TimingBreakdown {
    /// Total elapsed time.
    pub fn total(&self) -> Duration {
        self.store + self.local
    }

    /// Adds another breakdown into this one.
    pub fn accumulate(&mut self, other: TimingBreakdown) {
        self.store += other.store;
        self.local += other.local;
    }
}

/// The report of one `publish` + `reconcile` cycle of a participant.
#[derive(Debug, Clone, Default)]
pub struct ReconcileReport {
    /// The reconciliation number assigned by the update store.
    pub recno: ReconciliationId,
    /// The epoch the reconciliation was pinned to.
    pub epoch: Epoch,
    /// Root transactions accepted and applied.
    pub accepted: Vec<TransactionId>,
    /// Root transactions rejected.
    pub rejected: Vec<TransactionId>,
    /// Root transactions deferred pending user resolution.
    pub deferred: Vec<TransactionId>,
    /// Conflict groups currently recorded in the participant's soft state.
    pub conflict_groups: Vec<ConflictGroup>,
    /// Timing breakdown of the operation.
    pub timing: TimingBreakdown,
}

impl ReconcileReport {
    /// Number of candidate transactions that were decided or deferred.
    pub fn considered(&self) -> usize {
        self.accepted.len() + self.rejected.len() + self.deferred.len()
    }
}

/// The report of a conflict-resolution operation.
#[derive(Debug, Clone, Default)]
pub struct ResolutionReport {
    /// Transactions rejected because the user did not choose their option.
    pub newly_rejected: Vec<TransactionId>,
    /// Transactions accepted after their conflicts were resolved.
    pub newly_accepted: Vec<TransactionId>,
    /// Transactions that remain deferred (still conflicting).
    pub still_deferred: Vec<TransactionId>,
    /// Timing breakdown of the operation.
    pub timing: TimingBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_breakdown_totals_and_accumulates() {
        let mut t =
            TimingBreakdown { store: Duration::from_millis(10), local: Duration::from_millis(5) };
        assert_eq!(t.total(), Duration::from_millis(15));
        t.accumulate(TimingBreakdown {
            store: Duration::from_millis(1),
            local: Duration::from_millis(2),
        });
        assert_eq!(t.store, Duration::from_millis(11));
        assert_eq!(t.local, Duration::from_millis(7));
    }

    #[test]
    fn considered_counts_every_decision() {
        let report = ReconcileReport {
            accepted: vec![TransactionId::new(orchestra_model::ParticipantId(1), 0)],
            rejected: vec![TransactionId::new(orchestra_model::ParticipantId(2), 0)],
            deferred: vec![
                TransactionId::new(orchestra_model::ParticipantId(3), 0),
                TransactionId::new(orchestra_model::ParticipantId(3), 1),
            ],
            ..Default::default()
        };
        assert_eq!(report.considered(), 4);
    }
}
