//! A confederation of participants sharing one update store.

use crate::metrics;
use crate::participant::{Participant, ParticipantConfig};
use crate::report::ReconcileReport;
use orchestra_model::{ParticipantId, Schema, TransactionId, Update};
use orchestra_obs::Obs;
use orchestra_storage::{Database, Result, StorageError};
use orchestra_store::UpdateStore;
use std::collections::BTreeMap;

fn unknown_participant(id: ParticipantId) -> StorageError {
    StorageError::Model(orchestra_model::ModelError::InvalidTransaction(format!(
        "unknown participant {id}"
    )))
}

fn duplicate_participant(id: ParticipantId) -> StorageError {
    StorageError::Model(orchestra_model::ModelError::InvalidTransaction(format!(
        "participant {id} is already registered"
    )))
}

/// A collaborative data sharing system: a set of participants, the schema
/// they share, and the update store through which they exchange published
/// transactions.
///
/// The system is a convenience driver — every operation it offers is also
/// available directly on [`Participant`] — but it keeps simulations and
/// examples short and enforces that every participant is registered with the
/// store before use. Because the store is accessed through a shared
/// reference, the system also offers *parallel* drivers
/// ([`CdssSystem::reconcile_all_parallel`],
/// [`CdssSystem::reconcile_each_parallel`]) that run one thread per
/// participant against the one shared store.
#[derive(Debug)]
pub struct CdssSystem<S: UpdateStore> {
    schema: Schema,
    store: S,
    participants: BTreeMap<ParticipantId, Participant>,
    /// The shared observability sink the system's drivers report into:
    /// round-phase spans, obs-backed simulated networks, and obs-injected
    /// service configs all come from here. Defaults to a disabled tracer
    /// with a private registry.
    obs: Obs,
}

impl<S: UpdateStore> CdssSystem<S> {
    /// Creates a system over the given schema and update store.
    pub fn new(schema: Schema, store: S) -> Self {
        CdssSystem { schema, store, participants: BTreeMap::new(), obs: Obs::disabled() }
    }

    /// Points the system — and every participant, current and future — at a
    /// shared observability sink. The service and fabric drivers bind the
    /// sink's tracer to their virtual clock, so captured traces are stamped
    /// in deterministic simulated time.
    pub fn set_observability(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        for participant in self.participants.values_mut() {
            participant.set_observability(obs);
        }
    }

    /// The system's observability sink.
    pub fn observability(&self) -> &Obs {
        &self.obs
    }

    /// The schema shared by all participants.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Access to the update store (e.g. to inspect statistics).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the update store. Rarely needed now that the store
    /// API is `&self`; kept for store-specific configuration hooks.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Adds a participant, registering its trust policy with the update
    /// store, and returns its identity. Registering the same
    /// [`ParticipantId`] twice is an error — the first registration stays
    /// intact (it is *not* silently overwritten).
    pub fn add_participant(&mut self, config: ParticipantConfig) -> Result<ParticipantId> {
        let id = config.policy.owner();
        if self.participants.contains_key(&id) {
            return Err(duplicate_participant(id));
        }
        self.store.register_participant(config.policy.clone());
        let mut participant = Participant::new(self.schema.clone(), config);
        participant.set_observability(&self.obs);
        self.participants.insert(id, participant);
        Ok(id)
    }

    /// Adopts an already-built participant — typically one reconstructed
    /// with [`Participant::rebuild_from_store`] after a crash. Unlike
    /// [`CdssSystem::add_participant`] this does **not** register the trust
    /// policy with the store: a recovered store already holds it (and its
    /// relevance index), and re-registering would needlessly rebuild the
    /// index and append a duplicate record to a durable store's log.
    /// Adopting an id that is already present is an error.
    pub fn adopt_participant(&mut self, mut participant: Participant) -> Result<ParticipantId> {
        let id = participant.id();
        if self.participants.contains_key(&id) {
            return Err(duplicate_participant(id));
        }
        participant.set_observability(&self.obs);
        self.participants.insert(id, participant);
        Ok(id)
    }

    /// Retires a participant: removes it from the confederation and tells
    /// the store, which keeps its durable decision record (decisions are
    /// final) but stops offering it candidates and — crucially for
    /// retention — stops letting it pin the convergence horizon. A laggard
    /// that will never reconcile again must be retired for `ConvergedOnly`
    /// pruning to make progress. Returns the removed participant, whose
    /// local instance the caller may archive.
    pub fn retire_participant(&mut self, id: ParticipantId) -> Result<Participant> {
        if !self.participants.contains_key(&id) {
            return Err(unknown_participant(id));
        }
        self.store.retire_participant(id)?;
        Ok(self.participants.remove(&id).expect("checked above"))
    }

    /// The identities of all participants, in order.
    pub fn participant_ids(&self) -> Vec<ParticipantId> {
        self.participants.keys().copied().collect()
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Returns true if the system has no participants.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// A participant by id.
    pub fn participant(&self, id: ParticipantId) -> Option<&Participant> {
        self.participants.get(&id)
    }

    /// Mutable access to a participant by id.
    pub fn participant_mut(&mut self, id: ParticipantId) -> Option<&mut Participant> {
        self.participants.get_mut(&id)
    }

    fn require(&mut self, id: ParticipantId) -> Result<&mut Participant> {
        self.participants.get_mut(&id).ok_or_else(|| unknown_participant(id))
    }

    /// Split borrow of the store and one participant, so participant methods
    /// that take the store can be called through the system.
    fn store_and_participant(&mut self, id: ParticipantId) -> Result<(&S, &mut Participant)> {
        let store = &self.store;
        let participant = self.participants.get_mut(&id).ok_or_else(|| unknown_participant(id))?;
        Ok((store, participant))
    }

    /// Executes a transaction at a participant (applies it locally and queues
    /// it for the next publication).
    pub fn execute(&mut self, id: ParticipantId, updates: Vec<Update>) -> Result<TransactionId> {
        self.require(id)?.execute_transaction(updates)
    }

    /// Publishes a participant's pending transactions without reconciling
    /// (interleaved publish/reconcile schedules publish far more often than
    /// they reconcile). Returns the epoch assigned, or `None` if nothing was
    /// pending.
    pub fn publish(&mut self, id: ParticipantId) -> Result<Option<orchestra_model::Epoch>> {
        let (store, participant) = self.store_and_participant(id)?;
        participant.publish(store)
    }

    /// Publishes a participant's pending transactions and reconciles it
    /// against everything published so far.
    pub fn publish_and_reconcile(&mut self, id: ParticipantId) -> Result<ReconcileReport> {
        let (store, participant) = self.store_and_participant(id)?;
        participant.publish_and_reconcile(store)
    }

    /// Reconciles a participant without publishing.
    pub fn reconcile(&mut self, id: ParticipantId) -> Result<ReconcileReport> {
        let (store, participant) = self.store_and_participant(id)?;
        participant.reconcile(store)
    }

    /// Reconciles the given participants one after another (the serial
    /// driver the parallel one is benchmarked against). Every id is
    /// validated *before* any reconciliation commits, so an unknown id
    /// cannot leave a partially applied wave behind; duplicate ids collapse
    /// to one reconciliation. Reports come back in id order.
    pub fn reconcile_each(
        &mut self,
        ids: &[ParticipantId],
    ) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        if let Some(missing) = ids.iter().find(|id| !self.participants.contains_key(id)) {
            return Err(unknown_participant(*missing));
        }
        let store = &self.store;
        let mut out = Vec::with_capacity(ids.len());
        for (id, participant) in self.participants.iter_mut() {
            if !ids.contains(id) {
                continue;
            }
            out.push((*id, participant.reconcile(store)?));
        }
        Ok(out)
    }

    /// Reconciles every participant sequentially, in id order.
    pub fn reconcile_all(&mut self) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        let ids = self.participant_ids();
        self.reconcile_each(&ids)
    }

    /// Resolves deferred conflicts at a participant according to the given
    /// choices (see [`Participant::resolve_conflicts`]).
    pub fn resolve_conflicts(
        &mut self,
        id: ParticipantId,
        choices: &[orchestra_recon::ResolutionChoice],
    ) -> Result<crate::report::ResolutionReport> {
        let (store, participant) = self.store_and_participant(id)?;
        participant.resolve_conflicts(store, choices)
    }

    /// Switches the shared store to causal mode: participants allocate their
    /// own [`orchestra_model::CausalStamp`]s when publishing and can publish
    /// while [partitioned](CdssSystem::partition). Idempotent and one-way.
    pub fn enable_causal_mode(&self) -> Result<()> {
        self.store.enable_causal_mode()
    }

    /// Partitions the given participants from the store: until
    /// [`CdssSystem::heal`] they buffer causally stamped publications
    /// locally and refuse to reconcile. Every id is validated before any
    /// participant is taken offline.
    pub fn partition(&mut self, ids: &[ParticipantId]) -> Result<()> {
        if let Some(missing) = ids.iter().find(|id| !self.participants.contains_key(id)) {
            return Err(unknown_participant(*missing));
        }
        for id in ids {
            self.participants.get_mut(id).expect("validated above").go_offline();
        }
        Ok(())
    }

    /// The participants currently partitioned from the store, in id order.
    pub fn offline_ids(&self) -> Vec<ParticipantId> {
        self.participants
            .iter()
            .filter(|(_, participant)| participant.is_offline())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Heals the partition: every offline participant rejoins in id order,
    /// draining its buffered publications into the store. Returns, per
    /// rejoined participant, the arrival epochs its buffered batches were
    /// assigned. A failing rejoin leaves that participant (and any not yet
    /// processed) offline with its buffer intact.
    pub fn heal(&mut self) -> Result<Vec<(ParticipantId, Vec<orchestra_model::Epoch>)>> {
        let store = &self.store;
        let mut out = Vec::new();
        for (id, participant) in self.participants.iter_mut() {
            if participant.is_offline() {
                out.push((*id, participant.rejoin(store)?));
            }
        }
        Ok(out)
    }

    /// Records a participant's instance checkpoint at the store (see
    /// [`Participant::checkpoint_to_store`]).
    pub fn checkpoint_participant(&mut self, id: ParticipantId) -> Result<()> {
        let (store, participant) = self.store_and_participant(id)?;
        participant.checkpoint_to_store(store)
    }

    /// The current database instances of every participant, in id order.
    pub fn instances(&self) -> Vec<&Database> {
        self.participants.values().map(Participant::instance).collect()
    }

    /// The state ratio (Section 6) across all participants, averaged over the
    /// populated relations of the schema.
    pub fn state_ratio(&self) -> f64 {
        metrics::state_ratio(&self.instances())
    }

    /// The state ratio restricted to one relation.
    pub fn state_ratio_for(&self, relation: &str) -> f64 {
        metrics::state_ratio_for_relation(&self.instances(), relation)
    }
}

impl<S: UpdateStore + Sync> CdssSystem<S> {
    /// Reconciles the given participants **in parallel**: one thread per
    /// participant, all driving reconciliation sessions against the one
    /// shared store (`&S`). The store's sharded locking lets the sessions
    /// proceed concurrently; each participant's local engine work runs on
    /// its own thread.
    ///
    /// With no publish interleaved, the decisions are identical to
    /// [`CdssSystem::reconcile_each`] over the same ids: a session's
    /// candidates depend only on the published log (pinned to the stable
    /// epoch) and the reconciler's *own* decision record, never on the
    /// concurrent decisions of other participants. The equivalence proptest
    /// in `tests/parallel_driver.rs` pins this down. Reports come back in id
    /// order.
    pub fn reconcile_each_parallel(
        &mut self,
        ids: &[ParticipantId],
    ) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        if let Some(missing) = ids.iter().find(|id| !self.participants.contains_key(id)) {
            return Err(unknown_participant(*missing));
        }
        let store = &self.store;
        let mut results: Vec<(ParticipantId, Result<ReconcileReport>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .participants
                    .iter_mut()
                    .filter(|(id, _)| ids.contains(id))
                    .map(|(id, participant)| {
                        let id = *id;
                        scope.spawn(move || (id, participant.reconcile(store)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("reconcile thread panicked")).collect()
            });
        results.sort_by_key(|(id, _)| *id);
        results.into_iter().map(|(id, r)| r.map(|report| (id, report))).collect()
    }

    /// Reconciles every participant in parallel (see
    /// [`CdssSystem::reconcile_each_parallel`]).
    pub fn reconcile_all_parallel(&mut self) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        let ids = self.participant_ids();
        self.reconcile_each_parallel(&ids)
    }
}

/// What one service-driven round produced: reports in id order, per-session
/// virtual latencies, and the service/network counters of the round.
#[derive(Debug)]
pub struct ServiceDriveReport {
    /// Reconciliation reports, in participant-id order.
    pub results: Vec<(ParticipantId, ReconcileReport)>,
    /// Epochs assigned to the round's publishes, in publish order (`None`
    /// when a participant had nothing pending).
    pub published: Vec<(ParticipantId, Option<orchestra_model::Epoch>)>,
    /// Virtual end-to-end session latency per reconciling participant
    /// (begin to commit, *including* queueing at the service), in
    /// microseconds, in participant-id order.
    pub latencies_us: Vec<u64>,
    /// Service counters accumulated over the round's phases.
    pub stats: orchestra_store::ServiceStats,
    /// Frame traffic charged to the simulated network.
    pub net: orchestra_net::NetworkStats,
    /// Virtual time consumed by the round, in microseconds.
    pub virtual_elapsed_us: u64,
}

impl<S: UpdateStore> CdssSystem<S> {
    /// Drives one confederation round through the [`StoreService`]: the
    /// `publish_ids` participants publish their pending batches (sequential,
    /// so epoch assignment is deterministic), then the `reconcile_ids`
    /// participants all reconcile **concurrently** — thousands of framed
    /// sessions multiplexed onto the service's bounded worker pool on a
    /// single OS thread, with latency modelled in virtual time.
    ///
    /// Decisions are identical to [`CdssSystem::reconcile_each`] /
    /// [`CdssSystem::reconcile_each_parallel`] over the same schedule: the
    /// service serialises store calls per participant, and a session's
    /// outcome depends only on the published log and the reconciler's own
    /// record.
    ///
    /// [`StoreService`]: orchestra_store::StoreService
    pub fn run_service_round(
        &mut self,
        publish_ids: &[ParticipantId],
        reconcile_ids: &[ParticipantId],
        config: &orchestra_store::ServiceConfig,
    ) -> Result<ServiceDriveReport> {
        use orchestra_rt::{LocalExecutor, VirtualClock};
        use orchestra_store::StoreService;
        use std::cell::RefCell;
        use std::rc::Rc;

        if let Some(missing) =
            publish_ids.iter().chain(reconcile_ids).find(|id| !self.participants.contains_key(id))
        {
            return Err(unknown_participant(*missing));
        }
        let store = &self.store;
        let clock = VirtualClock::new();
        // Trace in deterministic simulated time, and report the round's
        // frame traffic and service counters into the shared sink.
        self.obs.tracer.bind_virtual(clock.shared_now());
        let net = Rc::new(orchestra_net::SimNetwork::with_observability(
            vec![StoreService::server_node()],
            std::time::Duration::from_micros(orchestra_net::SimNetwork::PAPER_LATENCY_US),
            &self.obs.metrics,
        ));
        let config = {
            let mut config = config.clone();
            config.obs = self.obs.clone();
            config
        };
        let mut stats = orchestra_store::ServiceStats::default();

        // Publish phase: one task, sequential awaits — the epoch order is
        // the id order, exactly as the in-process drivers produce it.
        let mut published = Vec::new();
        if !publish_ids.is_empty() {
            let _phase = self
                .obs
                .tracer
                .span("service.publish_phase", &[("publishers", publish_ids.len() as u64)]);
            let mut ex = LocalExecutor::new(clock.clone());
            let service = StoreService::start(
                store,
                &config,
                &mut ex,
                Rc::clone(&net) as Rc<dyn orchestra_net::Transport>,
            );
            let outcomes = Rc::new(RefCell::new(Vec::new()));
            let mut publishers: Vec<_> = self
                .participants
                .iter_mut()
                .filter(|(id, _)| publish_ids.contains(id))
                .map(|(id, participant)| (*id, participant, service.client_for(*id)))
                .collect();
            let task_outcomes = Rc::clone(&outcomes);
            ex.spawn(async move {
                for (id, participant, client) in &mut publishers {
                    let result = participant.publish_service(store, client).await;
                    task_outcomes.borrow_mut().push((*id, result));
                }
            });
            ex.run();
            service.shutdown();
            if ex.run() != 0 {
                return Err(StorageError::Session(
                    "service publish phase left tasks blocked".to_string(),
                ));
            }
            stats.absorb(service.stats());
            for (id, result) in
                Rc::try_unwrap(outcomes).expect("publish tasks finished").into_inner()
            {
                published.push((id, result?));
            }
        }

        // Reconcile phase: one client task per participant, all in flight at
        // once against the worker pool.
        let mut outcomes = {
            let _phase = self
                .obs
                .tracer
                .span("service.reconcile_phase", &[("reconcilers", reconcile_ids.len() as u64)]);
            let mut ex = LocalExecutor::new(clock.clone());
            let service = StoreService::start(
                store,
                &config,
                &mut ex,
                Rc::clone(&net) as Rc<dyn orchestra_net::Transport>,
            );
            let outcomes = Rc::new(RefCell::new(Vec::new()));
            for (id, participant) in
                self.participants.iter_mut().filter(|(id, _)| reconcile_ids.contains(id))
            {
                let id = *id;
                let client = service.client_for(id);
                let task_clock = clock.clone();
                let task_outcomes = Rc::clone(&outcomes);
                ex.spawn(async move {
                    let start_us = task_clock.now_us();
                    let result = participant.reconcile_service(store, &client).await;
                    let latency_us = task_clock.now_us() - start_us;
                    task_outcomes.borrow_mut().push((id, result, latency_us));
                });
            }
            ex.run();
            service.shutdown();
            if ex.run() != 0 {
                return Err(StorageError::Session(
                    "service reconcile phase left tasks blocked".to_string(),
                ));
            }
            stats.absorb(service.stats());
            Rc::try_unwrap(outcomes).expect("reconcile tasks finished").into_inner()
        };

        outcomes.sort_by_key(|(id, _, _)| *id);
        let mut results = Vec::with_capacity(outcomes.len());
        let mut latencies_us = Vec::with_capacity(outcomes.len());
        for (id, result, latency_us) in outcomes {
            results.push((id, result?));
            latencies_us.push(latency_us);
        }
        Ok(ServiceDriveReport {
            results,
            published,
            latencies_us,
            stats,
            net: net.stats(),
            virtual_elapsed_us: clock.now_us(),
        })
    }

    /// Reconciles the given participants through the store service (no
    /// publish phase; see [`CdssSystem::run_service_round`]).
    pub fn reconcile_each_service(
        &mut self,
        ids: &[ParticipantId],
        config: &orchestra_store::ServiceConfig,
    ) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        Ok(self.run_service_round(&[], ids, config)?.results)
    }

    /// Reconciles every participant through the store service (see
    /// [`CdssSystem::run_service_round`]).
    pub fn reconcile_all_service(
        &mut self,
        config: &orchestra_store::ServiceConfig,
    ) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        let ids = self.participant_ids();
        self.reconcile_each_service(&ids, config)
    }
}

/// What one fabric-driven round produced: reports in id order, per-session
/// virtual latencies, and per-shard service/traffic counters.
#[derive(Debug)]
pub struct FabricDriveReport {
    /// Reconciliation reports, in participant-id order.
    pub results: Vec<(ParticipantId, ReconcileReport)>,
    /// Epochs assigned to the round's publishes, in publish order (`None`
    /// when a participant had nothing pending).
    pub published: Vec<(ParticipantId, Option<orchestra_model::Epoch>)>,
    /// Virtual end-to-end session latency per reconciling participant
    /// (begin at the first shard to commit at the last, *including* queueing
    /// at the shard services), in microseconds, in participant-id order.
    pub latencies_us: Vec<u64>,
    /// Per-shard service counters accumulated over the round's phases, in
    /// shard order.
    pub shard_stats: Vec<orchestra_store::ServiceStats>,
    /// Frame traffic charged to the simulated network (all shards).
    pub net: orchestra_net::NetworkStats,
    /// Request frames that arrived at each shard's server node, in shard
    /// order — the fabric's traffic skew.
    pub shard_frames: Vec<u64>,
    /// Virtual time consumed by the round, in microseconds.
    pub virtual_elapsed_us: u64,
}

impl CdssSystem<orchestra_store::StoreFabric> {
    /// Drives one confederation round through a **sharded store fabric**:
    /// one [`StoreService`] per shard of the system's
    /// [`StoreFabric`], all on one simulated network. The `publish_ids`
    /// participants publish sequentially (primary at the home shard, pinned
    /// replicas everywhere else, so every shard logs the same global epoch
    /// order), then the `reconcile_ids` participants reconcile
    /// **concurrently**, each through a
    /// [`FabricClient`](orchestra_store::FabricClient) that merges one
    /// session per shard into a single candidate timeline.
    ///
    /// Decisions are identical to the sequential and single-service drivers
    /// over the same schedule — the `fabric_driver` integration tests prove
    /// it property-based.
    ///
    /// [`StoreService`]: orchestra_store::StoreService
    /// [`StoreFabric`]: orchestra_store::StoreFabric
    pub fn run_fabric_round(
        &mut self,
        publish_ids: &[ParticipantId],
        reconcile_ids: &[ParticipantId],
        config: &orchestra_store::FabricConfig,
    ) -> Result<FabricDriveReport> {
        use orchestra_net::Transport;
        use orchestra_rt::{LocalExecutor, VirtualClock};
        use orchestra_store::{FabricClient, StoreService};
        use std::cell::RefCell;
        use std::rc::Rc;

        if let Some(missing) =
            publish_ids.iter().chain(reconcile_ids).find(|id| !self.participants.contains_key(id))
        {
            return Err(unknown_participant(*missing));
        }
        let fabric = &self.store;
        let shards = fabric.router().shards();
        if shards != config.shards {
            return Err(StorageError::Session(format!(
                "fabric config speaks {} shards but the store fabric has {shards}",
                config.shards
            )));
        }
        let clock = VirtualClock::new();
        // Trace in deterministic simulated time, and report frame traffic
        // into the shared sink.
        self.obs.tracer.bind_virtual(clock.shared_now());
        let server_nodes: Vec<_> = (0..shards).map(StoreService::shard_server_node).collect();
        let net = Rc::new(orchestra_net::SimNetwork::with_observability(
            server_nodes,
            std::time::Duration::from_micros(orchestra_net::SimNetwork::PAPER_LATENCY_US),
            &self.obs.metrics,
        ));
        let mut shard_stats = vec![orchestra_store::ServiceStats::default(); shards];

        fn start_services<'a>(
            fabric: &'a orchestra_store::StoreFabric,
            config: &orchestra_store::FabricConfig,
            obs: &Obs,
            net: &Rc<orchestra_net::SimNetwork>,
            ex: &mut LocalExecutor<'a>,
        ) -> Vec<StoreService> {
            (0..fabric.router().shards())
                .map(|shard| {
                    // Each shard service reports under its own metric keys
                    // (`service.requests{shard=N}`) and stamps its trace
                    // events with the shard, so per-shard skew — the
                    // admission gate at shard 0 — is directly visible.
                    let mut service_config = config.service.clone();
                    service_config.obs = obs.clone();
                    service_config.obs_shard = Some(shard as u64);
                    StoreService::start_at(
                        fabric.shard(shard),
                        &service_config,
                        ex,
                        Rc::clone(net) as Rc<dyn Transport>,
                        StoreService::shard_server_node(shard),
                    )
                })
                .collect()
        }
        let fabric_client = |services: &[StoreService], id: ParticipantId| -> FabricClient {
            FabricClient::new(
                fabric.router(),
                services.iter().map(|service| service.client_for(id)).collect(),
            )
        };

        // Publish phase: one task, sequential awaits — every shard logs the
        // round's publishes in id order, so the pinned replica epochs always
        // match their primaries.
        let mut published = Vec::new();
        if !publish_ids.is_empty() {
            let _phase = self
                .obs
                .tracer
                .span("fabric.publish_phase", &[("publishers", publish_ids.len() as u64)]);
            let mut ex = LocalExecutor::new(clock.clone());
            let services = start_services(fabric, config, &self.obs, &net, &mut ex);
            let outcomes = Rc::new(RefCell::new(Vec::new()));
            let mut publishers: Vec<_> = self
                .participants
                .iter_mut()
                .filter(|(id, _)| publish_ids.contains(id))
                .map(|(id, participant)| (*id, participant, fabric_client(&services, *id)))
                .collect();
            let task_outcomes = Rc::clone(&outcomes);
            ex.spawn(async move {
                for (id, participant, client) in &mut publishers {
                    let result = participant.publish_service(fabric, client).await;
                    task_outcomes.borrow_mut().push((*id, result));
                }
            });
            ex.run();
            for service in &services {
                service.shutdown();
            }
            if ex.run() != 0 {
                return Err(StorageError::Session(
                    "fabric publish phase left tasks blocked".to_string(),
                ));
            }
            for (shard, service) in services.iter().enumerate() {
                shard_stats[shard].absorb(service.stats());
            }
            for (id, result) in
                Rc::try_unwrap(outcomes).expect("publish tasks finished").into_inner()
            {
                published.push((id, result?));
            }
        }

        // Reconcile phase: one client task per participant, each holding one
        // session per shard, all multiplexed onto the shard worker pools.
        let mut outcomes = {
            let _phase = self
                .obs
                .tracer
                .span("fabric.reconcile_phase", &[("reconcilers", reconcile_ids.len() as u64)]);
            let mut ex = LocalExecutor::new(clock.clone());
            let services = start_services(fabric, config, &self.obs, &net, &mut ex);
            let outcomes = Rc::new(RefCell::new(Vec::new()));
            for (id, participant) in
                self.participants.iter_mut().filter(|(id, _)| reconcile_ids.contains(id))
            {
                let id = *id;
                let client = fabric_client(&services, id);
                let task_clock = clock.clone();
                let task_outcomes = Rc::clone(&outcomes);
                ex.spawn(async move {
                    let start_us = task_clock.now_us();
                    let result = participant.reconcile_service(fabric, &client).await;
                    let latency_us = task_clock.now_us() - start_us;
                    task_outcomes.borrow_mut().push((id, result, latency_us));
                });
            }
            ex.run();
            for service in &services {
                service.shutdown();
            }
            if ex.run() != 0 {
                return Err(StorageError::Session(
                    "fabric reconcile phase left tasks blocked".to_string(),
                ));
            }
            for (shard, service) in services.iter().enumerate() {
                shard_stats[shard].absorb(service.stats());
            }
            Rc::try_unwrap(outcomes).expect("reconcile tasks finished").into_inner()
        };

        outcomes.sort_by_key(|(id, _, _)| *id);
        let mut results = Vec::with_capacity(outcomes.len());
        let mut latencies_us = Vec::with_capacity(outcomes.len());
        for (id, result, latency_us) in outcomes {
            results.push((id, result?));
            latencies_us.push(latency_us);
        }
        // Per-shard skew: every frame that arrived at a shard server was
        // either served (`requests`) or shed at admission
        // (`busy_rejections`), so the service counters reproduce the old
        // link-traffic derivation exactly — and expose the two components
        // separately in `shard_stats`.
        let shard_frames =
            shard_stats.iter().map(|stats| stats.requests + stats.busy_rejections).collect();
        Ok(FabricDriveReport {
            results,
            published,
            latencies_us,
            shard_stats,
            net: net.stats(),
            shard_frames,
            virtual_elapsed_us: clock.now_us(),
        })
    }

    /// Reconciles the given participants through the store fabric (no
    /// publish phase; see [`CdssSystem::run_fabric_round`]).
    pub fn reconcile_each_fabric(
        &mut self,
        ids: &[ParticipantId],
        config: &orchestra_store::FabricConfig,
    ) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        Ok(self.run_fabric_round(&[], ids, config)?.results)
    }

    /// Reconciles every participant through the store fabric (see
    /// [`CdssSystem::run_fabric_round`]).
    pub fn reconcile_all_fabric(
        &mut self,
        config: &orchestra_store::FabricConfig,
    ) -> Result<Vec<(ParticipantId, ReconcileReport)>> {
        let ids = self.participant_ids();
        self.reconcile_each_fabric(&ids, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_model::schema::bioinformatics_schema;
    use orchestra_model::{TrustPolicy, Tuple};
    use orchestra_store::CentralStore;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    fn fully_trusting_system(n: u32) -> CdssSystem<CentralStore> {
        let schema = bioinformatics_schema();
        let mut system = CdssSystem::new(schema.clone(), CentralStore::new(schema));
        for i in 1..=n {
            let mut policy = TrustPolicy::new(p(i));
            for j in 1..=n {
                if i != j {
                    policy = policy.trusting(p(j), 1u32);
                }
            }
            system.add_participant(ParticipantConfig::new(policy)).unwrap();
        }
        system
    }

    #[test]
    fn add_and_look_up_participants() {
        let system = fully_trusting_system(3);
        assert_eq!(system.len(), 3);
        assert!(!system.is_empty());
        assert_eq!(system.participant_ids(), vec![p(1), p(2), p(3)]);
        assert!(system.participant(p(2)).is_some());
        assert!(system.participant(p(9)).is_none());
    }

    #[test]
    fn duplicate_registration_is_rejected_not_overwritten() {
        let mut system = fully_trusting_system(2);
        // p1 executes a transaction so its participant state is observable.
        system
            .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        // Re-registering p1 (even with a different policy) must fail...
        let err =
            system.add_participant(ParticipantConfig::new(TrustPolicy::new(p(1)))).unwrap_err();
        assert!(err.to_string().contains("already registered"));
        // ...and the original participant state must be intact, not replaced
        // by a fresh empty participant.
        assert_eq!(system.len(), 2);
        assert_eq!(system.participant(p(1)).unwrap().pending_publications().len(), 1);
        assert_eq!(system.participant(p(1)).unwrap().policy().rules().len(), 1);
    }

    #[test]
    fn unknown_participants_are_reported() {
        let mut system = fully_trusting_system(1);
        assert!(system.execute(p(9), vec![]).is_err());
        assert!(system.publish_and_reconcile(p(9)).is_err());
        assert!(system.reconcile(p(9)).is_err());
        assert!(system.reconcile_each(&[p(9)]).is_err());
        assert!(system.reconcile_each_parallel(&[p(9)]).is_err());
    }

    #[test]
    fn retirement_removes_the_participant_everywhere() {
        let mut system = fully_trusting_system(3);
        system
            .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        system.publish_and_reconcile(p(1)).unwrap();
        let retired = system.retire_participant(p(3)).unwrap();
        assert_eq!(retired.id(), p(3));
        assert_eq!(system.len(), 2);
        assert_eq!(system.participant_ids(), vec![p(1), p(2)]);
        // The store forgot the registration (but not the decision record);
        // further driving of the retired id errors at the system.
        assert_eq!(system.store().catalog().participants(), vec![p(1), p(2)]);
        assert!(system.reconcile(p(3)).is_err());
        assert!(system.retire_participant(p(3)).is_err());
        assert!(system.retire_participant(p(9)).is_err());
        // The survivors keep working.
        system.publish_and_reconcile(p(2)).unwrap();
    }

    #[test]
    fn data_propagates_through_the_system() {
        let mut system = fully_trusting_system(3);
        system
            .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "immune"), p(1))])
            .unwrap();
        system.publish_and_reconcile(p(1)).unwrap();
        system.publish_and_reconcile(p(2)).unwrap();
        system.publish_and_reconcile(p(3)).unwrap();
        for id in system.participant_ids() {
            assert_eq!(system.participant(id).unwrap().instance().total_tuples(), 1);
        }
        assert!((system.state_ratio() - 1.0).abs() < 1e-9);
        assert!((system.state_ratio_for("Function") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_driver_matches_sequential_decisions() {
        let drive = |parallel: bool| {
            let mut system = fully_trusting_system(4);
            for i in 1..=4u32 {
                system
                    .execute(
                        p(i),
                        vec![Update::insert(
                            "Function",
                            func("human", &format!("prot{i}"), "dna-repair"),
                            p(i),
                        )],
                    )
                    .unwrap();
                system.publish(p(i)).unwrap();
            }
            let reports = if parallel {
                system.reconcile_all_parallel().unwrap()
            } else {
                system.reconcile_all().unwrap()
            };
            let accepted: Vec<(ParticipantId, usize)> =
                reports.iter().map(|(id, r)| (*id, r.accepted.len())).collect();
            (accepted, system.state_ratio_for("Function"))
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn service_driver_matches_sequential_decisions_and_serves_publishes() {
        let seed = |system: &mut CdssSystem<CentralStore>| {
            for i in 1..=4u32 {
                system
                    .execute(
                        p(i),
                        vec![Update::insert(
                            "Function",
                            func("human", &format!("prot{i}"), "dna-repair"),
                            p(i),
                        )],
                    )
                    .unwrap();
            }
        };
        // Sequential reference: publish in id order, then reconcile all.
        let mut reference = fully_trusting_system(4);
        seed(&mut reference);
        for i in 1..=4u32 {
            reference.publish(p(i)).unwrap();
        }
        let sequential = reference.reconcile_all().unwrap();

        // Service-driven: publishes AND reconciliations travel as frames
        // through the bounded worker pool.
        let mut served = fully_trusting_system(4);
        seed(&mut served);
        let ids = served.participant_ids();
        let config = orchestra_store::ServiceConfig::default();
        let report = served.run_service_round(&ids, &ids, &config).unwrap();

        assert_eq!(report.published.iter().filter(|(_, e)| e.is_some()).count(), 4);
        assert_eq!(report.results.len(), sequential.len());
        for ((id_a, a), (id_b, b)) in report.results.iter().zip(&sequential) {
            assert_eq!(id_a, id_b);
            assert_eq!(a.accepted, b.accepted, "participant {id_a}");
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.deferred, b.deferred);
        }
        assert_eq!(report.latencies_us.len(), 4);
        assert!(report.latencies_us.iter().all(|&l| l > 0), "frame latency is charged");
        assert!(report.virtual_elapsed_us > 0);
        // 4 publishes + 4 × (begin + pages + commit).
        assert!(report.stats.requests >= 4 + 4 * 3);
        assert!(report.net.messages >= report.stats.requests, "every frame is charged");
        assert!((served.state_ratio() - reference.state_ratio()).abs() < 1e-9);
        // Unknown ids are rejected up front.
        assert!(served.reconcile_each_service(&[p(9)], &config).is_err());
        assert!(served.run_service_round(&[p(9)], &[], &config).is_err());
    }

    #[test]
    fn observed_service_round_reports_into_the_shared_sink() {
        let mut system = fully_trusting_system(3);
        let obs = Obs::enabled();
        system.set_observability(&obs);
        for i in 1..=3u32 {
            system
                .execute(
                    p(i),
                    vec![Update::insert(
                        "Function",
                        func("human", &format!("prot{i}"), "dna-repair"),
                        p(i),
                    )],
                )
                .unwrap();
        }
        let ids = system.participant_ids();
        let config = orchestra_store::ServiceConfig::default();
        let report = system.run_service_round(&ids, &ids, &config).unwrap();

        // The service counters land in the shared registry under the
        // unlabelled keys (no fabric shard), matching the per-round view.
        assert_eq!(obs.metrics.counter("service.requests").get(), report.stats.requests);
        assert!(obs.metrics.counter("net.messages").get() >= report.stats.requests);
        assert!(obs.metrics.counter("participant.store_us").get() > 0);

        // The trace shows the round phases, the session protocol, and —
        // stamped from the virtual clock — deterministic timestamps.
        let trace = obs.tracer.export();
        assert!(trace.contains("service.publish_phase"), "missing phase span: {trace}");
        assert!(trace.contains("service.reconcile_phase"), "missing phase span: {trace}");
        assert!(trace.contains("session.begin"), "missing session events: {trace}");
        assert!(trace.contains("session.commit"), "missing commit events: {trace}");
        assert!(trace.contains("publish"), "missing publish events: {trace}");
    }

    #[test]
    fn partition_heal_reconverges_the_confederation() {
        let mut system = fully_trusting_system(3);
        system.enable_causal_mode().unwrap();
        system.partition(&[p(2), p(3)]).unwrap();
        assert_eq!(system.offline_ids(), vec![p(2), p(3)]);
        // Unknown ids are rejected before anyone is taken offline.
        assert!(system.partition(&[p(1), p(9)]).is_err());
        assert!(!system.participant(p(1)).unwrap().is_offline());

        // The connected participant publishes; the partitioned ones keep
        // executing and buffering.
        system
            .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        system.publish(p(1)).unwrap();
        for i in [2u32, 3] {
            system
                .execute(
                    p(i),
                    vec![Update::insert(
                        "Function",
                        func("human", &format!("prot{i}"), "dna-repair"),
                        p(i),
                    )],
                )
                .unwrap();
            assert_eq!(system.publish(p(i)).unwrap(), None, "offline publish buffers");
            assert!(system.reconcile(p(i)).is_err(), "offline reconcile is refused");
        }

        let healed = system.heal().unwrap();
        assert_eq!(healed.len(), 2);
        assert!(healed.iter().all(|(_, epochs)| epochs.len() == 1));
        assert!(system.offline_ids().is_empty());

        // After healing everyone reconciles to the same state.
        system.reconcile_all().unwrap();
        system.reconcile_all().unwrap();
        assert!((system.state_ratio() - 1.0).abs() < 1e-9, "ratio {}", system.state_ratio());
        for id in system.participant_ids() {
            assert_eq!(system.participant(id).unwrap().instance().total_tuples(), 3);
        }
    }

    #[test]
    fn checkpoint_participant_records_at_the_store() {
        let mut system = fully_trusting_system(2);
        system
            .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        system.publish_and_reconcile(p(1)).unwrap();
        system.publish_and_reconcile(p(2)).unwrap();
        system.checkpoint_participant(p(1)).unwrap();
        let checkpoint = orchestra_store::UpdateStore::instance_checkpoint(system.store(), p(1))
            .expect("checkpoint recorded");
        assert_eq!(checkpoint.relations["Function"].len(), 1);
        assert!(system.checkpoint_participant(p(9)).is_err());
    }

    #[test]
    fn divergence_shows_up_in_the_state_ratio() {
        let mut system = fully_trusting_system(2);
        system
            .execute(p(1), vec![Update::insert("Function", func("rat", "prot1", "a"), p(1))])
            .unwrap();
        system
            .execute(p(2), vec![Update::insert("Function", func("rat", "prot1", "b"), p(2))])
            .unwrap();
        system.publish_and_reconcile(p(1)).unwrap();
        system.publish_and_reconcile(p(2)).unwrap();
        system.reconcile(p(1)).unwrap();
        // Each participant keeps its own version: the state ratio reflects
        // the divergence.
        let ratio = system.state_ratio_for("Function");
        assert!((ratio - 2.0).abs() < 1e-9, "ratio was {ratio}");
    }
}
