//! Orchestra: a collaborative data sharing system (CDSS) with trust-based
//! reconciliation.
//!
//! This crate is the public face of the workspace: it ties together the data
//! model, the storage engine, the update stores and the reconciliation engine
//! into the participant-centric API of the paper:
//!
//! * [`Participant`] — an autonomous peer with its own database instance,
//!   trust policy and soft state. Participants execute local transactions,
//!   publish them to an update store, reconcile against what others have
//!   published, and resolve deferred conflicts.
//! * [`CdssSystem`] — a confederation of participants sharing one update
//!   store, with convenience drivers for multi-epoch simulations.
//! * [`metrics`] — the evaluation metrics of Section 6: the *state ratio*
//!   (average number of distinct per-key values across participants) and
//!   timing breakdowns split into store time and local time.
//!
//! # Quick start
//!
//! ```
//! use orchestra::{CdssSystem, ParticipantConfig};
//! use orchestra_model::schema::bioinformatics_schema;
//! use orchestra_model::{ParticipantId, Tuple, TrustPolicy, Update};
//! use orchestra_store::CentralStore;
//!
//! let schema = bioinformatics_schema();
//! let store = CentralStore::new(schema.clone());
//! let mut system = CdssSystem::new(schema, store);
//!
//! // Two participants that trust each other at priority 1.
//! let p1 = ParticipantId(1);
//! let p2 = ParticipantId(2);
//! system.add_participant(ParticipantConfig::new(
//!     TrustPolicy::new(p1).trusting(p2, 1u32),
//! )).unwrap();
//! system.add_participant(ParticipantConfig::new(
//!     TrustPolicy::new(p2).trusting(p1, 1u32),
//! )).unwrap();
//!
//! // p1 inserts a protein-function fact and shares it.
//! system
//!     .execute(p1, vec![Update::insert(
//!         "Function",
//!         Tuple::of_text(&["rat", "prot1", "immune"]),
//!         p1,
//!     )])
//!     .unwrap();
//! system.publish_and_reconcile(p1).unwrap();
//! system.publish_and_reconcile(p2).unwrap();
//!
//! // p2 imported the fact.
//! assert_eq!(system.participant(p2).unwrap().instance().total_tuples(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod participant;
pub mod report;
pub mod system;

pub use metrics::{state_ratio, state_ratio_for_relation};
pub use participant::{Participant, ParticipantConfig};
pub use report::{ReconcileReport, ResolutionReport, TimingBreakdown};
pub use system::{CdssSystem, FabricDriveReport, ServiceDriveReport};
