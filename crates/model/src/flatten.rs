//! Net-effect ("flattening") computation over update sequences.
//!
//! Section 4.2 of the paper relies on a `flatten(s)` function that takes an
//! ordered sequence of updates and produces a set of mutually independent
//! updates with all dependency chains removed, in the style of Heraclitus
//! deltas: if a transaction chain inserts a tuple and then modifies it, the
//! flattened form is a single insertion of the final value; if it inserts and
//! then deletes, the net effect is empty; and so on.
//!
//! Flattening is what implements the paper's *least interaction* principle —
//! intermediate states of a tuple are disregarded, only final states are
//! compared for conflicts.

use crate::schema::Schema;
use crate::tuple::{KeyValue, Tuple};
use crate::update::{Update, UpdateOp};
use rustc_hash::FxHashMap;

/// The net effect on a single key.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NetEffect {
    Insert(Tuple),
    Delete(Tuple),
    Modify { from: Tuple, to: Tuple },
}

/// Flattens an ordered sequence of updates into a set of mutually independent
/// updates with intermediate steps removed.
///
/// Chaining rules (per relation, per key; a modification that changes key
/// attributes migrates the chain to the new key):
///
/// | existing net effect | next update       | new net effect            |
/// |---------------------|-------------------|----------------------------|
/// | —                   | insert t          | insert t                   |
/// | —                   | delete t          | delete t                   |
/// | —                   | modify a→b        | modify a→b                 |
/// | insert a            | modify a→b        | insert b                   |
/// | insert a            | delete a          | (nothing)                  |
/// | modify a→b          | modify b→c        | modify a→c (or nothing if a = c) |
/// | modify a→b          | delete b          | delete a                   |
/// | delete a            | insert b (same key) | modify a→b (or nothing if a = b) |
///
/// The provenance (`origin`) of each resulting update is taken from the last
/// update contributing to the chain, matching the paper's treatment of the
/// final state as the one that matters.
///
/// Updates over relations unknown to the schema are passed through untouched;
/// flattening never drops information it cannot interpret.
pub fn flatten(schema: &Schema, updates: &[Update]) -> Vec<Update> {
    // Per relation: key -> (net effect, origin of last contribution, sequence
    // number of first contribution, used to keep output order stable).
    type ChainMap = FxHashMap<KeyValue, (NetEffect, crate::ids::ParticipantId, usize)>;
    let mut chains: FxHashMap<crate::intern::RelName, ChainMap> = FxHashMap::default();
    let mut passthrough: Vec<(usize, Update)> = Vec::new();

    for (seq, u) in updates.iter().enumerate() {
        let Ok(rel) = schema.relation(&u.relation) else {
            passthrough.push((seq, u.clone()));
            continue;
        };
        let per_rel = chains.entry(u.relation.clone()).or_default();
        match &u.op {
            UpdateOp::Insert(t) => {
                let key = rel.key_of(t);
                match per_rel.remove(&key) {
                    None => {
                        per_rel.insert(key, (NetEffect::Insert(t.clone()), u.origin, seq));
                    }
                    Some((NetEffect::Delete(old), _, first)) => {
                        if old != *t {
                            per_rel.insert(
                                key,
                                (NetEffect::Modify { from: old, to: t.clone() }, u.origin, first),
                            );
                        }
                        // delete a; insert a  => no net effect
                    }
                    Some((prev, origin, first)) => {
                        // Inserting over an existing insert/modify of the same
                        // key is not a well-formed chain; keep the previous
                        // effect and record the insert separately so no
                        // information is lost.
                        per_rel.insert(key, (prev, origin, first));
                        passthrough.push((seq, u.clone()));
                    }
                }
            }
            UpdateOp::Delete(t) => {
                let key = rel.key_of(t);
                match per_rel.remove(&key) {
                    None => {
                        per_rel.insert(key, (NetEffect::Delete(t.clone()), u.origin, seq));
                    }
                    Some((NetEffect::Insert(_), _, _)) => {
                        // insert a; delete a => nothing
                    }
                    Some((NetEffect::Modify { from, .. }, _, first)) => {
                        per_rel.insert(key, (NetEffect::Delete(from), u.origin, first));
                    }
                    Some((NetEffect::Delete(old), origin, first)) => {
                        // Double delete of the same key: keep the first.
                        per_rel.insert(key, (NetEffect::Delete(old), origin, first));
                    }
                }
            }
            UpdateOp::Modify { from, to } => {
                let from_key = rel.key_of(from);
                let to_key = rel.key_of(to);
                match per_rel.remove(&from_key) {
                    None => {
                        per_rel.insert(
                            to_key,
                            (
                                NetEffect::Modify { from: from.clone(), to: to.clone() },
                                u.origin,
                                seq,
                            ),
                        );
                    }
                    Some((NetEffect::Insert(_), _, first)) => {
                        per_rel.insert(to_key, (NetEffect::Insert(to.clone()), u.origin, first));
                    }
                    Some((NetEffect::Modify { from: orig, .. }, _, first)) => {
                        if orig == *to {
                            // a -> b -> a: no net effect.
                        } else {
                            per_rel.insert(
                                to_key,
                                (NetEffect::Modify { from: orig, to: to.clone() }, u.origin, first),
                            );
                        }
                    }
                    Some((NetEffect::Delete(old), origin, first)) => {
                        // delete a; modify a->b is not well formed; keep the
                        // delete and pass the modify through.
                        per_rel.insert(from_key, (NetEffect::Delete(old), origin, first));
                        passthrough.push((seq, u.clone()));
                    }
                }
            }
        }
    }

    let mut out: Vec<(usize, Update)> = passthrough;
    for (relation, per_rel) in chains {
        for (_key, (effect, origin, first)) in per_rel {
            let update = match effect {
                NetEffect::Insert(t) => Update::insert(relation.clone(), t, origin),
                NetEffect::Delete(t) => Update::delete(relation.clone(), t, origin),
                NetEffect::Modify { from, to } => {
                    Update::modify(relation.clone(), from, to, origin)
                }
            };
            out.push((first, update));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    out.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ParticipantId;
    use crate::schema::bioinformatics_schema;
    use crate::update::UpdateKind;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    #[test]
    fn insert_then_modify_becomes_single_insert() {
        // The paper's X3:0, X3:1 chain from Figure 2.
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3)),
            Update::modify(
                "Function",
                func("rat", "prot1", "cell-metab"),
                func("rat", "prot1", "immune"),
                p(3),
            ),
        ];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].kind(), UpdateKind::Insert);
        assert_eq!(flat[0].written_tuple().unwrap(), &func("rat", "prot1", "immune"));
    }

    #[test]
    fn insert_then_modify_to_new_key_becomes_insert_of_new_key() {
        // The paper's X3:2, X3:3 example in Section 4.2: +(mouse, prot2,
        // cell-resp) then (mouse, prot2, cell-resp) -> (mouse, prot3,
        // cell-resp) minimizes to +(mouse, prot3, cell-resp).
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::insert("Function", func("mouse", "prot2", "cell-resp"), p(3)),
            Update::modify(
                "Function",
                func("mouse", "prot2", "cell-resp"),
                func("mouse", "prot3", "cell-resp"),
                p(3),
            ),
        ];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].kind(), UpdateKind::Insert);
        assert_eq!(flat[0].written_tuple().unwrap(), &func("mouse", "prot3", "cell-resp"));
    }

    #[test]
    fn insert_then_delete_cancels() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::insert("Function", func("rat", "prot1", "immune"), p(1)),
            Update::delete("Function", func("rat", "prot1", "immune"), p(1)),
        ];
        assert!(flatten(&schema, &updates).is_empty());
    }

    #[test]
    fn modify_chain_composes() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::modify("Function", func("rat", "prot1", "a"), func("rat", "prot1", "b"), p(1)),
            Update::modify("Function", func("rat", "prot1", "b"), func("rat", "prot1", "c"), p(2)),
        ];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].read_tuple().unwrap(), &func("rat", "prot1", "a"));
        assert_eq!(flat[0].written_tuple().unwrap(), &func("rat", "prot1", "c"));
        assert_eq!(flat[0].origin, p(2));
    }

    #[test]
    fn modify_back_to_original_cancels() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::modify("Function", func("rat", "prot1", "a"), func("rat", "prot1", "b"), p(1)),
            Update::modify("Function", func("rat", "prot1", "b"), func("rat", "prot1", "a"), p(1)),
        ];
        assert!(flatten(&schema, &updates).is_empty());
    }

    #[test]
    fn modify_then_delete_becomes_delete_of_original() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::modify("Function", func("rat", "prot1", "a"), func("rat", "prot1", "b"), p(1)),
            Update::delete("Function", func("rat", "prot1", "b"), p(1)),
        ];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].kind(), UpdateKind::Delete);
        assert_eq!(flat[0].read_tuple().unwrap(), &func("rat", "prot1", "a"));
    }

    #[test]
    fn delete_then_insert_becomes_modify() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::delete("Function", func("rat", "prot1", "a"), p(1)),
            Update::insert("Function", func("rat", "prot1", "b"), p(1)),
        ];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].kind(), UpdateKind::Modify);
        assert_eq!(flat[0].read_tuple().unwrap(), &func("rat", "prot1", "a"));
        assert_eq!(flat[0].written_tuple().unwrap(), &func("rat", "prot1", "b"));
    }

    #[test]
    fn delete_then_reinsert_same_value_cancels() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::delete("Function", func("rat", "prot1", "a"), p(1)),
            Update::insert("Function", func("rat", "prot1", "a"), p(1)),
        ];
        assert!(flatten(&schema, &updates).is_empty());
    }

    #[test]
    fn independent_keys_are_preserved_in_order() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::insert("Function", func("rat", "prot1", "a"), p(1)),
            Update::insert("Function", func("mouse", "prot2", "b"), p(1)),
            Update::insert("XRef", Tuple::of_text(&["rat", "prot1", "db", "acc"]), p(1)),
        ];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0].written_tuple().unwrap(), &func("rat", "prot1", "a"));
        assert_eq!(flat[1].written_tuple().unwrap(), &func("mouse", "prot2", "b"));
        assert_eq!(flat[2].relation, "XRef");
    }

    #[test]
    fn unknown_relations_pass_through() {
        let schema = bioinformatics_schema();
        let updates = vec![Update::insert("Mystery", Tuple::of_text(&["x"]), p(1))];
        let flat = flatten(&schema, &updates);
        assert_eq!(flat, updates);
    }

    #[test]
    fn flattening_is_idempotent() {
        let schema = bioinformatics_schema();
        let updates = vec![
            Update::insert("Function", func("rat", "prot1", "a"), p(1)),
            Update::modify("Function", func("rat", "prot1", "a"), func("rat", "prot1", "b"), p(1)),
            Update::insert("Function", func("mouse", "prot2", "x"), p(1)),
            Update::delete("Function", func("mouse", "prot2", "x"), p(1)),
            Update::delete("Function", func("dog", "prot9", "z"), p(1)),
        ];
        let once = flatten(&schema, &updates);
        let twice = flatten(&schema, &once);
        assert_eq!(once, twice);
    }
}
