//! Interned relation names.
//!
//! Every update carries the name of the relation it targets, and the hot
//! paths of the system — candidate construction at the update store,
//! flattening, conflict detection — clone updates constantly. With plain
//! `String` names each clone allocates; schemas have a handful of relations
//! while logs hold millions of updates, so the names are interned once in a
//! process-wide pool and shared as [`Arc<str>`]. Cloning a [`RelName`] is a
//! reference-count bump, equality of two interned names is usually a pointer
//! comparison, and the pool stays tiny (one entry per distinct relation name
//! ever seen).

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

fn pool() -> &'static Mutex<HashMap<Arc<str>, ()>> {
    static POOL: OnceLock<Mutex<HashMap<Arc<str>, ()>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// An interned relation name: a shared, immutable string that is cheap to
/// clone, hash and compare.
///
/// `RelName` dereferences to `str`, so it can be passed anywhere a `&str` is
/// expected, and it compares equal to plain strings of the same content.
#[derive(Clone)]
pub struct RelName(Arc<str>);

impl RelName {
    /// Interns a name, returning the canonical shared instance.
    pub fn new(name: &str) -> Self {
        let mut pool = pool().lock().expect("relation-name pool poisoned");
        if let Some((existing, ())) = pool.get_key_value(name) {
            return RelName(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(name);
        pool.insert(Arc::clone(&arc), ());
        RelName(arc)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for RelName {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for RelName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for RelName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for RelName {
    fn eq(&self, other: &Self) -> bool {
        // Interned names are pointer-equal when equal; fall back to content
        // comparison for names deserialised before the pool saw them.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for RelName {}

impl PartialEq<str> for RelName {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for RelName {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for RelName {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<RelName> for String {
    fn eq(&self, other: &RelName) -> bool {
        self.as_str() == &*other.0
    }
}

impl Hash for RelName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str`'s hash so `Borrow<str>` lookups work.
        (*self.0).hash(state);
    }
}

impl PartialOrd for RelName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RelName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RelName {
    fn from(name: &str) -> Self {
        RelName::new(name)
    }
}

impl From<&String> for RelName {
    fn from(name: &String) -> Self {
        RelName::new(name)
    }
}

impl From<String> for RelName {
    fn from(name: String) -> Self {
        RelName::new(&name)
    }
}

impl Serialize for RelName {
    fn to_json(&self) -> serde::Value {
        serde::Value::String(self.0.to_string())
    }
}

impl Deserialize for RelName {
    fn from_json(value: &serde::Value) -> Result<Self, serde::Error> {
        String::from_json(value).map(|s| RelName::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let a = RelName::new("Function");
        let b = RelName::new("Function");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        let c = a.clone();
        assert!(Arc::ptr_eq(&a.0, &c.0));
    }

    #[test]
    fn compares_against_plain_strings() {
        let a = RelName::new("XRef");
        assert_eq!(a, "XRef");
        assert_eq!(a, *"XRef");
        assert_eq!(a, String::from("XRef"));
        assert_eq!(String::from("XRef"), a);
        assert_ne!(a, RelName::new("Function"));
        assert!(RelName::new("A") < RelName::new("B"));
    }

    #[test]
    fn works_as_a_borrowed_hash_key() {
        use std::collections::HashMap;
        let mut map: HashMap<RelName, u32> = HashMap::new();
        map.insert(RelName::new("Function"), 1);
        assert_eq!(map.get("Function"), Some(&1));
        assert_eq!(map.get("XRef"), None);
    }

    #[test]
    fn serde_round_trip() {
        let a = RelName::new("Entry");
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "\"Entry\"");
        let back: RelName = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn display_and_deref() {
        let a = RelName::new("Function");
        assert_eq!(a.to_string(), "Function");
        assert_eq!(a.as_str(), "Function");
        assert_eq!(a.as_ref(), "Function");
        assert_eq!(a.len(), 8);
        assert_eq!(format!("{a:?}"), "\"Function\"");
    }
}
