//! Provenance-annotated updates: insertions, deletions and modifications.

use crate::ids::ParticipantId;
use crate::intern::RelName;
use crate::schema::{RelationSchema, Schema};
use crate::tuple::{KeyValue, Tuple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an update, without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateKind {
    /// `+R(ā; i)` — insertion of a tuple.
    Insert,
    /// `−R(ā; i)` — deletion of a tuple.
    Delete,
    /// `R(ā → ā′; i)` — replacement (modification) of a tuple.
    Modify,
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UpdateKind::Insert => "insert",
            UpdateKind::Delete => "delete",
            UpdateKind::Modify => "modify",
        };
        f.write_str(s)
    }
}

/// The payload of an update.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Insert a new tuple.
    Insert(Tuple),
    /// Delete an existing tuple (identified by its full value, as in the
    /// paper's `−R(ā; i)` notation).
    Delete(Tuple),
    /// Replace an existing tuple `from` with a new tuple `to`.
    Modify {
        /// The antecedent tuple value being replaced.
        from: Tuple,
        /// The replacement tuple value.
        to: Tuple,
    },
}

/// A single update to a relation, annotated with the identity of the
/// participant that originated it (its provenance).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Update {
    /// Name of the relation the update targets (interned, cheap to clone).
    pub relation: RelName,
    /// The operation payload.
    pub op: UpdateOp,
    /// The participant that originated the update.
    pub origin: ParticipantId,
}

impl Update {
    /// Creates an insertion `+R(ā; i)`.
    pub fn insert(relation: impl Into<RelName>, tuple: Tuple, origin: ParticipantId) -> Self {
        Update { relation: relation.into(), op: UpdateOp::Insert(tuple), origin }
    }

    /// Creates a deletion `−R(ā; i)`.
    pub fn delete(relation: impl Into<RelName>, tuple: Tuple, origin: ParticipantId) -> Self {
        Update { relation: relation.into(), op: UpdateOp::Delete(tuple), origin }
    }

    /// Creates a replacement `R(ā → ā′; i)`.
    pub fn modify(
        relation: impl Into<RelName>,
        from: Tuple,
        to: Tuple,
        origin: ParticipantId,
    ) -> Self {
        Update { relation: relation.into(), op: UpdateOp::Modify { from, to }, origin }
    }

    /// The kind of the update.
    pub fn kind(&self) -> UpdateKind {
        match self.op {
            UpdateOp::Insert(_) => UpdateKind::Insert,
            UpdateOp::Delete(_) => UpdateKind::Delete,
            UpdateOp::Modify { .. } => UpdateKind::Modify,
        }
    }

    /// The tuple value this update reads (its antecedent): the deleted tuple
    /// for a deletion, the `from` tuple for a modification, `None` for an
    /// insertion.
    pub fn read_tuple(&self) -> Option<&Tuple> {
        match &self.op {
            UpdateOp::Insert(_) => None,
            UpdateOp::Delete(t) => Some(t),
            UpdateOp::Modify { from, .. } => Some(from),
        }
    }

    /// The tuple value this update writes: the inserted tuple for an
    /// insertion, the `to` tuple for a modification, `None` for a deletion.
    pub fn written_tuple(&self) -> Option<&Tuple> {
        match &self.op {
            UpdateOp::Insert(t) => Some(t),
            UpdateOp::Delete(_) => None,
            UpdateOp::Modify { to, .. } => Some(to),
        }
    }

    /// Key value of the tuple this update reads, if any.
    pub fn read_key(&self, rel: &RelationSchema) -> Option<KeyValue> {
        self.read_tuple().map(|t| rel.key_of(t))
    }

    /// Key value of the tuple this update writes, if any.
    pub fn written_key(&self, rel: &RelationSchema) -> Option<KeyValue> {
        self.written_tuple().map(|t| rel.key_of(t))
    }

    /// All key values this update touches (reads or writes), deduplicated.
    /// A modification that changes a key attribute touches two keys.
    pub fn touched_keys(&self, rel: &RelationSchema) -> Vec<KeyValue> {
        let mut keys = Vec::with_capacity(2);
        if let Some(k) = self.read_key(rel) {
            keys.push(k);
        }
        if let Some(k) = self.written_key(rel) {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        keys
    }

    /// Validates that all tuples in this update conform to the schema.
    pub fn validate(&self, schema: &Schema) -> crate::error::Result<()> {
        let rel = schema.relation(&self.relation)?;
        if let Some(t) = self.read_tuple() {
            rel.validate_tuple(t)?;
        }
        if let Some(t) = self.written_tuple() {
            rel.validate_tuple(t)?;
        }
        Ok(())
    }

    /// Decides whether two updates conflict, per Section 4 of the paper:
    ///
    /// 1. both are insertions with the same key attribute values but different
    ///    values for at least one other attribute; or
    /// 2. one is a deletion and the other is a replacement or insertion with
    ///    the same key attribute values; or
    /// 3. both are replacements with the same source tuple value but
    ///    different replacement tuples.
    ///
    /// Updates over different relations never conflict.
    pub fn conflicts_with(&self, other: &Update, schema: &Schema) -> bool {
        self.conflict_kind_with(other, schema).is_some()
    }

    /// Like [`Update::conflicts_with`] but returns the kind of conflict, which
    /// the reconciliation algorithm uses to build conflict groups.
    pub fn conflict_kind_with(
        &self,
        other: &Update,
        schema: &Schema,
    ) -> Option<(crate::conflict::ConflictKind, KeyValue)> {
        use crate::conflict::ConflictKind;
        if self.relation != other.relation {
            return None;
        }
        let rel = schema.relation(&self.relation).ok()?;
        match (&self.op, &other.op) {
            (UpdateOp::Insert(a), UpdateOp::Insert(b)) => {
                if rel.key_of(a) == rel.key_of(b) && a != b {
                    Some((ConflictKind::DivergentInsert, rel.key_of(a)))
                } else {
                    None
                }
            }
            (UpdateOp::Delete(d), UpdateOp::Insert(w))
            | (UpdateOp::Insert(w), UpdateOp::Delete(d)) => {
                if rel.key_of(d) == rel.key_of(w) {
                    Some((ConflictKind::DeleteVersusWrite, rel.key_of(d)))
                } else {
                    None
                }
            }
            (UpdateOp::Delete(d), UpdateOp::Modify { from, .. })
            | (UpdateOp::Modify { from, .. }, UpdateOp::Delete(d)) => {
                if rel.key_of(d) == rel.key_of(from) {
                    Some((ConflictKind::DeleteVersusWrite, rel.key_of(d)))
                } else {
                    None
                }
            }
            (UpdateOp::Modify { from: f1, to: t1 }, UpdateOp::Modify { from: f2, to: t2 }) => {
                if f1 == f2 && t1 != t2 {
                    Some((ConflictKind::DivergentModify, rel.key_of(f1)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            UpdateOp::Insert(t) => write!(f, "+{}{}; {}", self.relation, t, self.origin),
            UpdateOp::Delete(t) => write!(f, "-{}{}; {}", self.relation, t, self.origin),
            UpdateOp::Modify { from, to } => {
                write!(f, "{}({} -> {}); {}", self.relation, from, to, self.origin)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictKind;
    use crate::schema::bioinformatics_schema;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    #[test]
    fn kinds_and_accessors() {
        let ins = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        assert_eq!(ins.kind(), UpdateKind::Insert);
        assert!(ins.read_tuple().is_none());
        assert_eq!(ins.written_tuple().unwrap(), &func("rat", "prot1", "immune"));

        let del = Update::delete("Function", func("rat", "prot1", "immune"), p(3));
        assert_eq!(del.kind(), UpdateKind::Delete);
        assert!(del.written_tuple().is_none());
        assert_eq!(del.read_tuple().unwrap(), &func("rat", "prot1", "immune"));

        let m = Update::modify(
            "Function",
            func("rat", "prot1", "cell-metab"),
            func("rat", "prot1", "immune"),
            p(3),
        );
        assert_eq!(m.kind(), UpdateKind::Modify);
        assert_eq!(m.read_tuple().unwrap(), &func("rat", "prot1", "cell-metab"));
        assert_eq!(m.written_tuple().unwrap(), &func("rat", "prot1", "immune"));
    }

    #[test]
    fn touched_keys_of_key_changing_modify() {
        let schema = bioinformatics_schema();
        let rel = schema.relation("Function").unwrap();
        let m = Update::modify(
            "Function",
            func("mouse", "prot2", "cell-resp"),
            func("mouse", "prot3", "cell-resp"),
            p(3),
        );
        let keys = m.touched_keys(rel);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&KeyValue::of_text(&["mouse", "prot2"])));
        assert!(keys.contains(&KeyValue::of_text(&["mouse", "prot3"])));

        let m2 = Update::modify(
            "Function",
            func("rat", "prot1", "cell-metab"),
            func("rat", "prot1", "immune"),
            p(3),
        );
        assert_eq!(m2.touched_keys(rel).len(), 1);
    }

    #[test]
    fn divergent_inserts_conflict() {
        let schema = bioinformatics_schema();
        let a = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        let b = Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2));
        let c = Update::insert("Function", func("rat", "prot1", "immune"), p(2));
        let d = Update::insert("Function", func("rat", "prot2", "immune"), p(2));
        assert!(a.conflicts_with(&b, &schema));
        assert_eq!(a.conflict_kind_with(&b, &schema).unwrap().0, ConflictKind::DivergentInsert);
        // Identical inserts do not conflict.
        assert!(!a.conflicts_with(&c, &schema));
        // Different keys do not conflict.
        assert!(!a.conflicts_with(&d, &schema));
    }

    #[test]
    fn delete_versus_write_conflicts() {
        let schema = bioinformatics_schema();
        let del = Update::delete("Function", func("rat", "prot1", "immune"), p(1));
        let ins = Update::insert("Function", func("rat", "prot1", "other"), p(2));
        let modify = Update::modify(
            "Function",
            func("rat", "prot1", "immune"),
            func("rat", "prot1", "cell-resp"),
            p(2),
        );
        let unrelated = Update::insert("Function", func("mouse", "prot2", "x"), p(2));
        assert!(del.conflicts_with(&ins, &schema));
        assert!(ins.conflicts_with(&del, &schema));
        assert!(del.conflicts_with(&modify, &schema));
        assert!(!del.conflicts_with(&unrelated, &schema));
        assert_eq!(
            del.conflict_kind_with(&modify, &schema).unwrap().0,
            ConflictKind::DeleteVersusWrite
        );
    }

    #[test]
    fn divergent_modifies_conflict() {
        let schema = bioinformatics_schema();
        let base = func("rat", "prot1", "cell-metab");
        let m1 = Update::modify("Function", base.clone(), func("rat", "prot1", "immune"), p(3));
        let m2 = Update::modify("Function", base.clone(), func("rat", "prot1", "cell-resp"), p(2));
        let m3 = Update::modify("Function", base.clone(), func("rat", "prot1", "immune"), p(2));
        let other_base = Update::modify(
            "Function",
            func("rat", "prot1", "other"),
            func("rat", "prot1", "cell-resp"),
            p(2),
        );
        assert!(m1.conflicts_with(&m2, &schema));
        assert_eq!(m1.conflict_kind_with(&m2, &schema).unwrap().0, ConflictKind::DivergentModify);
        // Same source, same target: no conflict.
        assert!(!m1.conflicts_with(&m3, &schema));
        // Different source tuples: no conflict under rule 3.
        assert!(!m1.conflicts_with(&other_base, &schema));
    }

    #[test]
    fn updates_on_different_relations_never_conflict() {
        let schema = bioinformatics_schema();
        let a = Update::insert("Function", func("rat", "prot1", "immune"), p(1));
        let b = Update::insert("XRef", Tuple::of_text(&["rat", "prot1", "db1", "acc1"]), p(2));
        assert!(!a.conflicts_with(&b, &schema));
    }

    #[test]
    fn validation_against_schema() {
        let schema = bioinformatics_schema();
        let ok = Update::insert("Function", func("rat", "prot1", "immune"), p(1));
        assert!(ok.validate(&schema).is_ok());
        let bad_arity = Update::insert("Function", Tuple::of_text(&["rat", "prot1"]), p(1));
        assert!(bad_arity.validate(&schema).is_err());
        let bad_rel = Update::insert("Nope", func("rat", "prot1", "immune"), p(1));
        assert!(bad_rel.validate(&schema).is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        let ins = Update::insert("F", Tuple::of_text(&["rat", "prot1", "cell-metab"]), p(3));
        assert_eq!(ins.to_string(), "+F(rat, prot1, cell-metab); p3");
        let m = Update::modify(
            "F",
            Tuple::of_text(&["rat", "prot1", "cell-metab"]),
            Tuple::of_text(&["rat", "prot1", "immune"]),
            p(3),
        );
        assert!(m.to_string().contains("->"));
    }
}
