//! Relation schemas and the system-wide schema `Σ`.

use crate::constraint::Constraint;
use crate::error::{ModelError, Result};
use crate::tuple::{KeyValue, Tuple};
use crate::value::ValueType;
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Declaration of a single column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its relation.
    pub name: String,
    /// Declared type of the column.
    pub ty: ValueType,
    /// Whether NULL is an allowed value for this column.
    pub nullable: bool,
}

impl ColumnDef {
    /// Creates a non-nullable column definition.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef { name: name.into(), ty, nullable: false }
    }

    /// Creates a nullable column definition.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef { name: name.into(), ty, nullable: true }
    }
}

/// Schema of a single relation: a name, an ordered list of columns, and the
/// indexes of the columns that form the primary key.
///
/// The paper's running example is
/// `F(organism, protein, function)` with key `(organism, protein)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    name: String,
    columns: Vec<ColumnDef>,
    key: Vec<usize>,
}

impl RelationSchema {
    /// Creates a relation schema. `key_columns` are column *names*; they must
    /// all exist among `columns`.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        key_columns: &[&str],
    ) -> Result<Self> {
        let name = name.into();
        if columns.is_empty() {
            return Err(ModelError::InvalidSchema(format!(
                "relation `{name}` must have at least one column"
            )));
        }
        let mut seen = FxHashSet::default();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(ModelError::InvalidSchema(format!(
                    "duplicate column `{}` in relation `{name}`",
                    c.name
                )));
            }
        }
        if key_columns.is_empty() {
            return Err(ModelError::InvalidSchema(format!(
                "relation `{name}` must declare a primary key"
            )));
        }
        let mut key = Vec::with_capacity(key_columns.len());
        for kc in key_columns {
            let idx = columns.iter().position(|c| c.name == *kc).ok_or_else(|| {
                ModelError::UnknownColumn { relation: name.clone(), column: (*kc).to_owned() }
            })?;
            if key.contains(&idx) {
                return Err(ModelError::InvalidSchema(format!(
                    "key column `{kc}` listed twice for relation `{name}`"
                )));
            }
            key.push(idx);
        }
        Ok(RelationSchema { name, columns, key })
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indexes (into the column list) of the primary-key columns.
    pub fn key_indexes(&self) -> &[usize] {
        &self.key
    }

    /// Names of the primary-key columns, in key order.
    pub fn key_column_names(&self) -> Vec<&str> {
        self.key.iter().map(|&i| self.columns[i].name.as_str()).collect()
    }

    /// Returns the index of a column by name.
    pub fn column_index(&self, column: &str) -> Result<usize> {
        self.columns.iter().position(|c| c.name == column).ok_or_else(|| {
            ModelError::UnknownColumn { relation: self.name.clone(), column: column.to_owned() }
        })
    }

    /// Validates that a tuple conforms to this schema (arity, types,
    /// nullability, and non-NULL key attributes).
    pub fn validate_tuple(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(ModelError::SchemaMismatch {
                relation: self.name.clone(),
                detail: format!("expected {} columns, got {}", self.arity(), tuple.arity()),
            });
        }
        for (i, (value, col)) in tuple.values().iter().zip(&self.columns).enumerate() {
            if value.is_null() {
                if !col.nullable {
                    return Err(ModelError::SchemaMismatch {
                        relation: self.name.clone(),
                        detail: format!("column `{}` (index {i}) is not nullable", col.name),
                    });
                }
            } else if !value.conforms_to(col.ty) {
                return Err(ModelError::TypeMismatch {
                    expected: format!("{} for column `{}`", col.ty, col.name),
                    found: format!("{value}"),
                });
            }
        }
        for &k in &self.key {
            if tuple.values()[k].is_null() {
                return Err(ModelError::SchemaMismatch {
                    relation: self.name.clone(),
                    detail: format!("key column `{}` must not be NULL", self.columns[k].name),
                });
            }
        }
        Ok(())
    }

    /// Extracts the key value of a tuple under this schema.
    pub fn key_of(&self, tuple: &Tuple) -> KeyValue {
        KeyValue::from_values(self.key.iter().map(|&i| tuple.values()[i].clone()).collect())
    }
}

/// The system-wide schema `Σ`: a collection of relation schemas plus the
/// integrity constraints that every participant instance must satisfy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    relations: BTreeMap<String, RelationSchema>,
    constraints: Vec<Constraint>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a relation to the schema. Returns an error if a relation with the
    /// same name already exists.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<()> {
        if self.relations.contains_key(relation.name()) {
            return Err(ModelError::InvalidSchema(format!(
                "relation `{}` already declared",
                relation.name()
            )));
        }
        self.relations.insert(relation.name().to_owned(), relation);
        Ok(())
    }

    /// Builder-style variant of [`Schema::add_relation`].
    pub fn with_relation(mut self, relation: RelationSchema) -> Result<Self> {
        self.add_relation(relation)?;
        Ok(self)
    }

    /// Adds an integrity constraint. The constraint must reference only
    /// relations and columns that exist in the schema.
    pub fn add_constraint(&mut self, constraint: Constraint) -> Result<()> {
        constraint.validate_against(self)?;
        self.constraints.push(constraint);
        Ok(())
    }

    /// The declared integrity constraints (beyond the implicit primary keys).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relations.get(name).ok_or_else(|| ModelError::UnknownRelation(name.to_owned()))
    }

    /// Returns true if the schema declares the relation.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over all relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Names of all relations, in sorted order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns true if the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// Builds the bioinformatics schema used throughout the paper and in the
/// synthetic workload: `Function(organism, protein, function)` with key
/// `(organism, protein)` and a secondary cross-reference relation
/// `XRef(organism, protein, db, accession)` with key
/// `(organism, protein, db, accession)`.
pub fn bioinformatics_schema() -> Schema {
    let function = RelationSchema::new(
        "Function",
        vec![
            ColumnDef::new("organism", ValueType::Text),
            ColumnDef::new("protein", ValueType::Text),
            ColumnDef::new("function", ValueType::Text),
        ],
        &["organism", "protein"],
    )
    .expect("static schema is valid");
    let xref = RelationSchema::new(
        "XRef",
        vec![
            ColumnDef::new("organism", ValueType::Text),
            ColumnDef::new("protein", ValueType::Text),
            ColumnDef::new("db", ValueType::Text),
            ColumnDef::new("accession", ValueType::Text),
        ],
        &["organism", "protein", "db", "accession"],
    )
    .expect("static schema is valid");
    let mut schema = Schema::new();
    schema.add_relation(function).expect("fresh schema");
    schema.add_relation(xref).expect("fresh schema");
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn function_schema() -> RelationSchema {
        RelationSchema::new(
            "Function",
            vec![
                ColumnDef::new("organism", ValueType::Text),
                ColumnDef::new("protein", ValueType::Text),
                ColumnDef::new("function", ValueType::Text),
            ],
            &["organism", "protein"],
        )
        .unwrap()
    }

    #[test]
    fn relation_schema_exposes_key_columns() {
        let rs = function_schema();
        assert_eq!(rs.name(), "Function");
        assert_eq!(rs.arity(), 3);
        assert_eq!(rs.key_indexes(), &[0, 1]);
        assert_eq!(rs.key_column_names(), vec!["organism", "protein"]);
        assert_eq!(rs.column_index("function").unwrap(), 2);
        assert!(rs.column_index("nope").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = RelationSchema::new(
            "R",
            vec![ColumnDef::new("a", ValueType::Int), ColumnDef::new("a", ValueType::Int)],
            &["a"],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidSchema(_)));
    }

    #[test]
    fn key_must_reference_existing_columns() {
        let err = RelationSchema::new("R", vec![ColumnDef::new("a", ValueType::Int)], &["missing"])
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownColumn { .. }));
    }

    #[test]
    fn empty_key_rejected() {
        let err =
            RelationSchema::new("R", vec![ColumnDef::new("a", ValueType::Int)], &[]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidSchema(_)));
    }

    #[test]
    fn tuple_validation_checks_arity_types_and_key_nulls() {
        let rs = function_schema();
        let good = Tuple::new(vec!["rat".into(), "prot1".into(), "immune".into()]);
        assert!(rs.validate_tuple(&good).is_ok());

        let wrong_arity = Tuple::new(vec!["rat".into(), "prot1".into()]);
        assert!(rs.validate_tuple(&wrong_arity).is_err());

        let wrong_type = Tuple::new(vec!["rat".into(), Value::int(1), "immune".into()]);
        assert!(rs.validate_tuple(&wrong_type).is_err());

        let null_key = Tuple::new(vec![Value::Null, "prot1".into(), "immune".into()]);
        assert!(rs.validate_tuple(&null_key).is_err());
    }

    #[test]
    fn nullable_columns_accept_null() {
        let rs = RelationSchema::new(
            "R",
            vec![ColumnDef::new("k", ValueType::Int), ColumnDef::nullable("v", ValueType::Text)],
            &["k"],
        )
        .unwrap();
        let t = Tuple::new(vec![Value::int(1), Value::Null]);
        assert!(rs.validate_tuple(&t).is_ok());
    }

    #[test]
    fn key_extraction() {
        let rs = function_schema();
        let t = Tuple::new(vec!["rat".into(), "prot1".into(), "immune".into()]);
        let key = rs.key_of(&t);
        assert_eq!(key.values(), &[Value::text("rat"), Value::text("prot1")]);
    }

    #[test]
    fn schema_rejects_duplicate_relations() {
        let mut schema = Schema::new();
        schema.add_relation(function_schema()).unwrap();
        assert!(schema.add_relation(function_schema()).is_err());
    }

    #[test]
    fn schema_lookup() {
        let schema = bioinformatics_schema();
        assert!(schema.has_relation("Function"));
        assert!(schema.has_relation("XRef"));
        assert!(!schema.has_relation("Gene"));
        assert_eq!(schema.len(), 2);
        assert!(!schema.is_empty());
        assert!(schema.relation("Function").is_ok());
        assert!(schema.relation("Gene").is_err());
        assert_eq!(schema.relation_names(), vec!["Function", "XRef"]);
    }

    #[test]
    fn serde_round_trip() {
        let schema = bioinformatics_schema();
        let json = serde_json::to_string(&schema).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(schema, back);
    }
}
