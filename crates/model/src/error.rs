//! Error types shared across the data model.

use std::fmt;

/// Convenience alias for results produced by model-level operations.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A tuple did not conform to the schema of the relation it targets.
    SchemaMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A relation name was referenced but is not part of the schema.
    UnknownRelation(String),
    /// A column name was referenced but does not exist in the relation.
    UnknownColumn {
        /// Relation that was searched.
        relation: String,
        /// Column that was not found.
        column: String,
    },
    /// An operation referenced a value of the wrong type.
    TypeMismatch {
        /// What the schema expected.
        expected: String,
        /// What was supplied instead.
        found: String,
    },
    /// An integrity constraint was violated.
    ConstraintViolation {
        /// Description of the violated constraint.
        constraint: String,
        /// Description of the offending data.
        detail: String,
    },
    /// A schema definition was internally inconsistent (e.g. duplicate
    /// column names or an out-of-range key column index).
    InvalidSchema(String),
    /// A transaction was malformed (e.g. empty, or mixing origins).
    InvalidTransaction(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::SchemaMismatch { relation, detail } => {
                write!(f, "tuple does not conform to schema of `{relation}`: {detail}")
            }
            ModelError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            ModelError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            ModelError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ModelError::ConstraintViolation { constraint, detail } => {
                write!(f, "constraint `{constraint}` violated: {detail}")
            }
            ModelError::InvalidSchema(detail) => write!(f, "invalid schema: {detail}"),
            ModelError::InvalidTransaction(detail) => write!(f, "invalid transaction: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_relation_name() {
        let err = ModelError::UnknownRelation("Function".into());
        assert!(err.to_string().contains("Function"));
    }

    #[test]
    fn display_schema_mismatch() {
        let err = ModelError::SchemaMismatch {
            relation: "F".into(),
            detail: "expected 3 columns, got 2".into(),
        };
        let s = err.to_string();
        assert!(s.contains("F") && s.contains("3 columns"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ModelError::UnknownRelation("R".into()),
            ModelError::UnknownRelation("R".into())
        );
        assert_ne!(
            ModelError::UnknownRelation("R".into()),
            ModelError::UnknownRelation("S".into())
        );
    }
}
