//! Attribute values and value types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of an attribute value, used by [`crate::schema::ColumnDef`] to
/// declare column types and to validate tuples against a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Text => "text",
            ValueType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single attribute value.
///
/// `Value` provides total equality, ordering and hashing so that it can be
/// used as (part of) a key in indexes and conflict-detection hash tables.
/// Floating-point values are compared with [`f64::total_cmp`] and hashed by
/// their bit pattern, which makes `NaN == NaN` for the purposes of this data
/// model; that is the right semantics for key lookup even though it differs
/// from IEEE comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// The SQL-style NULL marker (absence of a value).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit floating point.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns the type of the value, or `None` for [`Value::Null`].
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    /// Returns true if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns true if the value conforms to the given type (NULL conforms to
    /// every type; nullability is checked separately by the schema).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Returns the text content if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// A rank used to order values of different types deterministically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_types() {
        assert_eq!(Value::int(3), Value::int(3));
        assert_ne!(Value::int(3), Value::int(4));
        assert_eq!(Value::text("rat"), Value::from("rat"));
        assert_ne!(Value::text("rat"), Value::text("mouse"));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn equality_across_types_is_false() {
        assert_ne!(Value::int(1), Value::Bool(true));
        assert_ne!(Value::int(0), Value::Null);
        assert_ne!(Value::text("1"), Value::int(1));
    }

    #[test]
    fn nan_equals_nan_for_keying_purposes() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::int(42), Value::int(42)),
            (Value::text("prot1"), Value::text("prot1")),
            (Value::Bool(false), Value::Bool(false)),
            (Value::Float(2.5), Value::Float(2.5)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn ordering_is_total_and_type_bucketed() {
        let mut values = vec![
            Value::text("b"),
            Value::int(10),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
            Value::text("a"),
            Value::int(-2),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::int(-2),
                Value::int(10),
                Value::Float(1.5),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn conformance() {
        assert!(Value::int(1).conforms_to(ValueType::Int));
        assert!(!Value::int(1).conforms_to(ValueType::Text));
        assert!(Value::Null.conforms_to(ValueType::Text));
        assert!(Value::text("x").conforms_to(ValueType::Text));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::text("immune").to_string(), "immune");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(ValueType::Text.to_string(), "text");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::int(3).as_text(), None);
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::text("x").as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
    }

    #[test]
    fn serde_round_trip() {
        let values = vec![
            Value::Null,
            Value::int(5),
            Value::Float(3.25),
            Value::text("cell-metab"),
            Value::Bool(true),
        ];
        let json = serde_json::to_string(&values).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(values, back);
    }
}
