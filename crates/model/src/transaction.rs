//! Transactions: ordered groups of updates published atomically by one
//! participant.

use crate::error::{ModelError, Result};
use crate::ids::{ParticipantId, TransactionId};
use crate::intern::RelName;
use crate::schema::Schema;
use crate::tuple::KeyValue;
use crate::update::Update;
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A transaction `X_{i:j}`: an ordered sequence of updates originated by a
/// single participant and published atomically.
///
/// The paper's semantics treat the transaction as the unit of acceptance,
/// rejection and deferral: either all of its updates are applied at a
/// reconciliation, or none are.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    id: TransactionId,
    /// Shared so that cloning a transaction (store-side retrieval, candidate
    /// construction) bumps a reference count instead of deep-copying updates.
    updates: Arc<Vec<Update>>,
}

impl Transaction {
    /// Creates a transaction, checking that it is non-empty and that every
    /// update's origin matches the transaction's originating participant.
    pub fn new(id: TransactionId, updates: Vec<Update>) -> Result<Self> {
        if updates.is_empty() {
            return Err(ModelError::InvalidTransaction(format!("transaction {id} has no updates")));
        }
        for u in &updates {
            if u.origin != id.participant {
                return Err(ModelError::InvalidTransaction(format!(
                    "transaction {id} contains an update originated by {}",
                    u.origin
                )));
            }
        }
        Ok(Transaction { id, updates: Arc::new(updates) })
    }

    /// Convenience constructor that builds the [`TransactionId`] from its
    /// parts.
    pub fn from_parts(
        participant: ParticipantId,
        local_id: u64,
        updates: Vec<Update>,
    ) -> Result<Self> {
        Transaction::new(TransactionId::new(participant, local_id), updates)
    }

    /// The transaction identifier.
    pub fn id(&self) -> TransactionId {
        self.id
    }

    /// The originating participant.
    pub fn origin(&self) -> ParticipantId {
        self.id.participant
    }

    /// The updates, in the order they were made.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// A shared handle to the update list. Cloning the result is a
    /// reference-count bump; the update store uses this to build candidate
    /// extensions without copying any update.
    pub fn shared_updates(&self) -> Arc<Vec<Update>> {
        Arc::clone(&self.updates)
    }

    /// Number of component updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Transactions are never empty, but the method is provided for
    /// completeness of the collection-like API.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Validates every component update against the schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for u in self.updates.iter() {
            u.validate(schema)?;
        }
        Ok(())
    }

    /// All `(relation, key)` pairs read or written by this transaction.
    pub fn touched_keys(&self, schema: &Schema) -> Vec<(RelName, KeyValue)> {
        let mut out = Vec::new();
        let mut seen: FxHashSet<(RelName, KeyValue)> = FxHashSet::default();
        for u in self.updates.iter() {
            if let Ok(rel) = schema.relation(&u.relation) {
                for key in u.touched_keys(rel) {
                    let entry = (u.relation.clone(), key);
                    if seen.insert(entry.clone()) {
                        out.push(entry);
                    }
                }
            }
        }
        out
    }

    /// Returns true if any update of `self` conflicts with any update of
    /// `other` under the schema (the paper's transaction-level conflict).
    pub fn conflicts_with(&self, other: &Transaction, schema: &Schema) -> bool {
        self.updates.iter().any(|a| other.updates.iter().any(|b| a.conflicts_with(b, schema)))
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {{", self.id)?;
        for (i, u) in self.updates.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{u}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::bioinformatics_schema;
    use crate::tuple::Tuple;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    #[test]
    fn empty_transactions_are_rejected() {
        let err = Transaction::from_parts(p(1), 0, vec![]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidTransaction(_)));
    }

    #[test]
    fn mismatched_origin_is_rejected() {
        let u = Update::insert("Function", func("rat", "prot1", "immune"), p(2));
        let err = Transaction::from_parts(p(1), 0, vec![u]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidTransaction(_)));
    }

    #[test]
    fn accessors() {
        let u1 = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        let u2 = Update::insert("Function", func("mouse", "prot2", "immune"), p(3));
        let x = Transaction::from_parts(p(3), 7, vec![u1.clone(), u2.clone()]).unwrap();
        assert_eq!(x.id(), TransactionId::new(p(3), 7));
        assert_eq!(x.origin(), p(3));
        assert_eq!(x.len(), 2);
        assert!(!x.is_empty());
        assert_eq!(x.updates(), &[u1, u2]);
        assert!(x.to_string().starts_with("X3:7: {"));
    }

    #[test]
    fn touched_keys_deduplicates() {
        let schema = bioinformatics_schema();
        let u1 = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        let u2 = Update::modify(
            "Function",
            func("rat", "prot1", "immune"),
            func("rat", "prot1", "cell-resp"),
            p(3),
        );
        let x = Transaction::from_parts(p(3), 0, vec![u1, u2]).unwrap();
        let keys = x.touched_keys(&schema);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0, "Function");
        assert_eq!(keys[0].1, KeyValue::of_text(&["rat", "prot1"]));
    }

    #[test]
    fn transaction_conflict_is_any_pairwise_update_conflict() {
        let schema = bioinformatics_schema();
        let x1 = Transaction::from_parts(
            p(3),
            0,
            vec![Update::insert("Function", func("rat", "prot1", "cell-metab"), p(3))],
        )
        .unwrap();
        let x2 = Transaction::from_parts(
            p(2),
            1,
            vec![
                Update::insert("Function", func("mouse", "prot2", "immune"), p(2)),
                Update::insert("Function", func("rat", "prot1", "cell-resp"), p(2)),
            ],
        )
        .unwrap();
        let x3 = Transaction::from_parts(
            p(2),
            0,
            vec![Update::insert("Function", func("mouse", "prot2", "immune"), p(2))],
        )
        .unwrap();
        assert!(x1.conflicts_with(&x2, &schema));
        assert!(x2.conflicts_with(&x1, &schema));
        assert!(!x1.conflicts_with(&x3, &schema));
    }

    #[test]
    fn validate_checks_every_update() {
        let schema = bioinformatics_schema();
        let good = Transaction::from_parts(
            p(1),
            0,
            vec![Update::insert("Function", func("rat", "prot1", "immune"), p(1))],
        )
        .unwrap();
        assert!(good.validate(&schema).is_ok());
        let bad = Transaction::from_parts(
            p(1),
            1,
            vec![Update::insert("Function", Tuple::of_text(&["rat"]), p(1))],
        )
        .unwrap();
        assert!(bad.validate(&schema).is_err());
    }
}
