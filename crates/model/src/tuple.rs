//! Tuples and key values.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A relational tuple: an ordered list of attribute values.
///
/// Tuples are schema-agnostic; conformance to a particular
/// [`crate::schema::RelationSchema`] is checked by
/// [`crate::schema::RelationSchema::validate_tuple`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from a list of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Creates a tuple of text values — a convenience for the bioinformatics
    /// workload, where every attribute is text.
    pub fn of_text<S: AsRef<str>>(values: &[S]) -> Self {
        Tuple { values: values.iter().map(|s| Value::text(s.as_ref())).collect() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The attribute values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The attribute at the given column index.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// Returns a copy with the attribute at `index` replaced by `value`.
    pub fn with_value(&self, index: usize, value: Value) -> Tuple {
        let mut values = self.values.clone();
        values[index] = value;
        Tuple { values }
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Projects the tuple onto the given column indexes, in the given order.
    pub fn project(&self, indexes: &[usize]) -> Vec<Value> {
        indexes.iter().map(|&i| self.values[i].clone()).collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// The value of a primary key: the key attributes of a tuple, in key order.
///
/// Key values identify the "antecedent data value" of the paper's conflict
/// definition — two updates that write the same key value for a relation are
/// candidates for conflicting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyValue {
    values: Vec<Value>,
}

impl KeyValue {
    /// Creates a key value from its component values.
    pub fn from_values(values: Vec<Value>) -> Self {
        KeyValue { values }
    }

    /// Creates a key value of text components.
    pub fn of_text<S: AsRef<str>>(values: &[S]) -> Self {
        KeyValue { values: values.iter().map(|s| Value::text(s.as_ref())).collect() }
    }

    /// The key component values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of key components.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::of_text(&["rat", "prot1", "immune"]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::text("rat")));
        assert_eq!(t.get(3), None);
        assert_eq!(t.values()[2], Value::text("immune"));
    }

    #[test]
    fn with_value_replaces_single_attribute() {
        let t = Tuple::of_text(&["rat", "prot1", "cell-metab"]);
        let t2 = t.with_value(2, Value::text("immune"));
        assert_eq!(t.get(2), Some(&Value::text("cell-metab")));
        assert_eq!(t2.get(2), Some(&Value::text("immune")));
        assert_eq!(t2.get(0), Some(&Value::text("rat")));
    }

    #[test]
    fn projection_preserves_order() {
        let t = Tuple::of_text(&["rat", "prot1", "immune"]);
        assert_eq!(t.project(&[2, 0]), vec![Value::text("immune"), Value::text("rat")]);
    }

    #[test]
    fn display_formats() {
        let t = Tuple::of_text(&["mouse", "prot2"]);
        assert_eq!(t.to_string(), "(mouse, prot2)");
        let k = KeyValue::of_text(&["mouse", "prot2"]);
        assert_eq!(k.to_string(), "[mouse, prot2]");
    }

    #[test]
    fn key_value_equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(KeyValue::of_text(&["rat", "prot1"]));
        assert!(set.contains(&KeyValue::of_text(&["rat", "prot1"])));
        assert!(!set.contains(&KeyValue::of_text(&["rat", "prot2"])));
    }

    #[test]
    fn tuples_are_ordered_lexicographically() {
        let a = Tuple::of_text(&["a", "b"]);
        let b = Tuple::of_text(&["a", "c"]);
        assert!(a < b);
    }

    #[test]
    fn into_values_round_trip() {
        let t = Tuple::new(vec![Value::int(1), Value::text("x")]);
        let vs = t.clone().into_values();
        assert_eq!(Tuple::from(vs), t);
    }
}
