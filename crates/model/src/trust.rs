//! Trust policies: acceptance rules, update predicates and the transaction
//! priority function `pri_i(X)`.
//!
//! Each participant `p_i` carries a set of acceptance rules `A(p_i)`, each a
//! pair `(θ, v)` of a predicate over updates and an integer priority. The
//! priority of a transaction `X` relative to `p_i` is
//!
//! * `0` if any update in `X` is untrusted (no rule with `v > 0` matches), and
//! * the maximum matching `v` otherwise.
//!
//! A participant implicitly trusts its own updates above everything else
//! ([`Priority::OWN`]).

use crate::ids::{ParticipantId, Priority};
use crate::transaction::Transaction;
use crate::update::{Update, UpdateKind};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate `θ` over updates, used by acceptance rules.
///
/// Predicates can inspect the origin of an update, the relation it targets,
/// its kind, and the values it writes. Compound predicates are built with
/// [`Predicate::And`], [`Predicate::Or`] and [`Predicate::Not`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Matches every update.
    True,
    /// Matches no update.
    False,
    /// Matches updates originated by the given participant.
    FromParticipant(ParticipantId),
    /// Matches updates originated by any of the given participants.
    FromAnyOf(Vec<ParticipantId>),
    /// Matches updates over the named relation.
    OverRelation(String),
    /// Matches updates of the given kind.
    OfKind(UpdateKind),
    /// Matches updates whose *written* tuple has the given value in the named
    /// column (insertions and modifications only).
    WritesValue {
        /// Column name inspected in the written tuple.
        column: String,
        /// Value the column must equal.
        equals: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against an update. Column lookups that cannot
    /// be resolved (unknown relation or column) evaluate to `false` rather
    /// than erroring, so that a policy written for one schema degrades safely.
    pub fn matches(&self, update: &Update, schema: &crate::schema::Schema) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::FromParticipant(p) => update.origin == *p,
            Predicate::FromAnyOf(ps) => ps.contains(&update.origin),
            Predicate::OverRelation(r) => update.relation == *r,
            Predicate::OfKind(k) => update.kind() == *k,
            Predicate::WritesValue { column, equals } => {
                let Some(written) = update.written_tuple() else { return false };
                let Ok(rel) = schema.relation(&update.relation) else { return false };
                let Ok(idx) = rel.column_index(column) else { return false };
                written.values().get(idx) == Some(equals)
            }
            Predicate::And(ps) => ps.iter().all(|p| p.matches(update, schema)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(update, schema)),
            Predicate::Not(p) => !p.matches(update, schema),
        }
    }

    /// Convenience: conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(vec![self, other])
    }

    /// Convenience: disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(vec![self, other])
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("true"),
            Predicate::False => f.write_str("false"),
            Predicate::FromParticipant(p) => write!(f, "from({p})"),
            Predicate::FromAnyOf(ps) => {
                f.write_str("from-any(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::OverRelation(r) => write!(f, "relation({r})"),
            Predicate::OfKind(k) => write!(f, "kind({k})"),
            Predicate::WritesValue { column, equals } => write!(f, "{column}={equals}"),
            Predicate::And(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::Or(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

/// An acceptance rule `(θ, v)`: a predicate plus the priority assigned to
/// updates satisfying it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptanceRule {
    /// Predicate over updates.
    pub predicate: Predicate,
    /// Priority assigned to matching updates (0 would mean untrusted, so
    /// useful rules carry a positive priority).
    pub priority: Priority,
}

impl AcceptanceRule {
    /// Creates an acceptance rule.
    pub fn new(predicate: Predicate, priority: impl Into<Priority>) -> Self {
        AcceptanceRule { predicate, priority: priority.into() }
    }

    /// The common case in the paper's figures: "updates from participant `p`
    /// get priority `v`".
    pub fn trust_participant(p: ParticipantId, priority: impl Into<Priority>) -> Self {
        AcceptanceRule::new(Predicate::FromParticipant(p), priority)
    }
}

/// The trust policy `A(p_i)` of one participant: its identity plus its set of
/// acceptance rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustPolicy {
    owner: ParticipantId,
    rules: Vec<AcceptanceRule>,
}

impl TrustPolicy {
    /// Creates an empty policy for a participant (it still trusts itself).
    pub fn new(owner: ParticipantId) -> Self {
        TrustPolicy { owner, rules: Vec::new() }
    }

    /// The participant that owns this policy.
    pub fn owner(&self) -> ParticipantId {
        self.owner
    }

    /// The acceptance rules.
    pub fn rules(&self) -> &[AcceptanceRule] {
        &self.rules
    }

    /// Adds an acceptance rule.
    pub fn add_rule(&mut self, rule: AcceptanceRule) {
        self.rules.push(rule);
    }

    /// Builder-style variant of [`TrustPolicy::add_rule`].
    pub fn with_rule(mut self, rule: AcceptanceRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Builder-style shorthand for "updates from `p` get priority `v`".
    pub fn trusting(mut self, p: ParticipantId, priority: impl Into<Priority>) -> Self {
        self.add_rule(AcceptanceRule::trust_participant(p, priority));
        self
    }

    /// The priority this policy assigns to a single update: the participant's
    /// own updates get [`Priority::OWN`]; otherwise the maximum priority of
    /// any matching rule, or [`Priority::UNTRUSTED`] if none matches with a
    /// positive priority.
    pub fn priority_of_update(&self, update: &Update, schema: &crate::schema::Schema) -> Priority {
        if update.origin == self.owner {
            return Priority::OWN;
        }
        self.rules
            .iter()
            .filter(|r| r.priority.is_trusted() && r.predicate.matches(update, schema))
            .map(|r| r.priority)
            .max()
            .unwrap_or(Priority::UNTRUSTED)
    }

    /// The paper's `pri_i(X)`: `0` if any update in the transaction is
    /// untrusted, otherwise the maximum priority over all matching rules and
    /// component updates.
    pub fn priority_of_transaction(
        &self,
        txn: &Transaction,
        schema: &crate::schema::Schema,
    ) -> Priority {
        let mut max = Priority::UNTRUSTED;
        for u in txn.updates() {
            let p = self.priority_of_update(u, schema);
            if p.is_untrusted() {
                return Priority::UNTRUSTED;
            }
            max = max.max(p);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::bioinformatics_schema;
    use crate::tuple::Tuple;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn func(org: &str, prot: &str, f: &str) -> Tuple {
        Tuple::of_text(&[org, prot, f])
    }

    #[test]
    fn origin_predicate() {
        let schema = bioinformatics_schema();
        let u = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        assert!(Predicate::FromParticipant(p(3)).matches(&u, &schema));
        assert!(!Predicate::FromParticipant(p(2)).matches(&u, &schema));
        assert!(Predicate::FromAnyOf(vec![p(1), p(3)]).matches(&u, &schema));
        assert!(!Predicate::FromAnyOf(vec![p(1), p(2)]).matches(&u, &schema));
    }

    #[test]
    fn relation_kind_and_value_predicates() {
        let schema = bioinformatics_schema();
        let u = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        assert!(Predicate::OverRelation("Function".into()).matches(&u, &schema));
        assert!(!Predicate::OverRelation("XRef".into()).matches(&u, &schema));
        assert!(Predicate::OfKind(UpdateKind::Insert).matches(&u, &schema));
        assert!(!Predicate::OfKind(UpdateKind::Delete).matches(&u, &schema));
        assert!(Predicate::WritesValue { column: "organism".into(), equals: "rat".into() }
            .matches(&u, &schema));
        assert!(!Predicate::WritesValue { column: "organism".into(), equals: "mouse".into() }
            .matches(&u, &schema));
        // Unknown column degrades to false rather than erroring.
        assert!(!Predicate::WritesValue { column: "nope".into(), equals: "rat".into() }
            .matches(&u, &schema));
        // Deletions write nothing, so WritesValue never matches them.
        let d = Update::delete("Function", func("rat", "prot1", "immune"), p(3));
        assert!(!Predicate::WritesValue { column: "organism".into(), equals: "rat".into() }
            .matches(&d, &schema));
    }

    #[test]
    fn boolean_combinators() {
        let schema = bioinformatics_schema();
        let u = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        let from3 = Predicate::FromParticipant(p(3));
        let over_func = Predicate::OverRelation("Function".into());
        assert!(from3.clone().and(over_func.clone()).matches(&u, &schema));
        assert!(!from3.clone().and(Predicate::False).matches(&u, &schema));
        assert!(Predicate::False.or(over_func).matches(&u, &schema));
        assert!(!Predicate::Not(Box::new(from3)).matches(&u, &schema));
        assert!(Predicate::True.matches(&u, &schema));
        assert!(!Predicate::False.matches(&u, &schema));
    }

    #[test]
    fn own_updates_always_have_top_priority() {
        let schema = bioinformatics_schema();
        let policy = TrustPolicy::new(p(1));
        let own = Update::insert("Function", func("rat", "prot1", "immune"), p(1));
        assert_eq!(policy.priority_of_update(&own, &schema), Priority::OWN);
    }

    #[test]
    fn unmatched_updates_are_untrusted() {
        let schema = bioinformatics_schema();
        let policy = TrustPolicy::new(p(1)).trusting(p(2), 5u32);
        let from3 = Update::insert("Function", func("rat", "prot1", "immune"), p(3));
        assert_eq!(policy.priority_of_update(&from3, &schema), Priority::UNTRUSTED);
    }

    #[test]
    fn max_priority_wins_for_updates() {
        let schema = bioinformatics_schema();
        let policy = TrustPolicy::new(p(1)).trusting(p(2), 1u32).with_rule(AcceptanceRule::new(
            Predicate::FromParticipant(p(2)).and(Predicate::OverRelation("Function".into())),
            4u32,
        ));
        let u = Update::insert("Function", func("rat", "prot1", "immune"), p(2));
        assert_eq!(policy.priority_of_update(&u, &schema), Priority(4));
        let xref = Update::insert("XRef", Tuple::of_text(&["rat", "prot1", "db", "a"]), p(2));
        assert_eq!(policy.priority_of_update(&xref, &schema), Priority(1));
    }

    #[test]
    fn transaction_priority_is_zero_if_any_update_untrusted() {
        let schema = bioinformatics_schema();
        // Trust p2 only for the Function relation.
        let policy = TrustPolicy::new(p(1)).with_rule(AcceptanceRule::new(
            Predicate::FromParticipant(p(2)).and(Predicate::OverRelation("Function".into())),
            3u32,
        ));
        let trusted = Transaction::from_parts(
            p(2),
            0,
            vec![Update::insert("Function", func("rat", "prot1", "immune"), p(2))],
        )
        .unwrap();
        assert_eq!(policy.priority_of_transaction(&trusted, &schema), Priority(3));

        let mixed = Transaction::from_parts(
            p(2),
            1,
            vec![
                Update::insert("Function", func("rat", "prot1", "immune"), p(2)),
                Update::insert("XRef", Tuple::of_text(&["rat", "prot1", "db", "a"]), p(2)),
            ],
        )
        .unwrap();
        assert_eq!(policy.priority_of_transaction(&mixed, &schema), Priority::UNTRUSTED);
    }

    #[test]
    fn figure1_policies() {
        // p1 trusts p2 and p3 at priority 1; p2 trusts p1 at 2 and p3 at 1;
        // p3 trusts only p2 at 1.
        let schema = bioinformatics_schema();
        let p1_policy = TrustPolicy::new(p(1)).trusting(p(2), 1u32).trusting(p(3), 1u32);
        let p2_policy = TrustPolicy::new(p(2)).trusting(p(1), 2u32).trusting(p(3), 1u32);
        let p3_policy = TrustPolicy::new(p(3)).trusting(p(2), 1u32);

        let from1 = Update::insert("Function", func("a", "b", "c"), p(1));
        let from2 = Update::insert("Function", func("a", "b", "c"), p(2));
        let from3 = Update::insert("Function", func("a", "b", "c"), p(3));

        assert_eq!(p1_policy.priority_of_update(&from2, &schema), Priority(1));
        assert_eq!(p1_policy.priority_of_update(&from3, &schema), Priority(1));
        assert_eq!(p2_policy.priority_of_update(&from1, &schema), Priority(2));
        assert_eq!(p2_policy.priority_of_update(&from3, &schema), Priority(1));
        assert_eq!(p3_policy.priority_of_update(&from2, &schema), Priority(1));
        assert_eq!(p3_policy.priority_of_update(&from1, &schema), Priority::UNTRUSTED);
    }

    #[test]
    fn display_of_predicates() {
        let pred = Predicate::FromParticipant(p(2)).and(Predicate::OverRelation("F".into()));
        let s = pred.to_string();
        assert!(s.contains("from(p2)"));
        assert!(s.contains("relation(F)"));
        assert!(s.contains("AND"));
    }

    #[test]
    fn serde_round_trip() {
        let policy = TrustPolicy::new(p(1)).trusting(p(2), 1u32).with_rule(AcceptanceRule::new(
            Predicate::WritesValue { column: "organism".into(), equals: "rat".into() },
            7u32,
        ));
        let json = serde_json::to_string(&policy).unwrap();
        let back: TrustPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
    }
}
