//! Identifiers used throughout the CDSS: participants, transactions, epochs,
//! reconciliations, causal stamps, and trust priorities.

use crate::causal::{AntichainClock, StampId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a participant (peer) in the CDSS confederation.
///
/// Participants are the unit of autonomy in the paper: each one owns a local
/// database instance, publishes transactions annotated with its identity, and
/// reconciles against the update store according to its own trust policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParticipantId(pub u32);

impl ParticipantId {
    /// Returns the raw numeric identifier.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ParticipantId {
    fn from(v: u32) -> Self {
        ParticipantId(v)
    }
}

/// Globally unique transaction identifier `X_{i:j}`: the originating
/// participant `i` plus a per-participant local sequence number `j`.
///
/// The paper assumes local identifiers are assigned in increasing order, so
/// ordering first by participant then by local id gives a total order that is
/// consistent with each participant's publication order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransactionId {
    /// Originating participant (the `i` in `X_{i:j}`).
    pub participant: ParticipantId,
    /// Local, monotonically increasing sequence number (the `j`).
    pub local: u64,
}

impl TransactionId {
    /// Creates a transaction identifier.
    pub fn new(participant: ParticipantId, local: u64) -> Self {
        TransactionId { participant, local }
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}:{}", self.participant.0, self.local)
    }
}

/// A reconciliation/publication epoch.
///
/// The update store owns a single monotonically increasing epoch counter; it
/// is incremented each time a participant publishes. Epoch 0 is the initial,
/// empty state; the first publication defines the beginning of epoch 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The epoch before any publication has happened.
    pub const ZERO: Epoch = Epoch(0);

    /// Returns the next epoch.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Returns the raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A causal publication stamp: the multi-writer replacement for a scalar
/// [`Epoch`].
///
/// In causal mode every published batch is stamped by its *publisher* with
/// its own per-publisher sequence number (no shared counter) plus the
/// [`AntichainClock`] frontier the batch causally descends from — the
/// events the publisher had observed when it published. Stamps of one
/// publisher form a chain (`seq` is 1-based and gapless), so the store can
/// ingest them in any interleaving, and a partitioned publisher can keep
/// stamping offline; the DAG spanned by `parents` is what
/// [`crate::causal::compare_clocks`] walks to order or merge histories.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CausalStamp {
    /// The publishing participant.
    pub publisher: ParticipantId,
    /// Its per-publisher sequence number (1-based, allocated by the
    /// publisher itself).
    pub seq: u64,
    /// The frontier of events this publication causally descends from.
    pub parents: AntichainClock,
}

impl CausalStamp {
    /// Creates a stamp.
    pub fn new(publisher: ParticipantId, seq: u64, parents: AntichainClock) -> Self {
        CausalStamp { publisher, seq, parents }
    }

    /// The stamp's identity in the causal DAG.
    pub fn id(&self) -> StampId {
        StampId::new(self.publisher, self.seq)
    }
}

impl fmt::Display for CausalStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}<-{}", self.publisher, self.seq, self.parents)
    }
}

/// Identifies one reconciliation operation performed by a participant
/// (the `recno` of the paper's Figure 4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReconciliationId(pub u64);

impl ReconciliationId {
    /// Returns the next reconciliation number.
    pub fn next(self) -> ReconciliationId {
        ReconciliationId(self.0 + 1)
    }
}

impl fmt::Display for ReconciliationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recno{}", self.0)
    }
}

/// A trust priority assigned by an acceptance rule.
///
/// The paper uses non-negative integers where `0` means *untrusted*; larger
/// values mean more authoritative. [`Priority::UNTRUSTED`] is the bottom
/// element.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Priority(pub u32);

impl Priority {
    /// The priority of an untrusted transaction.
    pub const UNTRUSTED: Priority = Priority(0);

    /// Priority used for a participant's own updates, which it always trusts
    /// above anything imported from others.
    pub const OWN: Priority = Priority(u32::MAX);

    /// Returns true if the priority denotes an untrusted transaction.
    pub fn is_untrusted(self) -> bool {
        self.0 == 0
    }

    /// Returns true if the priority denotes a trusted transaction.
    pub fn is_trusted(self) -> bool {
        self.0 > 0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u32::MAX {
            write!(f, "own")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<u32> for Priority {
    fn from(v: u32) -> Self {
        Priority(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_ids_order_by_participant_then_local() {
        let a = TransactionId::new(ParticipantId(1), 5);
        let b = TransactionId::new(ParticipantId(2), 0);
        let c = TransactionId::new(ParticipantId(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch::ZERO.next(), Epoch(1));
        assert_eq!(Epoch(41).next(), Epoch(42));
    }

    #[test]
    fn priority_trust_predicates() {
        assert!(Priority::UNTRUSTED.is_untrusted());
        assert!(!Priority::UNTRUSTED.is_trusted());
        assert!(Priority(1).is_trusted());
        assert!(Priority::OWN.is_trusted());
        assert!(Priority::OWN > Priority(1_000_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ParticipantId(3).to_string(), "p3");
        assert_eq!(TransactionId::new(ParticipantId(3), 1).to_string(), "X3:1");
        assert_eq!(Epoch(4).to_string(), "e4");
        assert_eq!(Priority(7).to_string(), "7");
        assert_eq!(Priority::OWN.to_string(), "own");
    }

    #[test]
    fn priority_ordering_matches_numeric_ordering() {
        assert!(Priority(2) > Priority(1));
        assert!(Priority(1) > Priority::UNTRUSTED);
    }
}
