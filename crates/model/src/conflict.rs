//! Conflict kinds and conflict-group keys.
//!
//! The reconciliation algorithm groups deferred conflicts into *conflict
//! groups*: conflicts of the same [`ConflictKind`] over the same key value of
//! the same relation (Section 5 of the paper). Within a group, transactions
//! that make the same modification form an *option*; the user resolves a
//! group by picking at most one option.

use crate::intern::RelName;
use crate::tuple::KeyValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a pairwise conflict between updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConflictKind {
    /// Two insertions write the same key with different non-key attributes.
    DivergentInsert,
    /// A deletion collides with an insertion or replacement of the same key.
    DeleteVersusWrite,
    /// Two replacements of the same source tuple write different targets.
    DivergentModify,
    /// Applying the update would violate an integrity constraint of the
    /// reconciling participant's instance.
    ConstraintViolation,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictKind::DivergentInsert => "divergent-insert",
            ConflictKind::DeleteVersusWrite => "delete-versus-write",
            ConflictKind::DivergentModify => "divergent-modify",
            ConflictKind::ConstraintViolation => "constraint-violation",
        };
        f.write_str(s)
    }
}

/// Identifies a conflict group: the `(type, value)` pair of the paper's
/// `UpdateSoftState` helper, qualified with the relation name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConflictKey {
    /// The kind of conflict.
    pub kind: ConflictKind,
    /// Relation over which the conflict arose.
    pub relation: RelName,
    /// The key value that both sides of the conflict touch.
    pub key: KeyValue,
}

impl ConflictKey {
    /// Creates a conflict-group key.
    pub fn new(kind: ConflictKind, relation: impl Into<RelName>, key: KeyValue) -> Self {
        ConflictKey { kind, relation: relation.into(), key }
    }
}

impl fmt::Display for ConflictKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}{}", self.kind, self.relation, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_keys_group_by_kind_relation_and_key() {
        use std::collections::HashSet;
        let a = ConflictKey::new(
            ConflictKind::DivergentInsert,
            "Function",
            KeyValue::of_text(&["rat", "prot1"]),
        );
        let b = ConflictKey::new(
            ConflictKind::DivergentInsert,
            "Function",
            KeyValue::of_text(&["rat", "prot1"]),
        );
        let c = ConflictKey::new(
            ConflictKind::DeleteVersusWrite,
            "Function",
            KeyValue::of_text(&["rat", "prot1"]),
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(c);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let k = ConflictKey::new(
            ConflictKind::DivergentModify,
            "Function",
            KeyValue::of_text(&["mouse", "prot2"]),
        );
        let s = k.to_string();
        assert!(s.contains("divergent-modify"));
        assert!(s.contains("Function"));
        assert!(s.contains("mouse"));
    }

    #[test]
    fn kinds_are_ordered_and_displayable() {
        assert!(ConflictKind::DivergentInsert < ConflictKind::ConstraintViolation);
        assert_eq!(ConflictKind::ConstraintViolation.to_string(), "constraint-violation");
    }
}
