//! Integrity constraints and their evaluation.
//!
//! Beyond the primary keys declared in each [`crate::schema::RelationSchema`],
//! a [`crate::schema::Schema`] may declare foreign-key and uniqueness
//! constraints. An update is *incompatible with an instance* (Section 4 of the
//! paper) if applying it would violate one of these constraints; the
//! reconciliation algorithm rejects such updates in `CheckState`.

use crate::error::{ModelError, Result};
use crate::schema::Schema;
use crate::tuple::{KeyValue, Tuple};
use crate::update::{Update, UpdateOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Read-only view of a database instance, sufficient to evaluate integrity
/// constraints and to detect incompatibility between an update and the
/// current state. Implemented by the storage engine.
pub trait InstanceView {
    /// Looks up the tuple with the given primary key in a relation.
    fn get_by_key(&self, relation: &str, key: &KeyValue) -> Option<Tuple>;

    /// Returns true if the relation currently contains exactly this tuple.
    fn contains_tuple(&self, relation: &str, tuple: &Tuple) -> bool {
        self.scan(relation).iter().any(|t| t == tuple)
    }

    /// Returns all tuples of the relation. Intended for constraint checking
    /// and tests, not as a high-performance access path.
    fn scan(&self, relation: &str) -> Vec<Tuple>;
}

/// A declared integrity constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// Every value of `columns` in `relation` must appear as the value of
    /// `ref_columns` in `ref_relation`.
    ForeignKey {
        /// Referencing relation.
        relation: String,
        /// Referencing columns, in order.
        columns: Vec<String>,
        /// Referenced relation.
        ref_relation: String,
        /// Referenced columns, in order (must be the referenced relation's
        /// primary key for lookup efficiency).
        ref_columns: Vec<String>,
    },
    /// The listed columns must be unique across the relation (a secondary
    /// uniqueness constraint in addition to the primary key).
    Unique {
        /// Constrained relation.
        relation: String,
        /// Columns that must be jointly unique.
        columns: Vec<String>,
    },
}

impl Constraint {
    /// A short human-readable name for error messages.
    pub fn name(&self) -> String {
        match self {
            Constraint::ForeignKey { relation, ref_relation, .. } => {
                format!("fk:{relation}->{ref_relation}")
            }
            Constraint::Unique { relation, columns } => {
                format!("unique:{relation}({})", columns.join(","))
            }
        }
    }

    /// The relation whose modifications can violate this constraint directly.
    pub fn constrained_relation(&self) -> &str {
        match self {
            Constraint::ForeignKey { relation, .. } => relation,
            Constraint::Unique { relation, .. } => relation,
        }
    }

    /// Checks that the constraint references only relations and columns that
    /// exist in the schema.
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        match self {
            Constraint::ForeignKey { relation, columns, ref_relation, ref_columns } => {
                let rel = schema.relation(relation)?;
                let fref = schema.relation(ref_relation)?;
                for c in columns {
                    rel.column_index(c)?;
                }
                for c in ref_columns {
                    fref.column_index(c)?;
                }
                if columns.len() != ref_columns.len() {
                    return Err(ModelError::InvalidSchema(format!(
                        "foreign key `{}` has {} referencing columns but {} referenced columns",
                        self.name(),
                        columns.len(),
                        ref_columns.len()
                    )));
                }
                Ok(())
            }
            Constraint::Unique { relation, columns } => {
                let rel = schema.relation(relation)?;
                if columns.is_empty() {
                    return Err(ModelError::InvalidSchema(format!(
                        "uniqueness constraint on `{relation}` lists no columns"
                    )));
                }
                for c in columns {
                    rel.column_index(c)?;
                }
                Ok(())
            }
        }
    }

    /// Checks whether applying `update` to the instance `view` would violate
    /// this constraint. The check is conservative in the direction the paper
    /// needs: an update that would leave dangling references or duplicate
    /// unique values is reported as a violation.
    pub fn check_update(
        &self,
        schema: &Schema,
        view: &dyn InstanceView,
        update: &Update,
    ) -> Result<()> {
        match self {
            Constraint::ForeignKey { relation, columns, ref_relation, ref_columns } => {
                // Writes into the referencing relation must point at an
                // existing referenced tuple.
                if update.relation == *relation {
                    if let Some(written) = update.written_tuple() {
                        let rel = schema.relation(relation)?;
                        let fref = schema.relation(ref_relation)?;
                        let fk_value: Vec<_> = columns
                            .iter()
                            .map(|c| rel.column_index(c).map(|i| written.values()[i].clone()))
                            .collect::<Result<_>>()?;
                        // Only enforce when the referenced columns are the
                        // referenced relation's key (declared usage).
                        let ref_key_names = fref.key_column_names();
                        if ref_key_names
                            == ref_columns.iter().map(String::as_str).collect::<Vec<_>>()
                        {
                            let key = KeyValue::from_values(fk_value);
                            if view.get_by_key(ref_relation, &key).is_none() {
                                return Err(ModelError::ConstraintViolation {
                                    constraint: self.name(),
                                    detail: format!("no tuple in `{ref_relation}` with key {key}"),
                                });
                            }
                        }
                    }
                }
                // Deletions from the referenced relation must not strand
                // referencing tuples.
                if update.relation == *ref_relation {
                    if let UpdateOp::Delete(deleted) = &update.op {
                        let fref = schema.relation(ref_relation)?;
                        let rel = schema.relation(relation)?;
                        let ref_value: Vec<_> = ref_columns
                            .iter()
                            .map(|c| fref.column_index(c).map(|i| deleted.values()[i].clone()))
                            .collect::<Result<_>>()?;
                        let col_idx: Vec<_> =
                            columns.iter().map(|c| rel.column_index(c)).collect::<Result<_>>()?;
                        let dangling = view.scan(relation).iter().any(|t| {
                            col_idx.iter().zip(&ref_value).all(|(&i, v)| &t.values()[i] == v)
                        });
                        if dangling {
                            return Err(ModelError::ConstraintViolation {
                                constraint: self.name(),
                                detail: format!(
                                    "deleting {deleted} from `{ref_relation}` would strand references"
                                ),
                            });
                        }
                    }
                }
                Ok(())
            }
            Constraint::Unique { relation, columns } => {
                if update.relation != *relation {
                    return Ok(());
                }
                let Some(written) = update.written_tuple() else { return Ok(()) };
                let rel = schema.relation(relation)?;
                let col_idx: Vec<_> =
                    columns.iter().map(|c| rel.column_index(c)).collect::<Result<_>>()?;
                let written_vals: Vec<_> =
                    col_idx.iter().map(|&i| written.values()[i].clone()).collect();
                let replaced = update.read_tuple();
                let duplicate = view.scan(relation).iter().any(|t| {
                    Some(t) != replaced
                        && t != written
                        && col_idx.iter().zip(&written_vals).all(|(&i, v)| &t.values()[i] == v)
                });
                if duplicate {
                    return Err(ModelError::ConstraintViolation {
                        constraint: self.name(),
                        detail: format!("value {written} duplicates an existing tuple"),
                    });
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ParticipantId;
    use crate::schema::{bioinformatics_schema, ColumnDef, RelationSchema};
    use crate::value::ValueType;
    use std::collections::HashMap;

    /// Minimal in-memory instance for constraint tests.
    #[derive(Default)]
    struct MapInstance {
        tables: HashMap<String, Vec<Tuple>>,
        schema: Schema,
    }

    impl MapInstance {
        fn new(schema: Schema) -> Self {
            MapInstance { tables: HashMap::new(), schema }
        }
        fn insert(&mut self, relation: &str, tuple: Tuple) {
            self.tables.entry(relation.to_owned()).or_default().push(tuple);
        }
    }

    impl InstanceView for MapInstance {
        fn get_by_key(&self, relation: &str, key: &KeyValue) -> Option<Tuple> {
            let rel = self.schema.relation(relation).ok()?;
            self.tables.get(relation)?.iter().find(|t| &rel.key_of(t) == key).cloned()
        }
        fn scan(&self, relation: &str) -> Vec<Tuple> {
            self.tables.get(relation).cloned().unwrap_or_default()
        }
    }

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn fk_constraint() -> Constraint {
        Constraint::ForeignKey {
            relation: "XRef".into(),
            columns: vec!["organism".into(), "protein".into()],
            ref_relation: "Function".into(),
            ref_columns: vec!["organism".into(), "protein".into()],
        }
    }

    #[test]
    fn validate_against_detects_unknown_names() {
        let schema = bioinformatics_schema();
        assert!(fk_constraint().validate_against(&schema).is_ok());
        let bad = Constraint::ForeignKey {
            relation: "XRef".into(),
            columns: vec!["nope".into()],
            ref_relation: "Function".into(),
            ref_columns: vec!["organism".into()],
        };
        assert!(bad.validate_against(&schema).is_err());
        let bad_rel = Constraint::Unique { relation: "Missing".into(), columns: vec!["a".into()] };
        assert!(bad_rel.validate_against(&schema).is_err());
        let empty = Constraint::Unique { relation: "Function".into(), columns: vec![] };
        assert!(empty.validate_against(&schema).is_err());
    }

    #[test]
    fn foreign_key_insert_requires_referenced_tuple() {
        let schema = bioinformatics_schema();
        let mut inst = MapInstance::new(schema.clone());
        let fk = fk_constraint();
        let xref =
            Update::insert("XRef", Tuple::of_text(&["rat", "prot1", "genbank", "ACC1"]), p(1));
        // Missing referenced Function tuple: violation.
        assert!(fk.check_update(&schema, &inst, &xref).is_err());
        // After the Function tuple exists, the insert is fine.
        inst.insert("Function", Tuple::of_text(&["rat", "prot1", "immune"]));
        assert!(fk.check_update(&schema, &inst, &xref).is_ok());
    }

    #[test]
    fn foreign_key_delete_of_referenced_tuple_is_violation() {
        let schema = bioinformatics_schema();
        let mut inst = MapInstance::new(schema.clone());
        inst.insert("Function", Tuple::of_text(&["rat", "prot1", "immune"]));
        inst.insert("XRef", Tuple::of_text(&["rat", "prot1", "genbank", "ACC1"]));
        let fk = fk_constraint();
        let del = Update::delete("Function", Tuple::of_text(&["rat", "prot1", "immune"]), p(1));
        assert!(fk.check_update(&schema, &inst, &del).is_err());
        // Deleting a Function tuple nothing references is fine.
        inst.insert("Function", Tuple::of_text(&["mouse", "prot2", "immune"]));
        let del2 = Update::delete("Function", Tuple::of_text(&["mouse", "prot2", "immune"]), p(1));
        assert!(fk.check_update(&schema, &inst, &del2).is_ok());
    }

    #[test]
    fn unique_constraint_detects_duplicates() {
        let mut schema = Schema::new();
        schema
            .add_relation(
                RelationSchema::new(
                    "Protein",
                    vec![
                        ColumnDef::new("id", ValueType::Int),
                        ColumnDef::new("name", ValueType::Text),
                    ],
                    &["id"],
                )
                .unwrap(),
            )
            .unwrap();
        let uniq = Constraint::Unique { relation: "Protein".into(), columns: vec!["name".into()] };
        schema.add_constraint(uniq.clone()).unwrap();
        let mut inst = MapInstance::new(schema.clone());
        inst.insert("Protein", Tuple::new(vec![1.into(), "p53".into()]));

        let dup = Update::insert("Protein", Tuple::new(vec![2.into(), "p53".into()]), p(1));
        assert!(uniq.check_update(&schema, &inst, &dup).is_err());

        let fresh = Update::insert("Protein", Tuple::new(vec![2.into(), "brca1".into()]), p(1));
        assert!(uniq.check_update(&schema, &inst, &fresh).is_ok());

        // Replacing the very tuple that holds the value is not a violation.
        let replace = Update::modify(
            "Protein",
            Tuple::new(vec![1.into(), "p53".into()]),
            Tuple::new(vec![1.into(), "p53".into()]),
            p(1),
        );
        assert!(uniq.check_update(&schema, &inst, &replace).is_ok());
    }

    #[test]
    fn unrelated_updates_do_not_trip_constraints() {
        let schema = bioinformatics_schema();
        let inst = MapInstance::new(schema.clone());
        let fk = fk_constraint();
        let upd = Update::insert("Function", Tuple::of_text(&["rat", "prot1", "immune"]), p(1));
        assert!(fk.check_update(&schema, &inst, &upd).is_ok());
    }

    #[test]
    fn names_and_display() {
        let fk = fk_constraint();
        assert_eq!(fk.constrained_relation(), "XRef");
        assert!(fk.to_string().contains("fk:XRef->Function"));
    }
}
