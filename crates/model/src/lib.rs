//! Data model for the Orchestra collaborative data sharing system (CDSS).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace, corresponding to Section 3 and Section 4 of *"Reconciling while
//! Tolerating Disagreement in Collaborative Data Sharing"* (Taylor & Ives,
//! SIGMOD 2006):
//!
//! * [`Value`], [`Tuple`], [`RelationSchema`] and [`Schema`] — the relational
//!   data model the participants share.
//! * [`Update`] and [`Transaction`] — provenance-annotated insertions,
//!   deletions and modifications, grouped into transactions identified by
//!   their originating participant.
//! * [`flatten`] — the Heraclitus-style net-effect computation used to remove
//!   intermediate steps from a chain of updates before conflict detection.
//! * [`TrustPolicy`] and [`AcceptanceRule`] — per-participant acceptance rules
//!   mapping predicates over updates to integer trust priorities, and the
//!   `pri_i(X)` transaction-priority function.
//! * [`conflict`] — the conflict relation between updates and between
//!   transactions, and the conflict-group key used to cluster deferred
//!   conflicts.
//! * [`Constraint`] — integrity constraints (primary key, foreign key,
//!   not-null) and their evaluation against an [`InstanceView`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod causal;
pub mod conflict;
pub mod constraint;
pub mod error;
pub mod flatten;
pub mod ids;
pub mod intern;
pub mod schema;
pub mod transaction;
pub mod trust;
pub mod tuple;
pub mod update;
pub mod value;

pub use causal::{compare_clocks, AntichainClock, CausalRelation, StampId};
pub use conflict::{ConflictKey, ConflictKind};
pub use constraint::{Constraint, InstanceView};
pub use error::{ModelError, Result};
pub use flatten::flatten;
pub use ids::{CausalStamp, Epoch, ParticipantId, Priority, ReconciliationId, TransactionId};
pub use intern::RelName;
pub use schema::{ColumnDef, RelationSchema, Schema};
pub use transaction::Transaction;
pub use trust::{AcceptanceRule, Predicate, TrustPolicy};
pub use tuple::{KeyValue, Tuple};
pub use update::{Update, UpdateKind, UpdateOp};
pub use value::{Value, ValueType};
