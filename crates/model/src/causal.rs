//! Causal version stamps and antichain clocks.
//!
//! The paper's update store orders publications with a single scalar epoch
//! counter (an SQL sequence): every publish serialises through one allocator,
//! and a partitioned participant cannot publish at all. This module replaces
//! that counter — behind a mode switch — with a *causal DAG* in the style of
//! causal version graphs: each publisher allocates its own totally-ordered
//! sequence of [`StampId`]s, every published batch carries a
//! [`crate::ids::CausalStamp`] naming the frontier it causally descends from,
//! and two histories are compared by walking the DAG backwards.
//!
//! # Nomenclature
//!
//! * A **stamp id** `p3:7` is one event: publisher 3's seventh publication.
//!   Stamps of one publisher form a chain (`p3:7` descends from `p3:6`).
//! * An [`AntichainClock`] is a set of stamp ids none of which is an ancestor
//!   of another — the *frontier* of a causal history. Because each
//!   publisher's stamps are totally ordered, an antichain holds at most one
//!   stamp per publisher.
//! * [`CausalRelation`] is the result of comparing two clocks: `Equal`,
//!   `StrictDescends` (with a forward chain witnessing the descent),
//!   `StrictAscends`, `DivergedSince` (with the meet — the greatest common
//!   frontier), `Disjoint`, or `BudgetExceeded` when the backward traversal
//!   hit its budget.
//!
//! The comparator ([`compare_clocks`]) runs a backward breadth-first search
//! from both frontiers toward common ancestors, bounded by a traversal
//! budget so that a deep history cannot stall a store-side comparison; the
//! forward chain reported for `StrictDescends` is recovered from the BFS
//! parent pointers and runs oldest → newest. Coverage and meets are computed
//! per publisher *chain* (reaching `p:n` implicitly reaches `p:1..n`), so
//! same-publisher comparisons cost no traversal and verdicts stay correct
//! when intermediate history has been pruned below the retention horizon.

use crate::ids::ParticipantId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// One event in the causal DAG: a publisher plus its per-publisher sequence
/// number (1-based; sequence 0 never exists, the empty clock is the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StampId {
    /// The publishing participant.
    pub publisher: ParticipantId,
    /// Its per-publisher sequence number, allocated 1, 2, 3, … by the
    /// publisher itself (not by a shared counter).
    pub seq: u64,
}

impl StampId {
    /// Creates a stamp id.
    pub fn new(publisher: ParticipantId, seq: u64) -> Self {
        StampId { publisher, seq }
    }

    /// The deterministic tie-break between two stamps that the scalar order
    /// cannot separate: deeper per-publisher chains first, then the smaller
    /// publisher id. Total, antisymmetric, and independent of arrival order —
    /// the WAL segment merge and conflict bookkeeping use it so every replica
    /// linearises ties identically.
    pub fn tie_break(self, other: StampId) -> std::cmp::Ordering {
        other.seq.cmp(&self.seq).then(self.publisher.cmp(&other.publisher))
    }
}

impl fmt::Display for StampId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.publisher, self.seq)
    }
}

/// A frontier of a causal history: a set of [`StampId`]s none of which is an
/// ancestor of another. Because each publisher's stamps form a chain, the
/// clock keeps at most one stamp per publisher — inserting `p3:7` absorbs
/// `p3:5`. Members are held sorted by publisher, so equal clocks compare,
/// hash, render and serialise identically regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AntichainClock {
    members: Vec<StampId>,
}

impl AntichainClock {
    /// The empty clock — the root every history descends from.
    pub fn new() -> Self {
        AntichainClock { members: Vec::new() }
    }

    /// Builds a clock from arbitrary stamps, keeping the deepest per
    /// publisher.
    pub fn from_stamps(stamps: impl IntoIterator<Item = StampId>) -> Self {
        let mut clock = AntichainClock::new();
        for stamp in stamps {
            clock.insert(stamp);
        }
        clock
    }

    /// True if no event has happened yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct publishers on the frontier.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// The frontier members, sorted by publisher.
    pub fn members(&self) -> &[StampId] {
        &self.members
    }

    /// The frontier's sequence number for a publisher, if that publisher has
    /// published.
    pub fn seq_of(&self, publisher: ParticipantId) -> Option<u64> {
        self.members
            .binary_search_by_key(&publisher, |s| s.publisher)
            .ok()
            .map(|idx| self.members[idx].seq)
    }

    /// True if the clock's per-publisher entry is at or past the stamp —
    /// i.e. the stamp is on or behind the frontier *along its own
    /// publisher's chain*. (Cross-publisher ancestry needs the DAG; see
    /// [`compare_clocks`].)
    pub fn covers(&self, stamp: StampId) -> bool {
        self.seq_of(stamp.publisher).is_some_and(|seq| seq >= stamp.seq)
    }

    /// Inserts a stamp, absorbing any shallower stamp of the same publisher.
    /// Returns true if the frontier advanced.
    pub fn insert(&mut self, stamp: StampId) -> bool {
        match self.members.binary_search_by_key(&stamp.publisher, |s| s.publisher) {
            Ok(idx) => {
                if self.members[idx].seq < stamp.seq {
                    self.members[idx].seq = stamp.seq;
                    true
                } else {
                    false
                }
            }
            Err(idx) => {
                self.members.insert(idx, stamp);
                true
            }
        }
    }

    /// Merges another clock in, keeping the deepest stamp per publisher.
    /// Returns true if the frontier advanced.
    pub fn merge(&mut self, other: &AntichainClock) -> bool {
        let mut advanced = false;
        for &stamp in &other.members {
            advanced |= self.insert(stamp);
        }
        advanced
    }
}

impl fmt::Display for AntichainClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, stamp) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{stamp}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StampId> for AntichainClock {
    fn from_iter<I: IntoIterator<Item = StampId>>(iter: I) -> Self {
        AntichainClock::from_stamps(iter)
    }
}

/// How two causal frontiers relate, per the backward-BFS comparator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalRelation {
    /// The frontiers are the same set of stamps.
    Equal,
    /// The subject strictly descends from (is causally after) the other
    /// frontier. `chain` is one forward path witnessing the descent, oldest
    /// stamp first, ending in a subject-frontier member.
    StrictDescends {
        /// A forward chain (oldest → newest) from the other frontier into
        /// the subject frontier.
        chain: Vec<StampId>,
    },
    /// The subject is strictly before the other frontier (the mirror of
    /// `StrictDescends`).
    StrictAscends,
    /// The frontiers are concurrent: each contains events the other has not
    /// seen, but they share history.
    DivergedSince {
        /// The meet — the deepest common frontier both histories descend
        /// from (empty when they share only the root).
        meet: AntichainClock,
    },
    /// The frontiers share no history at all (distinct publishers, no common
    /// ancestors) — concurrent from the root.
    Disjoint,
    /// The backward traversal spent its budget before reaching a verdict.
    BudgetExceeded {
        /// The budget that was exhausted (parent-set lookups performed).
        budget: usize,
    },
}

/// Backward breadth-first state for one side of the comparison: the stamps
/// reached so far and, for chain recovery, which child each stamp was first
/// reached from.
///
/// Because each publisher's stamps form a total chain (`p:n` descends from
/// `p:n-1` by construction), reaching `p:n` implicitly reaches the whole
/// chain below it — the per-publisher maximum (`deepest`) therefore closes
/// the ancestry without materialising it, which keeps same-publisher
/// comparisons O(1) and keeps verdicts correct even when parent sets below
/// the retention horizon have been pruned away.
struct Reach {
    seen: BTreeSet<StampId>,
    /// Deepest reached sequence per publisher (the chain-closure of `seen`).
    deepest: BTreeMap<ParticipantId, u64>,
    frontier: VecDeque<StampId>,
    /// `child_of[s]` = the stamp whose parent set first yielded `s` (absent
    /// for the roots of the search).
    child_of: BTreeMap<StampId, StampId>,
}

impl Reach {
    fn from_clock(clock: &AntichainClock) -> Self {
        let mut reach = Reach {
            seen: BTreeSet::new(),
            deepest: BTreeMap::new(),
            frontier: clock.members().iter().copied().collect(),
            child_of: BTreeMap::new(),
        };
        for &stamp in clock.members() {
            reach.insert(stamp);
        }
        reach
    }

    fn insert(&mut self, stamp: StampId) -> bool {
        let depth = self.deepest.entry(stamp.publisher).or_insert(0);
        *depth = (*depth).max(stamp.seq);
        self.seen.insert(stamp)
    }

    /// True if the search's ancestry contains the stamp, explicitly or
    /// through its publisher's chain.
    fn covers(&self, stamp: StampId) -> bool {
        self.deepest.get(&stamp.publisher).is_some_and(|&seq| seq >= stamp.seq)
    }

    /// Expands one stamp of the frontier through `parents_of`; returns false
    /// when the frontier is exhausted.
    fn step(&mut self, parents_of: &mut impl FnMut(StampId) -> Option<AntichainClock>) -> bool {
        let Some(stamp) = self.frontier.pop_front() else {
            return false;
        };
        if let Some(parents) = parents_of(stamp) {
            for &parent in parents.members() {
                if self.insert(parent) {
                    self.child_of.insert(parent, stamp);
                    self.frontier.push_back(parent);
                }
            }
        }
        true
    }

    /// Walks forward from `from` to a search root, producing the chain oldest
    /// → newest. Segments the search reached only through a publisher's
    /// implicit chain are synthesised stamp by stamp; from the first visited
    /// stamp onward the recorded child pointers take over.
    fn forward_chain(&self, from: StampId) -> Vec<StampId> {
        let mut chain = Vec::new();
        let mut cursor = from;
        if !self.seen.contains(&from) {
            // Find the shallowest *visited* stamp of the same publisher at or
            // above `from` and synthesise the chain segment up to it.
            let visited =
                self.seen.range(from..=StampId::new(from.publisher, u64::MAX)).next().copied();
            let Some(visited) = visited else {
                return vec![from];
            };
            chain.extend((from.seq..visited.seq).map(|seq| StampId::new(from.publisher, seq)));
            cursor = visited;
        }
        chain.push(cursor);
        while let Some(&child) = self.child_of.get(&cursor) {
            chain.push(child);
            cursor = child;
        }
        chain
    }
}

/// Compares two causal frontiers by backward BFS over the DAG.
///
/// `parents_of` maps a stamp to its recorded parent frontier (`None` for
/// stamps whose parent sets are unknown — e.g. pruned history — which the
/// search treats as roots). `budget` bounds the number of parent-set lookups
/// across both sides; a comparison that would exceed it returns
/// [`CausalRelation::BudgetExceeded`] instead of stalling.
pub fn compare_clocks(
    subject: &AntichainClock,
    other: &AntichainClock,
    mut parents_of: impl FnMut(StampId) -> Option<AntichainClock>,
    budget: usize,
) -> CausalRelation {
    if subject == other {
        return CausalRelation::Equal;
    }
    // The empty clock is the root: everything descends from it.
    if other.is_empty() {
        return CausalRelation::StrictDescends { chain: Vec::new() };
    }
    if subject.is_empty() {
        return CausalRelation::StrictAscends;
    }

    let mut down = Reach::from_clock(subject); // searches subject's ancestry
    let mut up = Reach::from_clock(other); // searches other's ancestry
    let mut spent = 0usize;

    loop {
        // Verdicts are checked before each expansion so a verdict reachable
        // without lookups (e.g. a frontier member of one side sitting inside
        // the other's start set) costs no budget.
        let other_covered = other.members().iter().all(|m| down.covers(*m));
        let subject_covered = subject.members().iter().all(|m| up.covers(*m));
        match (other_covered, subject_covered) {
            (true, true) => {
                // Each frontier sits inside the other's ancestry — only
                // possible when they are equal, handled above; divergence
                // with mutual coverage means the "extra" members of each
                // side are ancestors of the other, i.e. the deeper side
                // covers both. Resolve by membership: if every subject
                // member is on `other`'s frontier the subject is behind.
                return if subject.members().iter().all(|m| other.covers(*m)) {
                    CausalRelation::StrictAscends
                } else {
                    descends(subject, other, &down)
                };
            }
            (true, false) => return descends(subject, other, &down),
            (false, true) => return CausalRelation::StrictAscends,
            (false, false) => {}
        }

        let down_live = !down.frontier.is_empty();
        let up_live = !up.frontier.is_empty();
        if !down_live && !up_live {
            // Both ancestries fully explored without either frontier
            // covering the other: concurrent. The meet is the deepest
            // common ancestry per publisher — each side's ancestry on a
            // publisher is the chain up to its deepest reached stamp, so
            // the shared portion ends at the shallower of the two maxima
            // (empty → no shared history).
            let meet: AntichainClock = down
                .deepest
                .iter()
                .filter_map(|(&publisher, &seq)| {
                    let other_seq = *up.deepest.get(&publisher)?;
                    Some(StampId::new(publisher, seq.min(other_seq)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect();
            return if meet.is_empty() {
                CausalRelation::Disjoint
            } else {
                CausalRelation::DivergedSince { meet }
            };
        }
        if spent >= budget {
            return CausalRelation::BudgetExceeded { budget };
        }
        // Alternate sides so a lopsided history cannot starve the other
        // search.
        if down_live && (spent % 2 == 0 || !up_live) {
            down.step(&mut parents_of);
        } else {
            up.step(&mut parents_of);
        }
        spent += 1;
    }
}

/// Builds the `StrictDescends` verdict with a forward chain from `other`'s
/// frontier into `subject`'s, recovered from the backward search's child
/// pointers.
fn descends(subject: &AntichainClock, other: &AntichainClock, down: &Reach) -> CausalRelation {
    // Start the chain at the deepest `other` member the search reached (any
    // member works; the deepest gives the shortest witness).
    let from = other
        .members()
        .iter()
        .copied()
        .max_by_key(|s| s.seq)
        .expect("other is non-empty in descends");
    let mut chain = down.forward_chain(from);
    // Drop the starting stamp if it is already on the subject frontier (the
    // chain then witnesses a zero-length descent through shared members).
    if chain.len() == 1 && subject.covers(from) {
        chain.clear();
    }
    CausalRelation::StrictDescends { chain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CausalStamp;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn s(i: u32, seq: u64) -> StampId {
        StampId::new(p(i), seq)
    }

    /// A test DAG: stamp → parent frontier.
    #[derive(Default)]
    struct Dag {
        parents: BTreeMap<StampId, AntichainClock>,
    }

    impl Dag {
        fn add(&mut self, stamp: StampId, parents: &[StampId]) {
            self.parents.insert(stamp, AntichainClock::from_stamps(parents.iter().copied()));
        }

        fn lookup(&self) -> impl FnMut(StampId) -> Option<AntichainClock> + '_ {
            |stamp| self.parents.get(&stamp).cloned()
        }
    }

    #[test]
    fn clock_keeps_one_stamp_per_publisher() {
        let mut clock = AntichainClock::new();
        assert!(clock.insert(s(2, 1)));
        assert!(clock.insert(s(1, 4)));
        assert!(!clock.insert(s(1, 3)), "shallower stamp is absorbed");
        assert!(clock.insert(s(1, 5)));
        assert_eq!(clock.members(), &[s(1, 5), s(2, 1)]);
        assert_eq!(clock.seq_of(p(1)), Some(5));
        assert_eq!(clock.seq_of(p(9)), None);
        assert!(clock.covers(s(1, 5)));
        assert!(clock.covers(s(1, 2)));
        assert!(!clock.covers(s(1, 6)));
        assert!(!clock.covers(s(9, 1)));
        assert_eq!(clock.to_string(), "{p1:5,p2:1}");
    }

    #[test]
    fn clock_equality_ignores_insertion_order() {
        let a = AntichainClock::from_stamps([s(1, 1), s(2, 2), s(3, 3)]);
        let b = AntichainClock::from_stamps([s(3, 3), s(1, 1), s(2, 2)]);
        assert_eq!(a, b);
        let mut merged = AntichainClock::from_stamps([s(1, 1)]);
        assert!(merged.merge(&a));
        assert!(!merged.merge(&a), "idempotent");
        assert_eq!(merged, a);
    }

    #[test]
    fn tie_break_is_total_and_deterministic() {
        use std::cmp::Ordering;
        // Deeper chain first.
        assert_eq!(s(5, 9).tie_break(s(1, 3)), Ordering::Less);
        // Equal depth: smaller publisher first.
        assert_eq!(s(1, 4).tie_break(s(2, 4)), Ordering::Less);
        assert_eq!(s(2, 4).tie_break(s(1, 4)), Ordering::Greater);
        assert_eq!(s(2, 4).tie_break(s(2, 4)), Ordering::Equal);
    }

    /// A linear chain by one publisher: p1:1 ← p1:2 ← p1:3.
    fn linear_dag() -> Dag {
        let mut dag = Dag::default();
        dag.add(s(1, 1), &[]);
        dag.add(s(1, 2), &[s(1, 1)]);
        dag.add(s(1, 3), &[s(1, 2)]);
        dag
    }

    #[test]
    fn equal_and_empty_clocks() {
        let dag = linear_dag();
        let a = AntichainClock::from_stamps([s(1, 2)]);
        assert_eq!(compare_clocks(&a, &a.clone(), dag.lookup(), 100), CausalRelation::Equal);
        let empty = AntichainClock::new();
        assert_eq!(
            compare_clocks(&empty, &empty.clone(), dag.lookup(), 100),
            CausalRelation::Equal
        );
        assert!(matches!(
            compare_clocks(&a, &empty, dag.lookup(), 100),
            CausalRelation::StrictDescends { .. }
        ));
        assert_eq!(compare_clocks(&empty, &a, dag.lookup(), 100), CausalRelation::StrictAscends);
    }

    #[test]
    fn linear_descent_reports_a_forward_chain() {
        let dag = linear_dag();
        let newer = AntichainClock::from_stamps([s(1, 3)]);
        let older = AntichainClock::from_stamps([s(1, 1)]);
        match compare_clocks(&newer, &older, dag.lookup(), 100) {
            CausalRelation::StrictDescends { chain } => {
                assert_eq!(chain, vec![s(1, 1), s(1, 2), s(1, 3)], "oldest → newest");
            }
            other => panic!("expected StrictDescends, got {other:?}"),
        }
        assert_eq!(
            compare_clocks(&older, &newer, dag.lookup(), 100),
            CausalRelation::StrictAscends
        );
    }

    /// Two publishers diverging from a shared prefix, then merging:
    ///
    /// ```text
    /// p1:1 ← p1:2 ← p2:1   (p2:1's parents = {p1:2})
    ///          ↖ p1:3      (concurrent with p2:1)
    /// p2:2 parents {p1:3, p2:1}  (the merge)
    /// ```
    fn diamond_dag() -> Dag {
        let mut dag = Dag::default();
        dag.add(s(1, 1), &[]);
        dag.add(s(1, 2), &[s(1, 1)]);
        dag.add(s(2, 1), &[s(1, 2)]);
        dag.add(s(1, 3), &[s(1, 2)]);
        dag.add(s(2, 2), &[s(1, 3), s(2, 1)]);
        dag
    }

    #[test]
    fn concurrent_branches_diverge_since_their_meet() {
        let dag = diamond_dag();
        let left = AntichainClock::from_stamps([s(1, 3)]);
        let right = AntichainClock::from_stamps([s(2, 1)]);
        match compare_clocks(&left, &right, dag.lookup(), 100) {
            CausalRelation::DivergedSince { meet } => {
                assert_eq!(meet, AntichainClock::from_stamps([s(1, 2)]));
            }
            other => panic!("expected DivergedSince, got {other:?}"),
        }
    }

    #[test]
    fn a_merge_descends_from_both_branches() {
        let dag = diamond_dag();
        let merged = AntichainClock::from_stamps([s(2, 2)]);
        for branch in [[s(1, 3)], [s(2, 1)]] {
            let branch = AntichainClock::from_stamps(branch);
            assert!(
                matches!(
                    compare_clocks(&merged, &branch, dag.lookup(), 100),
                    CausalRelation::StrictDescends { .. }
                ),
                "merge must descend from {branch}"
            );
        }
        // Cross-publisher descent through the DAG: {p2:2} covers p1's chain
        // even though the clock has no p1 entry.
        let deep = AntichainClock::from_stamps([s(1, 1)]);
        assert!(matches!(
            compare_clocks(&merged, &deep, dag.lookup(), 100),
            CausalRelation::StrictDescends { .. }
        ));
    }

    #[test]
    fn unrelated_publishers_are_disjoint() {
        let mut dag = Dag::default();
        dag.add(s(1, 1), &[]);
        dag.add(s(2, 1), &[]);
        let a = AntichainClock::from_stamps([s(1, 1)]);
        let b = AntichainClock::from_stamps([s(2, 1)]);
        assert_eq!(compare_clocks(&a, &b, dag.lookup(), 100), CausalRelation::Disjoint);
    }

    #[test]
    fn same_publisher_chains_resolve_without_budget() {
        // Per-publisher chains are total by construction, so a deep
        // same-publisher comparison resolves through the chain invariant
        // without walking (or even recording) the intermediate stamps — the
        // verdict survives pruned history and a budget of 1.
        let mut dag = Dag::default();
        dag.add(s(1, 50), &[s(1, 49)]);
        let newest = AntichainClock::from_stamps([s(1, 50)]);
        let oldest = AntichainClock::from_stamps([s(1, 1)]);
        match compare_clocks(&newest, &oldest, dag.lookup(), 1) {
            CausalRelation::StrictDescends { chain } => {
                assert_eq!(chain.len(), 50, "synthesised p1:1..=p1:50 witness");
                assert_eq!(chain.first(), Some(&s(1, 1)));
                assert_eq!(chain.last(), Some(&s(1, 50)));
            }
            other => panic!("expected StrictDescends, got {other:?}"),
        }
        assert_eq!(
            compare_clocks(&oldest, &newest, dag.lookup(), 1),
            CausalRelation::StrictAscends
        );
    }

    #[test]
    fn budget_bounds_the_traversal() {
        // Cross-publisher history has to be walked: alternate two publishers
        // so neither chain covers the other frontier, and hang a third
        // publisher's stamp off the root.
        let mut dag = Dag::default();
        dag.add(s(1, 1), &[]);
        dag.add(s(3, 1), &[s(1, 1)]);
        dag.add(s(2, 1), &[s(1, 1)]);
        for seq in 2..=25 {
            dag.add(s(1, seq), &[s(2, seq - 1)]);
            dag.add(s(2, seq), &[s(1, seq)]);
        }
        let newest = AntichainClock::from_stamps([s(2, 25)]);
        let aside = AntichainClock::from_stamps([s(3, 1)]);
        assert_eq!(
            compare_clocks(&newest, &aside, dag.lookup(), 5),
            CausalRelation::BudgetExceeded { budget: 5 }
        );
        // A sufficient budget reaches the verdict: concurrent since the root.
        match compare_clocks(&newest, &aside, dag.lookup(), 200) {
            CausalRelation::DivergedSince { meet } => {
                assert_eq!(meet, AntichainClock::from_stamps([s(1, 1)]));
            }
            other => panic!("expected DivergedSince, got {other:?}"),
        }
    }

    #[test]
    fn frontier_vs_superset_frontier_ascends() {
        let dag = diamond_dag();
        let part = AntichainClock::from_stamps([s(1, 3)]);
        let whole = AntichainClock::from_stamps([s(1, 3), s(2, 1)]);
        assert_eq!(compare_clocks(&part, &whole, dag.lookup(), 100), CausalRelation::StrictAscends);
        assert!(matches!(
            compare_clocks(&whole, &part, dag.lookup(), 100),
            CausalRelation::StrictDescends { .. }
        ));
    }

    #[test]
    fn causal_stamp_display_and_id() {
        let stamp = CausalStamp::new(p(2), 5, AntichainClock::from_stamps([s(1, 3), s(3, 7)]));
        assert_eq!(stamp.id(), s(2, 5));
        assert_eq!(stamp.to_string(), "p2#5<-{p1:3,p3:7}");
    }

    #[test]
    fn clocks_serialise_round_trip() {
        let clock = AntichainClock::from_stamps([s(1, 3), s(2, 1)]);
        let json = serde_json::to_string(&clock).unwrap();
        let back: AntichainClock = serde_json::from_str(&json).unwrap();
        assert_eq!(back, clock);
        let stamp = CausalStamp::new(p(2), 5, clock);
        let json = serde_json::to_string(&stamp).unwrap();
        let back: CausalStamp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stamp);
    }
}
