//! Unified observability for the CDSS stack: structured tracing and a
//! metrics registry, with zero dependencies.
//!
//! Every layer of the system — runtime, simnet, WAL, store service, fabric,
//! participants, workload drivers — reports into the two sinks this crate
//! provides:
//!
//! * [`Tracer`] records hierarchical spans and instant events. Timestamps
//!   come from a pluggable [`TimeSource`]: either wall-clock (for plain
//!   drivers) or a **virtual-clock cell** shared with the `orchestra-rt`
//!   executor, so traces captured under simulation are byte-for-byte
//!   deterministic and cost no simulated time. A [`Tracer::disabled`] tracer
//!   reduces every call to a single `Option` check.
//! * [`MetricsRegistry`] holds named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s. Handles are resolved once (a map lookup +
//!   `Arc` clone) and then cost one relaxed atomic op per update, so hot
//!   paths never touch the registry map. Histograms use power-of-two
//!   buckets: recording is a single atomic increment and p50/p99 are
//!   derived from the buckets without any floating point in the hot path.
//!
//! The [`Obs`] bundle groups one tracer and one registry so call sites can
//! thread a single handle. Traces are exported in a line-oriented text
//! format ([`export`]) that the `trace_dump` binary pretty-prints,
//! JSON-exports, or renders as a per-shard timeline.

pub mod export;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{EventKind, Span, TimeSource, TraceEvent, Tracer};

/// One tracer plus one metrics registry: the handle instrumented layers
/// accept. Cloning is cheap (two `Arc` clones) and clones share the sinks.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// The trace sink. Defaults to [`Tracer::disabled`].
    pub tracer: Tracer,
    /// The metrics sink. Always live: counters cost one relaxed atomic op
    /// whether or not anything ever snapshots them.
    pub metrics: MetricsRegistry,
}

impl Obs {
    /// A bundle with a disabled tracer and a fresh private registry — the
    /// default every component starts from.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// A bundle with an enabled wall-clock tracer and a fresh registry.
    /// Bind the tracer to a virtual clock with [`Tracer::bind_virtual`]
    /// before driving simulated work.
    pub fn enabled() -> Self {
        Obs { tracer: Tracer::new(), metrics: MetricsRegistry::new() }
    }
}

/// Formats a metric key with a `{label=value}` suffix, e.g.
/// `key_with("service.requests", "shard", 0)` → `service.requests{shard=0}`.
/// Intended for setup-time key construction, not hot paths.
pub fn key_with(name: &str, label: &str, value: u64) -> String {
    format!("{name}{{{label}={value}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_with_formats_labels() {
        assert_eq!(key_with("service.requests", "shard", 3), "service.requests{shard=3}");
    }

    #[test]
    fn obs_bundles_share_sinks_across_clones() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.metrics.counter("x").add(2);
        assert_eq!(obs.metrics.counter("x").get(), 2);
        let _span = clone.tracer.span("s", &[]);
        assert!(!obs.tracer.events().is_empty());
    }
}
