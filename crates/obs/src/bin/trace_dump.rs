//! Trace inspection tool — the `wal_dump` sibling for captured traces.
//!
//! Reads traces written by `Tracer::export` (the `orchestra-obs-trace v1`
//! text format, e.g. `churn_scale --trace FILE`) and renders them three
//! ways:
//!
//! ```text
//! trace_dump <file>...             pretty-print events, indented by span depth
//! trace_dump --timeline <file>...  per-shard timeline: events, sessions and
//!                                  admission sheds per shard, with skew bars
//! trace_dump --json <file>...      JSON array of events
//! ```
//!
//! The timeline view is the one that answers "which shard is the admission
//! gate": it counts `admission.shed` events per `shard` field value, so the
//! shard-0 skew PR 9 had to infer from frame-count deltas is printed
//! directly.

use orchestra_obs::export::{export_json, parse_text, ParsedEvent};
use orchestra_obs::EventKind;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: trace_dump [--timeline|--json] <trace-file>...");
        eprintln!("  pretty-prints an orchestra-obs trace; --timeline groups by shard,");
        eprintln!("  --json exports the events as a JSON array");
        return if files.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    let timeline = args.iter().any(|a| a == "--timeline");
    let json = args.iter().any(|a| a == "--json");
    let mut failed = false;
    for file in files {
        if let Err(e) = dump_file(Path::new(file), timeline, json) {
            eprintln!("{file}: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn dump_file(path: &Path, timeline: bool, json: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let events = parse_text(&text)?;
    if json {
        println!("{}", export_json(&events));
        return Ok(());
    }
    println!("== {} ({} event(s)) ==", path.display(), events.len());
    if timeline {
        print_timeline(&events);
    } else {
        print_pretty(&events);
    }
    println!();
    Ok(())
}

/// Chronological listing, indented by span depth.
fn print_pretty(events: &[ParsedEvent]) {
    let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
    depth.insert(0, 0);
    for e in events {
        let parent_depth = depth.get(&e.parent).copied().unwrap_or(0);
        let own_depth = match e.kind {
            EventKind::Open => {
                depth.insert(e.span, parent_depth + 1);
                parent_depth
            }
            EventKind::Close => depth.remove(&e.span).map_or(parent_depth, |d| d - 1),
            EventKind::Instant => depth.get(&e.span).copied().unwrap_or(parent_depth),
        };
        let marker = match e.kind {
            EventKind::Open => "+",
            EventKind::Close => "-",
            EventKind::Instant => "*",
        };
        let fields: Vec<String> = e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  {:>12} us {}{} {} {}",
            e.at_us,
            "  ".repeat(own_depth),
            marker,
            e.name,
            fields.join(" ")
        );
    }
}

#[derive(Default)]
struct ShardLine {
    events: u64,
    sessions: u64,
    batches: u64,
    sheds: u64,
    publishes: u64,
    first_us: Option<u64>,
    last_us: u64,
}

/// Per-shard rollup: how each shard's traffic and admission sheds compare.
fn print_timeline(events: &[ParsedEvent]) {
    let mut shards: BTreeMap<u64, ShardLine> = BTreeMap::new();
    let mut unsharded = 0u64;
    for e in events {
        let Some(shard) = e.field("shard") else {
            unsharded += 1;
            continue;
        };
        let line = shards.entry(shard).or_default();
        line.events += 1;
        line.first_us.get_or_insert(e.at_us);
        line.last_us = line.last_us.max(e.at_us);
        match e.name.as_str() {
            "session.begin" => line.sessions += 1,
            "session.batch" => line.batches += 1,
            "admission.shed" => line.sheds += 1,
            "publish" | "replicate" => line.publishes += 1,
            _ => {}
        }
    }
    if shards.is_empty() {
        println!("  no shard-tagged events ({unsharded} unsharded event(s))");
        return;
    }
    let max_sheds = shards.values().map(|l| l.sheds).max().unwrap_or(0);
    let header = ["shard", "events", "sessions", "batches", "publishes", "sheds"];
    println!(
        "  {:>5} {:>8} {:>9} {:>8} {:>9} {:>7}  shed skew",
        header[0], header[1], header[2], header[3], header[4], header[5]
    );
    for (shard, line) in &shards {
        let bar_len = (line.sheds * 40).checked_div(max_sheds).unwrap_or(0) as usize;
        println!(
            "  {:>5} {:>8} {:>9} {:>8} {:>9} {:>7}  {}",
            shard,
            line.events,
            line.sessions,
            line.batches,
            line.publishes,
            line.sheds,
            "#".repeat(bar_len)
        );
    }
    let total_sheds: u64 = shards.values().map(|l| l.sheds).sum();
    if total_sheds > 0 {
        let (gate, gate_line) =
            shards.iter().max_by_key(|(_, l)| l.sheds).expect("non-empty shard map");
        println!(
            "  admission gate: shard {gate} absorbed {}/{} shed(s) ({}%)",
            gate_line.sheds,
            total_sheds,
            gate_line.sheds * 100 / total_sheds
        );
    }
    if unsharded > 0 {
        println!("  ({unsharded} event(s) without a shard field not shown)");
    }
}
