//! Trace serialisation: a line-oriented text format plus a hand-rolled
//! JSON export, both dependency-free.
//!
//! The text format is what `Tracer::export` writes and `trace_dump` reads:
//!
//! ```text
//! orchestra-obs-trace v1
//! open<TAB>at_us<TAB>span<TAB>parent<TAB>name[<TAB>key=value]...
//! event<TAB>...
//! close<TAB>...
//! ```
//!
//! Names and field keys are identifier-like (no tabs or newlines), field
//! values are decimal `u64`s, so the format round-trips with plain string
//! splitting.

use crate::trace::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Header line identifying the trace format version.
pub const TRACE_HEADER: &str = "orchestra-obs-trace v1";

/// Serialises events in the v1 text format.
pub fn export_text(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(32 + events.len() * 48);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for e in events {
        let _ =
            write!(out, "{}\t{}\t{}\t{}\t{}", e.kind.as_str(), e.at_us, e.span, e.parent, e.name);
        for (k, v) in &e.fields {
            let _ = write!(out, "\t{k}={v}");
        }
        out.push('\n');
    }
    out
}

/// A parsed trace record: like [`TraceEvent`] but with owned strings, since
/// the reader has no access to the writer's static names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Timestamp in microseconds.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Span id (see [`TraceEvent::span`]).
    pub span: u64,
    /// Enclosing span id (0 = root).
    pub parent: u64,
    /// Event name.
    pub name: String,
    /// Typed fields.
    pub fields: Vec<(String, u64)>,
}

impl ParsedEvent {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Parses a v1 text trace. Returns a descriptive error on malformed input.
pub fn parse_text(input: &str) -> Result<Vec<ParsedEvent>, String> {
    let mut lines = input.lines();
    match lines.next() {
        Some(header) if header.trim_end() == TRACE_HEADER => {}
        other => {
            return Err(format!(
                "not an orchestra-obs trace: expected `{TRACE_HEADER}`, got {other:?}"
            ))
        }
    }
    let mut events = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let bad = |what: &str| format!("line {}: {what}: `{line}`", lineno + 2);
        let kind = match parts.next() {
            Some("open") => EventKind::Open,
            Some("close") => EventKind::Close,
            Some("event") => EventKind::Instant,
            _ => return Err(bad("unknown record kind")),
        };
        let mut int = |what: &str| -> Result<u64, String> {
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad(what))
        };
        let at_us = int("bad timestamp")?;
        let span = int("bad span id")?;
        let parent = int("bad parent id")?;
        let name = parts.next().ok_or_else(|| bad("missing name"))?.to_string();
        let mut fields = Vec::new();
        for field in parts {
            let (k, v) = field.split_once('=').ok_or_else(|| bad("bad field"))?;
            let v = v.parse().map_err(|_| bad("bad field value"))?;
            fields.push((k.to_string(), v));
        }
        events.push(ParsedEvent { at_us, kind, span, parent, name, fields });
    }
    Ok(events)
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders parsed events as a JSON array (one object per event).
pub fn export_json(events: &[ParsedEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"kind\":\"{}\",\"at_us\":{},\"span\":{},\"parent\":{},\"name\":\"{}\"",
            e.kind.as_str(),
            e.at_us,
            e.span,
            e.parent,
            json_escape(&e.name)
        );
        out.push_str(",\"fields\":{");
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("}}");
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn text_format_round_trips() {
        let tracer = Tracer::new();
        let span = tracer.span("round", &[("participants", 4)]);
        span.event("session.begin", &[("participant", 1), ("shard", 0)]);
        drop(span);
        let text = tracer.export();
        assert!(text.starts_with(TRACE_HEADER));
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "round");
        assert_eq!(parsed[0].kind, EventKind::Open);
        assert_eq!(parsed[1].field("shard"), Some(0));
        assert_eq!(parsed[1].field("participant"), Some(1));
        assert_eq!(parsed[2].kind, EventKind::Close);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_text("").is_err());
        assert!(parse_text("something else\n").is_err());
        let bad_kind = format!("{TRACE_HEADER}\nnope\t1\t2\t3\tx\n");
        assert!(parse_text(&bad_kind).unwrap_err().contains("unknown record kind"));
        let bad_field = format!("{TRACE_HEADER}\nevent\t1\t0\t0\tx\tk\n");
        assert!(parse_text(&bad_field).unwrap_err().contains("bad field"));
    }

    #[test]
    fn json_export_escapes_and_structures() {
        let events = vec![ParsedEvent {
            at_us: 5,
            kind: EventKind::Instant,
            span: 0,
            parent: 0,
            name: "a\"b".to_string(),
            fields: vec![("n".to_string(), 2)],
        }];
        let json = export_json(&events);
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("\"fields\":{\"n\":2}"));
        assert_eq!(json_escape("x\ty\n"), "x\\ty\\n");
    }
}
