//! Named counters, gauges and fixed-bucket histograms behind one registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved from the
//! [`MetricsRegistry`] once, at setup time, and shared via `Arc`; updating
//! one is a single relaxed atomic operation. The registry map is only
//! locked on resolution and on [`MetricsRegistry::snapshot`], never on the
//! hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing (in normal use) 64-bit counter.
///
/// Detached counters ([`Counter::detached`]) are not registered anywhere —
/// components use them as their default sink so the counting code path is
/// identical whether or not a registry is attached.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not tied to any registry.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used by view types that clone-by-value).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A signed gauge (current level rather than cumulative count).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge not tied to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts values whose bit length
/// is `i` (i.e. `[2^(i-1), 2^i)`), bucket 0 counts zeros, bucket 64 the
/// top half of the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket (power-of-two bounds) histogram. Recording is three
/// relaxed atomic adds and involves no floating point; quantiles are
/// derived from the buckets at snapshot time.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A free-standing histogram not tied to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A point-in-time copy of one histogram's buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket counts ([`HISTOGRAM_BUCKETS`] entries; bucket `i` holds
    /// values of bit length `i`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// The quantile `num/den` as the inclusive upper bound of the bucket
    /// containing the nearest-rank observation. Integer arithmetic only.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(1, 2)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// Mean of the exact recorded values (not bucket-quantised).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot in (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A shared sink of named metrics. Cloning shares the underlying maps.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolves (creating on first use) the counter named `name`. Call at
    /// setup time and keep the returned handle for the hot path.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("metrics lock poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Resolves (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("metrics lock poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("metrics lock poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another snapshot in: counters and histograms sum, gauges take
    /// the other side's (more recent) level.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip_through_the_registry() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a");
        c.inc();
        c.add(4);
        reg.gauge("g").set(-3);
        // Re-resolving yields the same underlying cell.
        assert_eq!(reg.counter("a").get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.gauges["g"], -3);
    }

    #[test]
    fn histogram_buckets_values_by_bit_length() {
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 1); // 4
        assert_eq!(snap.buckets[10], 1); // 1000
        assert_eq!(snap.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn quantiles_walk_buckets_without_floats() {
        let h = Histogram::detached();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 15
        }
        h.record(1 << 20); // bucket 21
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 15);
        assert_eq!(snap.p99(), 15);
        assert_eq!(snap.quantile(100, 100), (1u64 << 21) - 1);
        assert_eq!(snap.mean(), (99 * 10 + (1 << 20)) / 100);
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn snapshots_merge_by_summing() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(2);
        reg.histogram("h").record(7);
        let mut a = reg.snapshot();
        reg.counter("c").add(3);
        reg.gauge("g").set(9);
        let b = reg.snapshot();
        a.merge(&b);
        assert_eq!(a.counters["c"], 7);
        assert_eq!(a.gauges["g"], 9);
        assert_eq!(a.histograms["h"].count, 2);
        assert!(!a.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }
}
