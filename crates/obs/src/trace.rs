//! Hierarchical spans and instant events with pluggable timestamps.
//!
//! A [`Tracer`] buffers [`TraceEvent`]s in order under one mutex; on the
//! single-threaded virtual-clock executor this makes captured traces fully
//! deterministic (same schedule → byte-identical export). Timestamps come
//! from the tracer's [`TimeSource`]: wall-clock micros since the tracer was
//! created, or — after [`Tracer::bind_virtual`] — the shared virtual-clock
//! cell published by `orchestra_rt::VirtualClock::shared_now`, so tracing
//! simulated work costs no simulated time.
//!
//! A disabled tracer ([`Tracer::disabled`]) carries no buffer at all: every
//! span/event call is a single `Option` check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where timestamps come from.
#[derive(Clone, Debug)]
pub enum TimeSource {
    /// Wall clock: microseconds since the source was created.
    Wall(Instant),
    /// Virtual clock: the shared now-cell a `VirtualClock` publishes.
    Virtual(Arc<AtomicU64>),
}

impl TimeSource {
    /// A wall-clock source anchored at "now".
    pub fn wall() -> Self {
        TimeSource::Wall(Instant::now())
    }

    /// The current timestamp in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            TimeSource::Wall(base) => base.elapsed().as_micros() as u64,
            TimeSource::Virtual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span` is the new span's id).
    Open,
    /// A span closed.
    Close,
    /// An instant event inside `span` (0 = root).
    Instant,
}

impl EventKind {
    /// Stable lowercase name used by the text export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Close => "close",
            EventKind::Instant => "event",
        }
    }
}

/// One record in a trace. Field values are `u64` (ids, counts, micros) so
/// events stay allocation-light and the export format stays trivial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in microseconds (virtual or wall, per the tracer's source).
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// The span this record belongs to (its own id for `Open`/`Close`, the
    /// enclosing span for `Instant`; 0 = root).
    pub span: u64,
    /// The enclosing span (0 = root).
    pub parent: u64,
    /// Event name, e.g. `session.begin`.
    pub name: &'static str,
    /// Typed fields, e.g. `[("participant", 3), ("shard", 0)]`.
    pub fields: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct TraceState {
    time: TimeSource,
    events: Vec<TraceEvent>,
    next_span: u64,
}

/// A trace sink. Cloning shares the buffer; [`Tracer::default`] is
/// disabled.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceState>>>,
}

impl Tracer {
    /// An enabled tracer stamping events with wall-clock micros.
    pub fn new() -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceState {
                time: TimeSource::wall(),
                events: Vec::new(),
                next_span: 1,
            }))),
        }
    }

    /// A disabled tracer: records nothing, every call is one branch.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// True when this tracer records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Stamps subsequent events from the given virtual-clock cell (see
    /// `orchestra_rt::VirtualClock::shared_now`). No-op when disabled.
    pub fn bind_virtual(&self, cell: Arc<AtomicU64>) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("trace lock poisoned").time = TimeSource::Virtual(cell);
        }
    }

    /// Reverts to wall-clock stamping, re-anchored at "now".
    pub fn bind_wall(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("trace lock poisoned").time = TimeSource::wall();
        }
    }

    fn record(
        inner: &Arc<Mutex<TraceState>>,
        kind: EventKind,
        span: u64,
        parent: u64,
        name: &'static str,
        fields: &[(&'static str, u64)],
    ) -> u64 {
        let mut state = inner.lock().expect("trace lock poisoned");
        let at_us = state.time.now_us();
        let span = if kind == EventKind::Open {
            let id = state.next_span;
            state.next_span += 1;
            id
        } else {
            span
        };
        state.events.push(TraceEvent { at_us, kind, span, parent, name, fields: fields.to_vec() });
        span
    }

    /// Opens a root span. The span closes (records a `Close` event) when the
    /// returned guard drops.
    #[inline]
    pub fn span(&self, name: &'static str, fields: &[(&'static str, u64)]) -> Span {
        self.span_under(0, name, fields)
    }

    fn span_under(&self, parent: u64, name: &'static str, fields: &[(&'static str, u64)]) -> Span {
        match &self.inner {
            None => Span { inner: None, id: 0, name: "", parent: 0 },
            Some(inner) => {
                let id = Self::record(inner, EventKind::Open, 0, parent, name, fields);
                Span { inner: Some(Arc::clone(inner)), id, name, parent }
            }
        }
    }

    /// Records a root-level instant event.
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        if let Some(inner) = &self.inner {
            Self::record(inner, EventKind::Instant, 0, 0, name, fields);
        }
    }

    /// A copy of the events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.lock().expect("trace lock poisoned").events.clone(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().expect("trace lock poisoned").events.len(),
        }
    }

    /// True when no events have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events and resets span ids.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().expect("trace lock poisoned");
            state.events.clear();
            state.next_span = 1;
        }
    }

    /// Serialises the trace in the line-oriented text format
    /// ([`crate::export::export_text`]).
    pub fn export(&self) -> String {
        crate::export::export_text(&self.events())
    }
}

/// An open span; records a `Close` event when dropped. Disabled-tracer
/// spans are inert.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Mutex<TraceState>>>,
    id: u64,
    name: &'static str,
    parent: u64,
}

impl Span {
    /// The span's id (0 when the tracer is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span.
    #[inline]
    pub fn child(&self, name: &'static str, fields: &[(&'static str, u64)]) -> Span {
        match &self.inner {
            None => Span { inner: None, id: 0, name: "", parent: 0 },
            Some(inner) => {
                let id = Tracer::record(inner, EventKind::Open, 0, self.id, name, fields);
                Span { inner: Some(Arc::clone(inner)), id, name, parent: self.id }
            }
        }
    }

    /// Records an instant event inside this span.
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        if let Some(inner) = &self.inner {
            Tracer::record(inner, EventKind::Instant, self.id, self.id, name, fields);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            Tracer::record(inner, EventKind::Close, self.id, self.parent, self.name, &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let span = tracer.span("a", &[("x", 1)]);
        span.event("b", &[]);
        let child = span.child("c", &[]);
        drop(child);
        drop(span);
        tracer.event("d", &[]);
        assert!(!tracer.is_enabled());
        assert!(tracer.is_empty());
        assert!(tracer.export().lines().count() <= 1);
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let tracer = Tracer::new();
        let root = tracer.span("round", &[("n", 2)]);
        let child = root.child("phase", &[]);
        child.event("tick", &[("i", 7)]);
        drop(child);
        drop(root);
        let events = tracer.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::Open);
        assert_eq!(events[0].span, 1);
        assert_eq!(events[1].parent, 1);
        assert_eq!(events[1].span, 2);
        assert_eq!(
            events[2],
            TraceEvent {
                at_us: events[2].at_us,
                kind: EventKind::Instant,
                span: 2,
                parent: 2,
                name: "tick",
                fields: vec![("i", 7)],
            }
        );
        assert_eq!(events[3].kind, EventKind::Close);
        assert_eq!(events[3].span, 2);
        assert_eq!(events[4].kind, EventKind::Close);
        assert_eq!(events[4].span, 1);
    }

    #[test]
    fn virtual_binding_stamps_from_the_shared_cell() {
        let tracer = Tracer::new();
        let cell = Arc::new(AtomicU64::new(0));
        tracer.bind_virtual(Arc::clone(&cell));
        tracer.event("a", &[]);
        cell.store(1500, Ordering::Relaxed);
        tracer.event("b", &[]);
        let events = tracer.events();
        assert_eq!(events[0].at_us, 0);
        assert_eq!(events[1].at_us, 1500);
        tracer.clear();
        assert!(tracer.is_empty());
        assert_eq!(tracer.span("s", &[]).id(), 1);
    }
}
