//! Microbenchmarks of the reconciliation building blocks: flattening,
//! conflict detection between update extensions, and a single
//! `ReconcileUpdates` run over a synthetic candidate set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    flatten, ParticipantId, Priority, ReconciliationId, Transaction, Tuple, Update,
};
use orchestra_recon::{CandidateTransaction, ReconcileEngine, ReconcileInput, SoftState};
use orchestra_storage::Database;
use std::time::Duration;

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(key: usize, value: usize) -> Tuple {
    Tuple::of_text(&["organism", &format!("prot{key:05}"), &format!("function-{value}")])
}

/// Builds `n` single-insert candidates, a configurable fraction of which
/// collide pairwise on the same key with divergent values.
fn candidates(n: usize, conflict_fraction: f64) -> Vec<CandidateTransaction> {
    let conflicting = (n as f64 * conflict_fraction) as usize;
    (0..n)
        .map(|i| {
            let (key, value) = if i < conflicting { (i / 2, i) } else { (1_000 + i, 0) };
            let txn = Transaction::from_parts(
                p(2 + (i % 8) as u32),
                i as u64,
                vec![Update::insert("Function", func(key, value), p(2 + (i % 8) as u32))],
            )
            .unwrap();
            CandidateTransaction::new(&txn, Priority(1), vec![])
        })
        .collect()
}

fn bench_flatten(c: &mut Criterion) {
    let schema = bioinformatics_schema();
    let mut updates = Vec::new();
    for i in 0..200usize {
        updates.push(Update::insert("Function", func(i, 0), p(1)));
        updates.push(Update::modify("Function", func(i, 0), func(i, 1), p(1)));
        updates.push(Update::modify("Function", func(i, 1), func(i, 2), p(1)));
    }
    c.bench_function("flatten_600_updates", |b| b.iter(|| flatten(&schema, &updates)));
}

fn bench_reconcile(c: &mut Criterion) {
    let schema = bioinformatics_schema();
    let mut group = c.benchmark_group("reconcile_candidates");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &n in &[50usize, 200, 500] {
        group.bench_with_input(BenchmarkId::new("ten_pct_conflicts", n), &n, |b, &n| {
            let cands = candidates(n, 0.1);
            let engine = ReconcileEngine::new(schema.clone());
            b.iter(|| {
                let mut db = Database::new(schema.clone());
                let mut soft = SoftState::new();
                engine.reconcile(
                    ReconcileInput {
                        recno: ReconciliationId(1),
                        candidates: cands.clone(),
                        ..Default::default()
                    },
                    &mut db,
                    &mut soft,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flatten, bench_reconcile);
criterion_main!(benches);
