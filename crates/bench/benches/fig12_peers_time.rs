//! Figure 12: average time per reconciliation as the number of participants
//! grows, for the centralised and the DHT-based store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{fig12_participants_time, FigureScale};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::{CentralStore, DhtStore};
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};
use std::time::Duration;

fn scenario_for(participants: usize) -> ScenarioConfig {
    ScenarioConfig {
        participants,
        transactions_between_reconciliations: 4,
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 400,
            function_pool: 200,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn bench_fig12(c: &mut Criterion) {
    let rows = fig12_participants_time(FigureScale::Quick);
    println!("\nFigure 12 (participants vs. time per reconciliation):");
    for row in &rows {
        println!(
            "  peers={:<3} store={:<11} store_time={:.6}s local_time={:.6}s",
            row.participants, row.store_kind, row.store_time_secs, row.local_time_secs
        );
    }

    let mut group = c.benchmark_group("fig12_peers_time");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &peers in &[10usize, 25] {
        group.bench_with_input(BenchmarkId::new("central", peers), &peers, |b, &n| {
            b.iter(|| run_scenario(CentralStore::new(bioinformatics_schema()), &scenario_for(n)))
        });
        group.bench_with_input(BenchmarkId::new("distributed", peers), &peers, |b, &n| {
            b.iter(|| run_scenario(DhtStore::new(bioinformatics_schema()), &scenario_for(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
