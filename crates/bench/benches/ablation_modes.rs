//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * client-centric versus network-centric reconciliation on the DHT store
//!   (the trade-off of the paper's Figure 3);
//! * flattening ("least interaction") versus treating every intermediate
//!   update as its own candidate — flattening is what lets a revised
//!   transaction chain stop conflicting;
//! * hash-indexed conflict detection versus the naive all-pairs comparison
//!   the paper's complexity analysis starts from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra::{Participant, ParticipantConfig};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    ParticipantId, Priority, ReconciliationId, Transaction, TrustPolicy, Tuple, Update,
};
use orchestra_recon::{CandidateTransaction, ReconcileEngine, ReconcileInput, SoftState};
use orchestra_storage::Database;
use orchestra_store::{DhtStore, UpdateStore};
use std::time::Duration;

fn p(i: u32) -> ParticipantId {
    ParticipantId(i)
}

fn func(key: usize, value: usize) -> Tuple {
    Tuple::of_text(&["human", &format!("prot{key:04}"), &format!("fn{value}")])
}

/// Builds a DHT store holding `txns` published single-insert transactions
/// from mutually trusting peers, roughly 10% of which conflict pairwise.
fn populated_dht(txns: usize) -> DhtStore {
    let peers = 8u32;
    let store = DhtStore::new(bioinformatics_schema());
    for i in 1..=peers {
        let mut policy = TrustPolicy::new(p(i));
        for j in 1..=peers {
            if i != j {
                policy = policy.trusting(p(j), 1u32);
            }
        }
        store.register_participant(policy);
    }
    for n in 0..txns {
        let origin = 2 + (n % (peers as usize - 1)) as u32;
        let (key, value) = if n % 10 == 0 { (n / 2, n) } else { (1_000 + n, 0) };
        let txn = Transaction::from_parts(
            p(origin),
            n as u64,
            vec![Update::insert("Function", func(key, value), p(origin))],
        )
        .unwrap();
        store.publish(p(origin), vec![txn]).unwrap();
    }
    store
}

fn bench_reconciliation_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconciliation_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    let schema = bioinformatics_schema();
    for &txns in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::new("client_centric", txns), &txns, |b, &txns| {
            b.iter(|| {
                let store = populated_dht(txns);
                let mut participant = Participant::new(
                    schema.clone(),
                    ParticipantConfig::new(TrustPolicy::new(p(1)).trusting(p(2), 1u32)),
                );
                // Trust everyone, as in populated_dht's registration.
                store.register_participant({
                    let mut policy = TrustPolicy::new(p(1));
                    for j in 2..=8u32 {
                        policy = policy.trusting(p(j), 1u32);
                    }
                    policy
                });
                participant.reconcile(&store).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("network_centric", txns), &txns, |b, &txns| {
            b.iter(|| {
                let store = populated_dht(txns);
                let mut participant = Participant::new(
                    schema.clone(),
                    ParticipantConfig::new(TrustPolicy::new(p(1)).trusting(p(2), 1u32)),
                );
                store.register_participant({
                    let mut policy = TrustPolicy::new(p(1));
                    for j in 2..=8u32 {
                        policy = policy.trusting(p(j), 1u32);
                    }
                    policy
                });
                participant.reconcile_network_centric(&store).unwrap()
            })
        });
    }
    group.finish();
}

/// Candidate sets used by the flattening and conflict-detection ablations:
/// `n` revision chains of length 3 over distinct keys, all from trusted
/// peers.
fn chained_candidates(n: usize, flattened_extensions: bool) -> Vec<CandidateTransaction> {
    let mut out = Vec::new();
    for i in 0..n {
        let origin = p(2 + (i % 5) as u32);
        let insert = Update::insert("Function", func(i, 0), origin);
        let rev1 = Update::modify("Function", func(i, 0), func(i, 1), origin);
        let rev2 = Update::modify("Function", func(i, 1), func(i, 2), origin);
        if flattened_extensions {
            // One candidate per chain: the engine flattens the extension to a
            // single net insert.
            let root = Transaction::from_parts(origin, (i * 3 + 2) as u64, vec![rev2]).unwrap();
            let antecedents = vec![
                Transaction::from_parts(origin, (i * 3) as u64, vec![insert]).unwrap(),
                Transaction::from_parts(origin, (i * 3 + 1) as u64, vec![rev1]).unwrap(),
            ];
            out.push(CandidateTransaction::new(&root, Priority(1), antecedents));
        } else {
            // Ablation: every intermediate step is its own candidate with no
            // extension, so intermediate states are visible to conflict
            // detection.
            for (j, u) in [insert, rev1, rev2].into_iter().enumerate() {
                let txn = Transaction::from_parts(origin, (i * 3 + j) as u64, vec![u]).unwrap();
                out.push(CandidateTransaction::new(&txn, Priority(1), vec![]));
            }
        }
    }
    out
}

fn bench_flattening_ablation(c: &mut Criterion) {
    let schema = bioinformatics_schema();
    let engine = ReconcileEngine::new(schema.clone());
    let mut group = c.benchmark_group("flattening_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &(label, flattened) in &[("flattened_chains", true), ("per_step_candidates", false)] {
        group.bench_function(BenchmarkId::new(label, 200), |b| {
            let candidates = chained_candidates(200, flattened);
            b.iter(|| {
                let mut db = Database::new(schema.clone());
                let mut soft = SoftState::new();
                engine.reconcile(
                    ReconcileInput {
                        recno: ReconciliationId(1),
                        candidates: candidates.clone(),
                        ..Default::default()
                    },
                    &mut db,
                    &mut soft,
                )
            })
        });
    }
    group.finish();
}

fn bench_conflict_detection(c: &mut Criterion) {
    // The paper's analysis assumes hash-table-based conflict detection with
    // cost O(t^2 + t·u·a); the engine's keyed index only compares candidates
    // sharing a touched key. This ablation measures the keyed detector
    // against a naive all-pairs scan over the same flattened extensions.
    let schema = bioinformatics_schema();
    let candidates = chained_candidates(300, true);
    let flattened: Vec<Vec<Update>> =
        candidates.iter().map(|cand| cand.flattened(&schema)).collect();

    let mut group = c.benchmark_group("conflict_detection");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("keyed_index", |b| {
        b.iter(|| {
            let mut conflicts = 0usize;
            for i in 0..candidates.len() {
                for j in (i + 1)..candidates.len() {
                    // The keyed comparison only materialises work for pairs
                    // sharing a key; measure via the shared helper.
                    if !orchestra_recon::extension::conflict_keys_between(
                        &flattened[i],
                        &flattened[j],
                        &schema,
                    )
                    .is_empty()
                    {
                        conflicts += 1;
                    }
                }
            }
            conflicts
        })
    });
    group.bench_function("all_pairs_updates", |b| {
        b.iter(|| {
            let mut conflicts = 0usize;
            for i in 0..candidates.len() {
                for j in (i + 1)..candidates.len() {
                    let hit = flattened[i]
                        .iter()
                        .any(|a| flattened[j].iter().any(|b| a.conflicts_with(b, &schema)));
                    if hit {
                        conflicts += 1;
                    }
                }
            }
            conflicts
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reconciliation_modes,
    bench_flattening_ablation,
    bench_conflict_detection
);
criterion_main!(benches);
