//! Figure 8: the effect of transaction size on state ratio, holding the
//! number of updates between reconciliations constant.
//!
//! Running this bench prints the regenerated series (transaction size →
//! state ratio) and measures the wall-clock cost of the underlying
//! experiment at the two extreme transaction sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{fig08_transaction_size, FigureScale};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::CentralStore;
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};
use std::time::Duration;

fn scenario_for(transaction_size: usize) -> ScenarioConfig {
    ScenarioConfig {
        participants: 10,
        transactions_between_reconciliations: (20 / transaction_size).max(1),
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size,
            key_universe: 400,
            function_pool: 200,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn bench_fig08(c: &mut Criterion) {
    // Regenerate and print the figure series once.
    let rows = fig08_transaction_size(FigureScale::Quick);
    println!("\nFigure 8 (transaction size vs. state ratio, 10 peers):");
    for row in &rows {
        println!(
            "  txn_size={:<3} txns/recon={:<3} state_ratio={:.3}",
            row.transaction_size, row.transactions_per_reconciliation, row.state_ratio
        );
    }

    let mut group = c.benchmark_group("fig08_txn_size");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &size in &[1usize, 10] {
        group.bench_with_input(BenchmarkId::new("central", size), &size, |b, &size| {
            b.iter(|| run_scenario(CentralStore::new(bioinformatics_schema()), &scenario_for(size)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig08);
criterion_main!(benches);
