//! Figure 11: the change in state ratio as the number of participants grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{fig11_participants_ratio, FigureScale};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::CentralStore;
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};
use std::time::Duration;

fn scenario_for(participants: usize) -> ScenarioConfig {
    ScenarioConfig {
        participants,
        transactions_between_reconciliations: 4,
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 400,
            function_pool: 200,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn bench_fig11(c: &mut Criterion) {
    let rows = fig11_participants_ratio(FigureScale::Quick);
    println!("\nFigure 11 (participants vs. state ratio):");
    for row in &rows {
        println!("  peers={:<3} state_ratio={:.3}", row.participants, row.state_ratio);
    }

    let mut group = c.benchmark_group("fig11_peers_ratio");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &peers in &[5usize, 25] {
        group.bench_with_input(BenchmarkId::new("central", peers), &peers, |b, &n| {
            b.iter(|| run_scenario(CentralStore::new(bioinformatics_schema()), &scenario_for(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
