//! Figure 10: reconciliation interval versus execution time per participant,
//! split into store time and local time, for the centralised and the
//! DHT-based store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{fig10_recon_interval_time, FigureScale};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::{CentralStore, DhtStore};
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};
use std::time::Duration;

fn scenario_for(interval: usize) -> ScenarioConfig {
    ScenarioConfig {
        participants: 10,
        transactions_between_reconciliations: interval,
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 400,
            function_pool: 200,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn bench_fig10(c: &mut Criterion) {
    let rows = fig10_recon_interval_time(FigureScale::Quick);
    println!("\nFigure 10 (reconciliation interval vs. time per participant):");
    for row in &rows {
        println!(
            "  RI={:<3} store={:<11} store_time={:.6}s local_time={:.6}s",
            row.reconciliation_interval, row.store_kind, row.store_time_secs, row.local_time_secs
        );
    }

    let mut group = c.benchmark_group("fig10_recon_interval_time");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &interval in &[4usize, 20] {
        group.bench_with_input(BenchmarkId::new("central", interval), &interval, |b, &ri| {
            b.iter(|| run_scenario(CentralStore::new(bioinformatics_schema()), &scenario_for(ri)))
        });
        group.bench_with_input(BenchmarkId::new("distributed", interval), &interval, |b, &ri| {
            b.iter(|| run_scenario(DhtStore::new(bioinformatics_schema()), &scenario_for(ri)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
