//! Figure 9: the effect of the reconciliation interval on state ratio
//! (10 participants, single-update transactions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orchestra_bench::{fig09_recon_interval_ratio, FigureScale};
use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::CentralStore;
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};
use std::time::Duration;

fn scenario_for(interval: usize) -> ScenarioConfig {
    ScenarioConfig {
        participants: 10,
        transactions_between_reconciliations: interval,
        rounds: 2,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 400,
            function_pool: 200,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn bench_fig09(c: &mut Criterion) {
    let rows = fig09_recon_interval_ratio(FigureScale::Quick);
    println!("\nFigure 9 (reconciliation interval vs. state ratio, 10 peers):");
    for row in &rows {
        println!(
            "  interval={:<3} state_ratio={:.3}",
            row.reconciliation_interval, row.state_ratio
        );
    }

    let mut group = c.benchmark_group("fig09_recon_interval_ratio");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_secs(1));
    for &interval in &[1usize, 20] {
        group.bench_with_input(BenchmarkId::new("central", interval), &interval, |b, &ri| {
            b.iter(|| run_scenario(CentralStore::new(bioinformatics_schema()), &scenario_for(ri)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
