//! Runners that regenerate each evaluation figure.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::{CentralStore, DhtStore};
use orchestra_workload::{run_scenario, ScenarioConfig, WorkloadConfig};
use serde::Serialize;

/// How large an experiment to run. `Quick` keeps every figure under a few
/// seconds (for CI and `cargo bench`); `Full` uses parameter ranges closer to
/// the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureScale {
    /// Reduced ranges for fast runs.
    Quick,
    /// The paper's ranges.
    Full,
}

impl FigureScale {
    fn rounds(self) -> usize {
        match self {
            FigureScale::Quick => 2,
            FigureScale::Full => 3,
        }
    }
}

/// Base workload shared by every figure: single-update transactions over a
/// moderately contended key universe, Zipf(1.5) values, 7.3 cross-references
/// per new key, and uniform mutual trust (priority 1) so that conflicts are
/// deferred rather than automatically resolved — exactly the paper's setup.
fn base_workload(transaction_size: usize) -> WorkloadConfig {
    WorkloadConfig {
        transaction_size,
        key_universe: 400,
        function_pool: 200,
        value_zipf_exponent: 1.5,
        key_zipf_exponent: 0.9,
        xref_mean: 7.3,
    }
}

fn base_scenario(
    participants: usize,
    txns_per_recon: usize,
    txn_size: usize,
    scale: FigureScale,
) -> ScenarioConfig {
    ScenarioConfig {
        participants,
        transactions_between_reconciliations: txns_per_recon,
        rounds: scale.rounds(),
        workload: base_workload(txn_size),
        seed: 20060627, // SIGMOD 2006's opening day; any fixed seed works.
    }
}

/// One row of Figure 8: transaction size versus state ratio, holding the
/// number of updates between reconciliations constant.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08Row {
    /// Updates per transaction.
    pub transaction_size: usize,
    /// Transactions per reconciliation (so that size × transactions is
    /// constant).
    pub transactions_per_reconciliation: usize,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
}

/// Figure 8: the effect of transaction size on state ratio, holding the
/// number of updates between reconciliations constant (10 participants).
pub fn fig08_transaction_size(scale: FigureScale) -> Vec<Fig08Row> {
    let sizes: &[usize] = match scale {
        FigureScale::Quick => &[1, 2, 4, 10],
        FigureScale::Full => &[1, 2, 3, 4, 5, 6, 8, 10],
    };
    const UPDATES_PER_RECON: usize = 20;
    sizes
        .iter()
        .map(|&size| {
            let txns = (UPDATES_PER_RECON / size).max(1);
            let config = base_scenario(10, txns, size, scale);
            let result = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
            Fig08Row {
                transaction_size: size,
                transactions_per_reconciliation: txns,
                state_ratio: result.state_ratio,
            }
        })
        .collect()
}

/// One row of Figure 9: reconciliation interval versus state ratio.
#[derive(Debug, Clone, Serialize)]
pub struct Fig09Row {
    /// Transactions (of size 1) published between reconciliations.
    pub reconciliation_interval: usize,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
}

/// Figure 9: the effect of the reconciliation interval on state ratio
/// (10 participants, single-update transactions).
pub fn fig09_recon_interval_ratio(scale: FigureScale) -> Vec<Fig09Row> {
    let intervals: &[usize] = match scale {
        FigureScale::Quick => &[1, 5, 20],
        FigureScale::Full => &[1, 2, 4, 8, 12, 16, 20],
    };
    intervals
        .iter()
        .map(|&ri| {
            let config = base_scenario(10, ri, 1, scale);
            let result = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
            Fig09Row { reconciliation_interval: ri, state_ratio: result.state_ratio }
        })
        .collect()
}

/// One row of Figure 10: reconciliation interval versus execution time,
/// split into store time and local time, for both stores.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Row {
    /// Transactions (of size 1) published between reconciliations.
    pub reconciliation_interval: usize,
    /// `"central"` or `"distributed"`.
    pub store_kind: String,
    /// Store-side seconds per participant over the run.
    pub store_time_secs: f64,
    /// Local (client algorithm) seconds per participant over the run.
    pub local_time_secs: f64,
}

/// Figure 10: total reconciliation time per participant for reconciliation
/// intervals 4, 20 and 50, with both the centralised and the DHT-based
/// store.
///
/// As in the paper, every configuration publishes the same total number of
/// transactions per participant; a smaller interval therefore means more,
/// smaller reconciliations, and the figure shows how that overhead differs
/// between the two stores.
pub fn fig10_recon_interval_time(scale: FigureScale) -> Vec<Fig10Row> {
    let intervals: &[usize] = match scale {
        FigureScale::Quick => &[4, 20],
        FigureScale::Full => &[4, 20, 50],
    };
    let total_transactions = match scale {
        FigureScale::Quick => 40,
        FigureScale::Full => 100,
    };
    let mut rows = Vec::new();
    for &ri in intervals {
        let mut config = base_scenario(10, ri, 1, scale);
        config.rounds = (total_transactions / ri).max(1);
        let central = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        rows.push(Fig10Row {
            reconciliation_interval: ri,
            store_kind: "central".into(),
            store_time_secs: central.store_time_per_participant.as_secs_f64(),
            local_time_secs: central.local_time_per_participant.as_secs_f64(),
        });
        let dht = run_scenario(DhtStore::new(bioinformatics_schema()), &config);
        rows.push(Fig10Row {
            reconciliation_interval: ri,
            store_kind: "distributed".into(),
            store_time_secs: dht.store_time_per_participant.as_secs_f64(),
            local_time_secs: dht.local_time_per_participant.as_secs_f64(),
        });
    }
    rows
}

/// One row of Figure 11: number of participants versus state ratio.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// Number of participants.
    pub participants: usize,
    /// Final state ratio over the `Function` relation.
    pub state_ratio: f64,
}

/// Figure 11: the change in state ratio as the confederation grows
/// (reconciliation interval 4, single-update transactions).
pub fn fig11_participants_ratio(scale: FigureScale) -> Vec<Fig11Row> {
    let peer_counts: &[usize] = match scale {
        FigureScale::Quick => &[5, 10, 25],
        FigureScale::Full => &[5, 10, 20, 30, 40, 50],
    };
    peer_counts
        .iter()
        .map(|&n| {
            let config = base_scenario(n, 4, 1, scale);
            let result = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
            Fig11Row { participants: n, state_ratio: result.state_ratio }
        })
        .collect()
}

/// One row of Figure 12: number of participants versus time per
/// reconciliation for each store.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Number of participants.
    pub participants: usize,
    /// `"central"` or `"distributed"`.
    pub store_kind: String,
    /// Store-side seconds per reconciliation.
    pub store_time_secs: f64,
    /// Local seconds per reconciliation.
    pub local_time_secs: f64,
}

/// Figure 12: average time per reconciliation with 10, 25 and 50
/// participants, for both stores.
pub fn fig12_participants_time(scale: FigureScale) -> Vec<Fig12Row> {
    let peer_counts: &[usize] = match scale {
        FigureScale::Quick => &[10, 25],
        FigureScale::Full => &[10, 25, 50],
    };
    let mut rows = Vec::new();
    for &n in peer_counts {
        let config = base_scenario(n, 4, 1, scale);
        let central = run_scenario(CentralStore::new(bioinformatics_schema()), &config);
        let recons = (n * scale.rounds()) as f64;
        rows.push(Fig12Row {
            participants: n,
            store_kind: "central".into(),
            store_time_secs: central.store_time_per_participant.as_secs_f64() * n as f64 / recons,
            local_time_secs: central.local_time_per_participant.as_secs_f64() * n as f64 / recons,
        });
        let dht = run_scenario(DhtStore::new(bioinformatics_schema()), &config);
        rows.push(Fig12Row {
            participants: n,
            store_kind: "distributed".into(),
            store_time_secs: dht.store_time_per_participant.as_secs_f64() * n as f64 / recons,
            local_time_secs: dht.local_time_per_participant.as_secs_f64() * n as f64 / recons,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_rows_hold_updates_per_reconciliation_constant() {
        let rows = fig08_transaction_size(FigureScale::Quick);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.state_ratio >= 1.0 && row.state_ratio <= 10.0);
            assert!(row.transaction_size * row.transactions_per_reconciliation >= 10);
        }
        // Larger transactions should not *reduce* divergence below the
        // single-update baseline (the paper finds they increase it).
        let single = rows.iter().find(|r| r.transaction_size == 1).unwrap();
        let large = rows.iter().find(|r| r.transaction_size == 10).unwrap();
        assert!(large.state_ratio >= single.state_ratio - 0.25);
    }

    #[test]
    fn fig10_distributed_store_time_exceeds_central() {
        let rows = fig10_recon_interval_time(FigureScale::Quick);
        for ri in [4usize, 20] {
            let central = rows
                .iter()
                .find(|r| r.reconciliation_interval == ri && r.store_kind == "central")
                .unwrap();
            let dht = rows
                .iter()
                .find(|r| r.reconciliation_interval == ri && r.store_kind == "distributed")
                .unwrap();
            assert!(
                dht.store_time_secs > central.store_time_secs,
                "RI {ri}: dht {} <= central {}",
                dht.store_time_secs,
                central.store_time_secs
            );
        }
    }

    #[test]
    fn fig11_state_ratio_grows_sublinearly() {
        let rows = fig11_participants_ratio(FigureScale::Quick);
        assert_eq!(rows.len(), 3);
        let small = &rows[0];
        let large = &rows[rows.len() - 1];
        assert!(large.state_ratio >= small.state_ratio - 0.25);
        // Decidedly sublinear: far below the number of peers.
        assert!(large.state_ratio < large.participants as f64 / 2.0);
    }
}
