//! The offline-churn benchmark: is the causal-DAG epoch mode free when
//! nobody partitions, does a partitioned confederation converge after
//! healing, and does client-side stamp allocation actually buy publish
//! concurrency?
//!
//! This is the `BENCH_churn_offline.json` entry of the repository's
//! benchmark trajectory. Three runs of the same schedule plus one
//! microbenchmark:
//!
//! * `decisions_match` — the unpartitioned schedule over a scalar-epoch
//!   store and over a causal-DAG store reaches identical decision totals
//!   (accept / reject / defer / resolution counts and the final state
//!   ratio). The mode switch must not change a single decision.
//! * `converged_after_heal` — a causal run with rolling partitions: offline
//!   participants buffer stamped publications client-side and deliver them
//!   at heal time; after the last heal and a catch-up pass nobody is
//!   offline, no batch is buffered, and the store's convergence horizon has
//!   caught up to the largest stable epoch.
//! * `publish_concurrency_speedup` — concurrent publishers with a simulated
//!   epoch-allocation latency. Scalar mode pays the latency inside the
//!   store's commit lock (publishes serialise); causal mode stamps
//!   client-side before taking any lock (latencies overlap). Gated against
//!   regression by `trajectory_check` like every `*speedup`.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{
    AntichainClock, CausalStamp, ParticipantId, StampId, Transaction, Tuple, Update,
};
use orchestra_store::{CentralStore, UpdateStore};
use orchestra_workload::{
    mutual_trust_policies, run_offline_scenario, ChurnConfig, EpochMode, OfflineChurnConfig,
    OfflineChurnResult, WorkloadConfig,
};
use serde::Serialize;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::figures::FigureScale;

/// One row of the offline benchmark: one run of the schedule.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnOfflineRow {
    /// `"scalar"`, `"causal"` or `"causal-partitioned"`.
    pub mode: String,
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Online publish calls that committed an epoch.
    pub publishes: usize,
    /// Root transactions accepted.
    pub accepted: usize,
    /// Root transactions rejected.
    pub rejected: usize,
    /// Root transactions deferred.
    pub deferred: usize,
    /// Conflict-resolution rounds.
    pub resolutions: usize,
    /// Final state ratio over `Function`.
    pub state_ratio: f64,
    /// Partition windows opened during the run.
    pub partitions: usize,
    /// Batches published while offline and delivered at heal time.
    pub healed_batches: usize,
    /// Largest stable epoch at the end of the run.
    pub final_epoch: u64,
    /// Convergence horizon after the catch-up pass.
    pub convergence_horizon: u64,
    /// The store's causal frontier (empty in scalar mode).
    pub final_frontier: String,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
}

/// Headline answers of the offline benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnOfflineSummary {
    /// Whether the scalar and causal runs of the same unpartitioned schedule
    /// reached identical decision totals (they must — the mode switch is
    /// decision-invariant). `trajectory_check` fails the build when false.
    pub decisions_match: bool,
    /// Whether the partitioned causal run fully converged after the last
    /// heal (nobody offline, nothing buffered, horizon == stable epoch).
    /// `trajectory_check` fails the build when false.
    pub converged_after_heal: bool,
    /// Scalar concurrent-publish wall clock divided by the causal one under
    /// the same simulated allocation latency. Gated against regression.
    pub publish_concurrency_speedup: f64,
    /// Wall seconds of the scalar concurrent-publish microbenchmark.
    pub scalar_publish_wall_seconds: f64,
    /// Wall seconds of the causal concurrent-publish microbenchmark.
    pub causal_publish_wall_seconds: f64,
    /// Partition windows in the partitioned run.
    pub partitions: usize,
    /// Offline batches delivered at heal time in the partitioned run.
    pub healed_batches: usize,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnOfflineReport {
    /// Per-run rows.
    pub rows: Vec<ChurnOfflineRow>,
    /// Headline answers.
    pub summary: ChurnOfflineSummary,
}

/// Concurrent-publish microbenchmark shape.
#[derive(Debug, Clone, Copy)]
pub struct PublishConcurrencyConfig {
    /// Concurrent publishers.
    pub publishers: u32,
    /// Sequential batches each publisher commits.
    pub batches: u64,
    /// Simulated epoch-allocation latency per publish.
    pub latency: Duration,
}

/// The schedule and partition cadence used at each scale.
pub fn churn_offline_config(scale: FigureScale) -> OfflineChurnConfig {
    let (participants, rounds) = match scale {
        FigureScale::Quick => (8, 120),
        FigureScale::Full => (12, 320),
    };
    OfflineChurnConfig::for_churn(ChurnConfig {
        participants,
        rounds,
        transactions_per_publish: 2,
        max_reconcile_interval: 4,
        resolve_every: 3,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 64,
            function_pool: 24,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    })
}

/// The microbenchmark shape used at each scale.
pub fn publish_concurrency_config(scale: FigureScale) -> PublishConcurrencyConfig {
    match scale {
        FigureScale::Quick => PublishConcurrencyConfig {
            publishers: 6,
            batches: 3,
            latency: Duration::from_millis(20),
        },
        FigureScale::Full => PublishConcurrencyConfig {
            publishers: 8,
            batches: 4,
            latency: Duration::from_millis(25),
        },
    }
}

fn row(mode: &str, result: &OfflineChurnResult) -> ChurnOfflineRow {
    ChurnOfflineRow {
        mode: mode.to_string(),
        reconciliations: result.totals.reconciliations,
        publishes: result.totals.publishes,
        accepted: result.totals.accepted,
        rejected: result.totals.rejected,
        deferred: result.totals.deferred,
        resolutions: result.totals.resolutions,
        state_ratio: result.totals.state_ratio,
        partitions: result.partitions,
        healed_batches: result.healed_batches,
        final_epoch: result.final_epoch,
        convergence_horizon: result.convergence_horizon,
        final_frontier: result.final_frontier.clone(),
        wall_seconds: result.wall.as_secs_f64(),
    }
}

/// Times `publishers` threads each committing `batches` single-transaction
/// publishes under a simulated allocation latency. In scalar mode the store
/// sleeps while holding its commit lock (the real allocator round trip sits
/// on the critical path); in causal mode the stamp is allocated client-side
/// and the sleep happens before any lock is taken, so the latencies of
/// concurrent publishers overlap.
pub fn time_concurrent_publishes(causal: bool, config: &PublishConcurrencyConfig) -> Duration {
    let store = CentralStore::new(bioinformatics_schema());
    for policy in mutual_trust_policies(config.publishers as usize, 1) {
        store.register_participant(policy);
    }
    if causal {
        store.enable_causal_mode().expect("fresh store accepts causal mode");
    }
    store.catalog().set_alloc_latency(config.latency);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for i in 1..=config.publishers {
            let store = &store;
            let batches = config.batches;
            scope.spawn(move || {
                let id = ParticipantId(i);
                for seq in 1..=batches {
                    let tuple =
                        Tuple::of_text(&[&format!("org{i}"), &format!("prot{i}_{seq}"), "fn"]);
                    let txn = Transaction::from_parts(
                        id,
                        seq,
                        vec![Update::insert("Function", tuple, id)],
                    )
                    .expect("valid transaction");
                    if causal {
                        let parents = if seq == 1 {
                            AntichainClock::new()
                        } else {
                            AntichainClock::from_stamps([StampId::new(id, seq - 1)])
                        };
                        store
                            .publish_stamped(CausalStamp::new(id, seq, parents), vec![txn])
                            .expect("stamped publish succeeds");
                    } else {
                        store.publish(id, vec![txn]).expect("publish succeeds");
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// Runs the offline benchmark over an explicit schedule and microbenchmark
/// shape.
pub fn run_churn_offline_bench_with(
    config: &OfflineChurnConfig,
    concurrency: &PublishConcurrencyConfig,
) -> ChurnOfflineReport {
    let baseline = config.unpartitioned();
    let scalar = run_offline_scenario(
        CentralStore::new(bioinformatics_schema()),
        EpochMode::Scalar,
        &baseline,
    );
    let causal = run_offline_scenario(
        CentralStore::new(bioinformatics_schema()),
        EpochMode::Causal,
        &baseline,
    );
    let partitioned =
        run_offline_scenario(CentralStore::new(bioinformatics_schema()), EpochMode::Causal, config);

    // Best of two runs per mode: the walls are sleep-dominated by design,
    // so the minimum is the stable signal and scheduler hiccups on a busy
    // CI host cannot fake a speedup regression.
    let scalar_wall = time_concurrent_publishes(false, concurrency)
        .min(time_concurrent_publishes(false, concurrency));
    let causal_wall = time_concurrent_publishes(true, concurrency)
        .min(time_concurrent_publishes(true, concurrency));

    let summary = ChurnOfflineSummary {
        decisions_match: scalar.totals == causal.totals,
        converged_after_heal: partitioned.converged_after_heal
            && partitioned.partitions > 0
            && partitioned.healed_batches > 0,
        publish_concurrency_speedup: scalar_wall.as_secs_f64()
            / causal_wall.as_secs_f64().max(f64::EPSILON),
        scalar_publish_wall_seconds: scalar_wall.as_secs_f64(),
        causal_publish_wall_seconds: causal_wall.as_secs_f64(),
        partitions: partitioned.partitions,
        healed_batches: partitioned.healed_batches,
    };
    ChurnOfflineReport {
        rows: vec![
            row("scalar", &scalar),
            row("causal", &causal),
            row("causal-partitioned", &partitioned),
        ],
        summary,
    }
}

/// Runs the offline benchmark at the given scale.
pub fn run_churn_offline_bench(scale: FigureScale) -> ChurnOfflineReport {
    run_churn_offline_bench_with(&churn_offline_config(scale), &publish_concurrency_config(scale))
}

/// Writes the benchmark document as pretty-printed JSON:
/// `{"benchmark": "churn_offline", "meta": {...}, "rows": [...],
/// "summary": {...}}`.
pub fn write_churn_offline_json(path: &Path, report: &ChurnOfflineReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn_offline".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_offline_bench_matches_and_converges() {
        let mut config = churn_offline_config(FigureScale::Quick);
        config.churn.participants = 4;
        config.churn.rounds = 24;
        config.partition_every = 6;
        config.partition_rounds = 2;
        config.partition_size = 1;
        let concurrency = PublishConcurrencyConfig {
            publishers: 3,
            batches: 1,
            latency: Duration::from_millis(5),
        };
        let report = run_churn_offline_bench_with(&config, &concurrency);
        assert!(report.summary.decisions_match, "mode switch is decision-invariant");
        assert!(report.summary.converged_after_heal, "partitioned run converges");
        assert!(
            report.summary.publish_concurrency_speedup > 1.0,
            "client-side stamping overlaps allocation latency (speedup {})",
            report.summary.publish_concurrency_speedup
        );
        assert_eq!(report.rows.len(), 3);
        assert!(report.rows[1].final_frontier.contains("p1:"));
    }
}
