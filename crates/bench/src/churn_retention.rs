//! The retention benchmark: does convergence-horizon pruning actually bound
//! the store's live set, and does it cost anything?
//!
//! This is the `BENCH_churn_retention.json` entry of the repository's
//! benchmark trajectory. The same long churn schedule runs once per
//! retention policy — `KeepAll` (the paper's unbounded store) and
//! `ConvergedOnly` (prune the converged prefix down to the pinned-ancestor
//! set) — with identical seeds. The gate checks:
//!
//! * `decisions_match` — pruning is decision-invariant: accept / reject /
//!   defer / resolution totals and the final state ratio are identical;
//! * `live_set_bounded` — the `ConvergedOnly` live set (live log entries +
//!   live relevance entries) stops growing between mid-history and the end
//!   of the run, while the `KeepAll` live set grows with history;
//! * `live_set_speedup` — how many times smaller the pruned live set ends up
//!   (gated against regression like every other trajectory speedup).

use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::{CentralStore, RetentionPolicy};
use orchestra_workload::{
    run_retention_scenario, ChurnConfig, RetentionChurnConfig, RetentionChurnResult, WorkloadConfig,
};
use serde::Serialize;
use std::io;
use std::path::Path;

use crate::figures::FigureScale;

/// One row of the retention benchmark: a policy's footprint and cost.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRetentionRow {
    /// `"keep-all"` or `"converged-only"`.
    pub mode: String,
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Transactions published over the run (the history length; must match
    /// across modes).
    pub total_published: u64,
    /// Live set (log + relevance entries) at mid-history.
    pub mid_live_set: usize,
    /// Live set at the end of the run (after catch-up and the final prune).
    pub final_live_set: usize,
    /// Largest live set observed at any sample — the store's peak memory
    /// proxy.
    pub peak_live_set: usize,
    /// Live log entries at the end.
    pub final_log_entries: usize,
    /// Live relevance-index entries at the end.
    pub final_relevance_entries: usize,
    /// Effective prune passes.
    pub prunes: usize,
    /// Log entries removed by pruning.
    pub pruned_log_entries: u64,
    /// Sub-horizon entries kept as pinned ancestors by the last pass.
    pub pinned: u64,
    /// Store-side seconds summed over participants.
    pub store_seconds: f64,
    /// Local seconds summed over participants.
    pub local_seconds: f64,
    /// Wall-clock seconds of the whole schedule (includes prune passes).
    pub wall_seconds: f64,
    /// Accepted / rejected / deferred / resolution totals (must match).
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Conflict-resolution rounds.
    pub resolutions: usize,
    /// Final state ratio over `Function` (must match across modes).
    pub state_ratio: f64,
}

/// Headline comparison of the two policies.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRetentionSummary {
    /// KeepAll final live set divided by ConvergedOnly final live set — how
    /// many times smaller retention keeps the store. Gated against
    /// regression by `trajectory_check` like every `*speedup`.
    pub live_set_speedup: f64,
    /// True when the ConvergedOnly live set stopped growing with history:
    /// the final live set is within tolerance of the mid-history one *and*
    /// well below the KeepAll endpoint. `trajectory_check` fails the build
    /// when false.
    pub live_set_bounded: bool,
    /// KeepAll wall clock divided by ConvergedOnly wall clock (informative:
    /// pruning should be roughly free, sometimes a small win from smaller
    /// structures).
    pub wall_ratio: f64,
    /// Whether both policies reached identical decision totals and state
    /// ratio (they must — pruning is decision-invariant).
    pub decisions_match: bool,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRetentionReport {
    /// Per-policy rows.
    pub rows: Vec<ChurnRetentionRow>,
    /// Headline comparison.
    pub summary: ChurnRetentionSummary,
}

/// The churn schedule used at each scale. A modest key universe keeps the
/// live data set (and with it the pinned-ancestor set) well below the
/// history length, so the boundedness of the pruned store is visible rather
/// than drowned in one-off values.
pub fn churn_retention_config(scale: FigureScale) -> ChurnConfig {
    let (participants, rounds) = match scale {
        FigureScale::Quick => (8, 160),
        FigureScale::Full => (12, 400),
    };
    ChurnConfig {
        participants,
        rounds,
        transactions_per_publish: 2,
        max_reconcile_interval: 4,
        resolve_every: 3,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 64,
            function_pool: 24,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn row(mode: &str, result: &RetentionChurnResult) -> ChurnRetentionRow {
    let last = result.samples.last();
    ChurnRetentionRow {
        mode: mode.to_string(),
        reconciliations: result.totals.reconciliations,
        total_published: result.total_published,
        mid_live_set: result.live_set_at(0.5),
        final_live_set: result.final_live_set(),
        peak_live_set: result.peak_live_set,
        final_log_entries: last.map(|s| s.live_log_entries).unwrap_or(0),
        final_relevance_entries: last.map(|s| s.live_relevance_entries).unwrap_or(0),
        prunes: result.prunes,
        pruned_log_entries: result.pruned_log_entries,
        pinned: result.last_pinned,
        store_seconds: result.store_time.as_secs_f64(),
        local_seconds: result.local_time.as_secs_f64(),
        wall_seconds: result.wall.as_secs_f64(),
        accepted: result.totals.accepted,
        rejected: result.totals.rejected,
        deferred: result.totals.deferred,
        resolutions: result.totals.resolutions,
        state_ratio: result.totals.state_ratio,
    }
}

fn summarise(
    keepall: &RetentionChurnResult,
    converged: &RetentionChurnResult,
) -> ChurnRetentionReport {
    let keep_row = row("keep-all", keepall);
    let conv_row = row("converged-only", converged);
    // Bounded: between mid-history and the end the pruned live set did not
    // keep growing with history. KeepAll roughly doubles over that window
    // (history doubles), so the gate allows at most half that growth (50%
    // plus small absolute slack for the undecided tail — comfortably above
    // the ~23% the committed run shows, so benign drift cannot flip the
    // flag), and requires the end state to stay under half of the unbounded
    // store's.
    let live_set_bounded = conv_row.final_live_set
        <= conv_row.mid_live_set + conv_row.mid_live_set / 2 + 32
        && 2 * conv_row.final_live_set <= keep_row.final_live_set;
    let summary = ChurnRetentionSummary {
        live_set_speedup: keep_row.final_live_set as f64
            / (conv_row.final_live_set as f64).max(1.0),
        live_set_bounded,
        wall_ratio: keep_row.wall_seconds / conv_row.wall_seconds.max(f64::EPSILON),
        decisions_match: keepall.totals == converged.totals
            && keep_row.total_published == conv_row.total_published,
    };
    ChurnRetentionReport { rows: vec![keep_row, conv_row], summary }
}

/// Runs the retention benchmark over an explicit schedule.
pub fn run_churn_retention_bench_with(config: &ChurnConfig) -> ChurnRetentionReport {
    let keepall = run_retention_scenario(
        CentralStore::new(bioinformatics_schema()),
        &RetentionChurnConfig::for_churn(config.clone(), RetentionPolicy::KeepAll),
    );
    let converged = run_retention_scenario(
        CentralStore::new(bioinformatics_schema()),
        &RetentionChurnConfig::for_churn(config.clone(), RetentionPolicy::ConvergedOnly),
    );
    summarise(&keepall, &converged)
}

/// Runs the retention benchmark at the given scale.
pub fn run_churn_retention_bench(scale: FigureScale) -> ChurnRetentionReport {
    run_churn_retention_bench_with(&churn_retention_config(scale))
}

/// Writes the benchmark document as pretty-printed JSON:
/// `{"benchmark": "churn_retention", "meta": {...}, "rows": [...],
/// "summary": {...}}`.
pub fn write_churn_retention_json(path: &Path, report: &ChurnRetentionReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn_retention".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_retention_bench_matches_decisions_and_bounds_the_live_set() {
        // A reduced history so the test stays fast in debug builds; the
        // committed BENCH_churn_retention.json records the full quick run.
        let mut config = churn_retention_config(FigureScale::Quick);
        config.participants = 5;
        config.rounds = 48;
        config.workload.key_universe = 24;
        config.workload.function_pool = 8;
        let report = run_churn_retention_bench_with(&config);
        assert_eq!(report.rows.len(), 2);
        assert!(report.summary.decisions_match, "policies diverged: {report:?}");
        assert!(report.summary.live_set_bounded, "live set kept growing: {report:?}");
        assert!(report.summary.live_set_speedup > 1.0);
        assert!(report.rows[0].prunes == 0 && report.rows[1].prunes > 0);
        assert!(report.rows.iter().all(|r| r.reconciliations > 0 && r.wall_seconds > 0.0));
    }
}
