//! Figure-reproduction harness for the paper's evaluation (Section 6).
//!
//! Each function in [`figures`] regenerates one figure of the paper: it runs
//! the corresponding experiment over the synthetic SWISS-PROT-style workload
//! and returns the series the figure plots. The `figures` binary prints the
//! series as aligned tables and writes CSV plus JSON documents; the
//! Criterion benches wrap the same runners so `cargo bench` exercises every
//! experiment.
//!
//! Absolute numbers differ from the paper (different decade, language,
//! hardware, and a simulated network), but the qualitative shapes are the
//! point: how the state ratio responds to transaction size, reconciliation
//! interval and confederation size, and how store time compares between the
//! centralised and the DHT-based store.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod churn_durable;
pub mod churn_offline;
pub mod churn_parallel;
pub mod churn_retention;
pub mod churn_scale;
pub mod figures;
pub mod output;
pub mod trajectory;

pub use churn::{
    churn_config, run_churn_bench, run_churn_bench_with, write_churn_json, ChurnBenchReport,
    ChurnBenchRow, ChurnSummary,
};
pub use churn_durable::{
    churn_durable_config, run_churn_durable_bench, run_churn_durable_bench_with,
    write_churn_durable_json, ChurnDurableReport, ChurnDurableRow, ChurnDurableSummary,
    RecoveryRow,
};
pub use churn_offline::{
    churn_offline_config, publish_concurrency_config, run_churn_offline_bench,
    run_churn_offline_bench_with, time_concurrent_publishes, write_churn_offline_json,
    ChurnOfflineReport, ChurnOfflineRow, ChurnOfflineSummary, PublishConcurrencyConfig,
};
pub use churn_parallel::{
    churn_parallel_config, run_churn_parallel_bench, run_churn_parallel_bench_with,
    write_churn_parallel_json, ChurnParallelReport, ChurnParallelRow, ChurnParallelSummary,
};
pub use churn_retention::{
    churn_retention_config, run_churn_retention_bench, run_churn_retention_bench_with,
    write_churn_retention_json, ChurnRetentionReport, ChurnRetentionRow, ChurnRetentionSummary,
};
pub use churn_scale::{
    capture_fabric_trace, churn_scale_config, metrics_snapshot_value, run_churn_scale_bench,
    run_churn_scale_bench_with, write_churn_scale_json, ChurnScaleReport, ChurnScaleRow,
    ChurnScaleSummary,
};
pub use figures::{
    fig08_transaction_size, fig09_recon_interval_ratio, fig10_recon_interval_time,
    fig11_participants_ratio, fig12_participants_time, Fig08Row, Fig09Row, Fig10Row, Fig11Row,
    Fig12Row, FigureScale,
};
pub use output::{bench_meta, meta_value, render_table, write_csv, write_json, BenchMeta};
pub use trajectory::{check_trajectory, TrajectoryReport, TrajectoryViolation};
