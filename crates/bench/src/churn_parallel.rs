//! The concurrent-churn benchmark: the parallel confederation driver versus
//! the sequential one on the same schedule against one shared store.
//!
//! This is the `BENCH_churn_parallel.json` entry of the repository's
//! benchmark trajectory. Both drivers run the *same* interleaved
//! publish/reconcile/resolve schedule with the same seed over a
//! [`CentralStore`] configured with a per-call simulated LAN latency (the
//! round trip the paper's RDBMS-backed store pays on every operation; our
//! in-memory catalogue otherwise hides it). The drivers must reach identical
//! decisions; the comparison is the wall clock of the reconciliation waves:
//! the sequential driver pays the sum of every participant's store round
//! trips and engine time, while the parallel driver — one thread per due
//! participant against the shared `&CentralStore` — overlaps them.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::CentralStore;
use orchestra_workload::{
    run_churn_concurrent, ChurnConfig, ConcurrentChurnResult, ReconcileDriver, WorkloadConfig,
};
use serde::Serialize;
use std::io;
use std::path::Path;
use std::time::Duration;

use crate::figures::FigureScale;

/// Per-call simulated LAN latency used by the benchmark (both drivers) —
/// the paper’s 500 µs per-message figure.
pub const SIMULATED_STORE_LATENCY: Duration = Duration::from_micros(500);

/// One row of the concurrent-churn benchmark: a driver's aggregate cost.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnParallelRow {
    /// `"sequential"` or `"parallel"`.
    pub driver: String,
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Publishes performed.
    pub publishes: usize,
    /// Wall-clock seconds of the reconciliation waves alone.
    pub reconcile_wall_seconds: f64,
    /// Wall-clock seconds of the whole run.
    pub total_wall_seconds: f64,
    /// Store-side seconds summed over every reconciliation (thread time —
    /// identical work in both drivers, so this stays comparable while the
    /// wall clock shrinks).
    pub store_seconds: f64,
    /// Local (engine) seconds summed over every reconciliation.
    pub local_seconds: f64,
    /// Accepted / rejected / deferred root totals (must match across
    /// drivers).
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Final state ratio over `Function` (must match across drivers).
    pub state_ratio: f64,
}

/// Headline comparison of the two drivers.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnParallelSummary {
    /// Sequential reconcile-wave wall clock divided by parallel (the
    /// headline speedup of the parallel confederation driver).
    pub reconcile_wall_speedup: f64,
    /// Sequential total wall clock divided by parallel.
    pub total_wall_speedup: f64,
    /// Whether both drivers reached identical accept/reject/defer totals and
    /// state ratio (they must).
    pub decisions_match: bool,
    /// Number of participants (= threads per wave in the parallel driver).
    pub participants: usize,
    /// The per-call simulated store latency, in microseconds.
    pub simulated_store_latency_us: u64,
    /// Hardware threads available to the run (context for the speedup: on a
    /// single-core host the win comes purely from overlapping store
    /// latency).
    pub available_parallelism: usize,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnParallelReport {
    /// Per-driver rows.
    pub rows: Vec<ChurnParallelRow>,
    /// Headline comparison.
    pub summary: ChurnParallelSummary,
}

/// The churn configuration used by the benchmark at each scale.
pub fn churn_parallel_config(scale: FigureScale) -> ChurnConfig {
    let (participants, rounds) = match scale {
        FigureScale::Quick => (10, 40),
        FigureScale::Full => (16, 100),
    };
    ChurnConfig {
        participants,
        rounds,
        transactions_per_publish: 2,
        max_reconcile_interval: 4,
        resolve_every: 4,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 800,
            function_pool: 400,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn row(driver: &str, result: &ConcurrentChurnResult) -> ChurnParallelRow {
    ChurnParallelRow {
        driver: driver.to_string(),
        reconciliations: result.reconciliations,
        publishes: result.publishes,
        reconcile_wall_seconds: result.reconcile_wall.as_secs_f64(),
        total_wall_seconds: result.total_wall.as_secs_f64(),
        store_seconds: result.store_time.as_secs_f64(),
        local_seconds: result.local_time.as_secs_f64(),
        accepted: result.accepted,
        rejected: result.rejected,
        deferred: result.deferred,
        state_ratio: result.state_ratio,
    }
}

/// Runs the benchmark over an explicit configuration (used by tests and by
/// callers that want custom scales).
pub fn run_churn_parallel_bench_with(config: &ChurnConfig) -> ChurnParallelReport {
    let store =
        || CentralStore::with_simulated_latency(bioinformatics_schema(), SIMULATED_STORE_LATENCY);
    let sequential = run_churn_concurrent(store(), config, ReconcileDriver::Sequential);
    let parallel = run_churn_concurrent(store(), config, ReconcileDriver::Parallel);

    let seq_row = row("sequential", &sequential);
    let par_row = row("parallel", &parallel);
    let summary = ChurnParallelSummary {
        reconcile_wall_speedup: seq_row.reconcile_wall_seconds
            / par_row.reconcile_wall_seconds.max(f64::EPSILON),
        total_wall_speedup: seq_row.total_wall_seconds
            / par_row.total_wall_seconds.max(f64::EPSILON),
        decisions_match: seq_row.accepted == par_row.accepted
            && seq_row.rejected == par_row.rejected
            && seq_row.deferred == par_row.deferred
            && seq_row.reconciliations == par_row.reconciliations
            && seq_row.state_ratio == par_row.state_ratio,
        participants: config.participants,
        simulated_store_latency_us: SIMULATED_STORE_LATENCY.as_micros() as u64,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    ChurnParallelReport { rows: vec![seq_row, par_row], summary }
}

/// Runs the concurrent-churn benchmark at the given scale.
pub fn run_churn_parallel_bench(scale: FigureScale) -> ChurnParallelReport {
    run_churn_parallel_bench_with(&churn_parallel_config(scale))
}

/// Writes the benchmark document as pretty-printed JSON:
/// `{"benchmark": "churn_parallel", "rows": [...], "summary": {...}}`.
pub fn write_churn_parallel_json(path: &Path, report: &ChurnParallelReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn_parallel".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_parallel_bench_matches_decisions() {
        // A reduced schedule so the test stays fast in debug builds; the
        // committed BENCH_churn_parallel.json records the full quick-scale
        // run (where the acceptance bar is a wall-clock speedup > 1).
        let mut config = churn_parallel_config(FigureScale::Quick);
        config.participants = 6;
        config.rounds = 6;
        let report = run_churn_parallel_bench_with(&config);
        assert_eq!(report.rows.len(), 2);
        assert!(report.summary.decisions_match, "drivers diverged: {report:?}");
        assert!(report.rows.iter().all(|r| r.reconciliations > 0));
        assert!(report.summary.simulated_store_latency_us > 0);
    }
}
