//! The churn benchmark: incremental cursor-based retrieval versus the
//! full-log rescan baseline over a long interleaved publish/reconcile
//! history.
//!
//! This is the first entry of the repository's benchmark trajectory
//! (`BENCH_churn.json`): both retrieval modes run the *same* schedule with
//! the same seed, must reach identical decisions, and are compared on
//! store-side time — in total and per covered epoch in the early versus the
//! late part of the run. An O(new-epochs) store keeps the per-epoch cost flat
//! as history grows; the rescan baseline's climbs with history.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::{CentralStore, RetrievalMode};
use orchestra_workload::{run_churn_scenario, ChurnConfig, ChurnResult, WorkloadConfig};
use serde::Serialize;
use std::io;
use std::path::Path;

use crate::figures::FigureScale;

/// One row of the churn benchmark: a retrieval mode's aggregate cost.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnBenchRow {
    /// `"incremental"` or `"rescan-baseline"`.
    pub mode: String,
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Epochs published over the run.
    pub epochs: u64,
    /// Total store-side seconds across all reconciliations.
    pub store_seconds: f64,
    /// Total local seconds across all reconciliations.
    pub local_seconds: f64,
    /// Mean store microseconds per covered epoch over the first third of the
    /// reconciliations.
    pub early_store_micros_per_epoch: f64,
    /// Mean store microseconds per covered epoch over the last third — for
    /// an O(new-epochs) store this stays near the early figure; for the
    /// rescan baseline it climbs with history.
    pub late_store_micros_per_epoch: f64,
    /// Accepted / rejected / deferred root totals (must match across modes).
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Final state ratio over `Function` (must match across modes).
    pub state_ratio: f64,
}

/// Headline comparison of the two modes.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnSummary {
    /// Rescan store time divided by incremental store time (the headline
    /// speedup of the cursor refactor; must stay > 1).
    pub store_speedup: f64,
    /// Late-history per-epoch cost ratio (rescan / incremental).
    pub late_per_epoch_speedup: f64,
    /// Whether both modes reached identical accept/reject/defer totals and
    /// state ratio (they must).
    pub decisions_match: bool,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnBenchReport {
    /// Per-mode rows.
    pub rows: Vec<ChurnBenchRow>,
    /// Headline comparison.
    pub summary: ChurnSummary,
}

/// The churn configuration used by the benchmark at each scale.
pub fn churn_config(scale: FigureScale) -> ChurnConfig {
    let (participants, rounds) = match scale {
        FigureScale::Quick => (10, 120),
        FigureScale::Full => (16, 300),
    };
    ChurnConfig {
        participants,
        rounds,
        transactions_per_publish: 2,
        max_reconcile_interval: 6,
        resolve_every: 4,
        workload: WorkloadConfig {
            transaction_size: 1,
            key_universe: 800,
            function_pool: 400,
            value_zipf_exponent: 1.5,
            key_zipf_exponent: 0.9,
            xref_mean: 7.3,
        },
        seed: 20060627,
    }
}

fn row(mode: &str, result: &ChurnResult) -> ChurnBenchRow {
    let n = result.samples.len();
    ChurnBenchRow {
        mode: mode.to_string(),
        reconciliations: result.reconciliations,
        epochs: result.epochs,
        store_seconds: result.store_time.as_secs_f64(),
        local_seconds: result.local_time.as_secs_f64(),
        early_store_micros_per_epoch: result.store_micros_per_epoch(0, n / 3),
        late_store_micros_per_epoch: result.store_micros_per_epoch(n - n / 3, n),
        accepted: result.accepted,
        rejected: result.rejected,
        deferred: result.deferred,
        state_ratio: result.state_ratio,
    }
}

/// Runs the churn benchmark: the same long-history schedule once per
/// retrieval mode, compared on store time.
pub fn run_churn_bench(scale: FigureScale) -> ChurnBenchReport {
    run_churn_bench_with(&churn_config(scale))
}

fn summarise(incremental: &ChurnResult, rescan: &ChurnResult) -> ChurnBenchReport {
    let inc_row = row("incremental", incremental);
    let res_row = row("rescan-baseline", rescan);
    let summary = ChurnSummary {
        store_speedup: res_row.store_seconds / inc_row.store_seconds.max(f64::EPSILON),
        late_per_epoch_speedup: res_row.late_store_micros_per_epoch
            / inc_row.late_store_micros_per_epoch.max(f64::EPSILON),
        decisions_match: inc_row.accepted == res_row.accepted
            && inc_row.rejected == res_row.rejected
            && inc_row.deferred == res_row.deferred
            && inc_row.state_ratio == res_row.state_ratio,
    };
    ChurnBenchReport { rows: vec![inc_row, res_row], summary }
}

/// Writes the benchmark document as pretty-printed JSON:
/// `{"benchmark": "churn", "meta": {...}, "rows": [...], "summary": {...}}`.
pub fn write_churn_json(path: &Path, report: &ChurnBenchReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

/// Runs the benchmark over an explicit configuration (used by tests and by
/// callers that want custom scales).
pub fn run_churn_bench_with(config: &ChurnConfig) -> ChurnBenchReport {
    let incremental = run_churn_scenario(CentralStore::new(bioinformatics_schema()), config);
    let rescan = run_churn_scenario(
        CentralStore::with_retrieval(bioinformatics_schema(), RetrievalMode::RescanBaseline),
        config,
    );
    summarise(&incremental, &rescan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_churn_bench_matches_decisions_and_is_never_slower() {
        // A reduced history so the test stays fast in debug builds; the
        // committed BENCH_churn.json records the full quick-scale run.
        let mut config = churn_config(FigureScale::Quick);
        config.participants = 6;
        config.rounds = 30;
        let report = run_churn_bench_with(&config);
        assert_eq!(report.rows.len(), 2);
        assert!(report.summary.decisions_match, "modes diverged: {report:?}");
        assert!(
            report.summary.store_speedup > 1.0,
            "incremental retrieval slower than the rescan baseline: {:.2}x",
            report.summary.store_speedup
        );
        assert!(report.rows.iter().all(|r| r.store_seconds > 0.0 && r.reconciliations > 0));
    }
}
