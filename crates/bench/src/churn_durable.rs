//! The durable-churn benchmark: what durability costs on the hot path and
//! what it buys at recovery time.
//!
//! This is the `BENCH_churn_durable.json` entry of the repository's
//! benchmark trajectory. The same churn schedule runs over the ephemeral
//! in-memory store and over WAL-backed stores in each codec × segment-layout
//! combination — so the per-call store-time overhead of logging every
//! publish and decision commit is measured directly (decisions must be
//! identical; durability is invisible to the algorithm). Recovery cost is
//! then measured against log length *per codec*: histories of increasing
//! size are recovered by replaying the full WAL and from a compacting
//! snapshot, pinning down both the latency the snapshot saves and the replay
//! speedup the binary codec buys over the JSON debug codec. An 8-thread
//! commit stress compares per-shard segments against the single-segment
//! layout under per-append `fsync`. Finally the crash-restart scenario
//! ([`orchestra_workload::run_crash_restart_scenario`]) runs end to end,
//! asserting that a mid-wave crash recovers to byte-identical durable state
//! and finishes the schedule with decisions identical to an uninterrupted
//! run.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_model::{ParticipantId, Transaction, Tuple, Update};
use orchestra_store::{
    CentralStore, Codec, FlushPolicy, ReconciliationSession, UpdateStore, WalOptions,
};
use orchestra_workload::{
    mutual_trust_policies, run_churn_scenario, run_crash_restart_scenario, ChurnConfig,
    ChurnResult, CrashChurnConfig,
};
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::churn::churn_config;
use crate::figures::FigureScale;

/// One row of the durable-churn benchmark: a store mode's aggregate cost
/// over the full schedule.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDurableRow {
    /// `"ephemeral"`, `"wal"` (binary, per-shard), `"wal_single"` (binary,
    /// one segment) or `"wal_json"` (JSON inspection mode, per-shard).
    pub mode: String,
    /// WAL codec of the run (`"-"` for the ephemeral store).
    pub codec: String,
    /// Live WAL segments at the end of the run (0 for the ephemeral store).
    pub segments: usize,
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Epochs published over the run.
    pub epochs: u64,
    /// Total store-side seconds across all reconciliations. NOTE: on small
    /// hosts this sampled figure is dominated by allocator-locality effects
    /// (the WAL run's encode churn measurably *speeds up* unrelated reads),
    /// so the headline overhead is the wall-clock ratio, not this.
    pub store_seconds: f64,
    /// Total local seconds across all reconciliations.
    pub local_seconds: f64,
    /// Wall-clock seconds of the whole schedule (the honest basis for the
    /// durability overhead: it includes the WAL work charged to publishes).
    pub wall_seconds: f64,
    /// Accepted / rejected / deferred root totals (must match across modes).
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Final state ratio over `Function` (must match across modes).
    pub state_ratio: f64,
    /// WAL records appended by the run (0 for the ephemeral store).
    pub wal_records: u64,
    /// WAL bytes appended by the run (0 for the ephemeral store).
    pub wal_bytes: u64,
}

/// One recovery measurement: the same history recovered by full WAL replay
/// and from a compacting snapshot, in one codec.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRow {
    /// WAL codec the history was written in.
    pub codec: String,
    /// Publish rounds of the history (the log-length axis).
    pub rounds: usize,
    /// Epochs in the history.
    pub epochs: u64,
    /// WAL segments merged on the replay-only path.
    pub segments: usize,
    /// WAL records replayed on the replay-only path.
    pub wal_records: u64,
    /// WAL bytes replayed on the replay-only path.
    pub wal_bytes: u64,
    /// Milliseconds to recover by replaying the full WAL (best of three —
    /// recovery is read-only, so it can repeat).
    pub replay_ms: f64,
    /// Milliseconds of the codec-side share of that replay: opening every
    /// segment and decoding all records to `WalRecord`s, without applying
    /// them (best of three). `replay_ms − decode_ms` is the apply cost,
    /// which is codec-independent.
    pub decode_ms: f64,
    /// Milliseconds to recover from the snapshot (plus the empty WAL tail),
    /// best of three.
    pub snapshot_ms: f64,
    /// Snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Whether both recovery paths produced durable state byte-identical to
    /// the live store (they must).
    pub recovered_identical: bool,
}

/// One row of the parallel durable-commit stress: `threads` participants
/// committing reconciliations concurrently against one shared WAL-backed
/// store with per-append `fsync`.
#[derive(Debug, Clone, Serialize)]
pub struct CommitStressRow {
    /// `"per_shard"` or `"single_segment"`.
    pub layout: String,
    /// Committing threads (one per participant).
    pub threads: usize,
    /// Reconciliation commits performed in total.
    pub commits: u64,
    /// Wall-clock seconds of the commit phase.
    pub wall_seconds: f64,
    /// Commits per second across all threads.
    pub commits_per_second: f64,
    /// Live WAL segments at the end of the run.
    pub segments: usize,
}

/// Headline comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDurableSummary {
    /// WAL-run wall clock divided by ephemeral wall clock — the end-to-end
    /// price of durability (expected a little above 1).
    pub wal_wall_overhead: f64,
    /// JSON-codec replay time divided by binary-codec replay time on the
    /// longest history: what the length-prefixed binary codec buys at
    /// recovery, end to end. Replay applies every record through the live
    /// store paths, and that apply cost is codec-independent, so this ratio
    /// is Amdahl-capped well below the pure codec speedup — see
    /// `codec_decode_speedup` for the codec-side ratio. Trajectory-gated
    /// (may not regress more than the tolerance below the committed value).
    pub replay_speedup: f64,
    /// JSON-codec decode time divided by binary-codec decode time on the
    /// longest history (segment open + every record decoded, nothing
    /// applied): the codec-for-codec replay speedup with the shared,
    /// codec-independent apply cost factored out. Trajectory-gated.
    pub codec_decode_speedup: f64,
    /// JSON-codec WAL bytes divided by binary-codec WAL bytes on the longest
    /// history: the on-disk shrink the binary codec buys. Deterministic for
    /// a fixed schedule.
    pub wal_shrink: f64,
    /// Per-shard commit throughput divided by single-segment commit
    /// throughput in the 8-thread stress. Deliberately *not* named with a
    /// `speedup` suffix: parallel `fsync` timing is too host-sensitive to
    /// regression-gate, so it is reported un-gated.
    pub commit_scaling: f64,
    /// Full-WAL-replay recovery time divided by snapshot recovery time on
    /// the longest binary history. Informative rather than gated: with this
    /// workload's state growing as fast as its history (the log retains
    /// every transaction), snapshot load parses as many bytes as a full
    /// replay, so the ratio hovers near 1 — what compaction robustly buys
    /// here is the bounded on-disk footprint, not restart latency.
    pub snapshot_recovery_ratio: f64,
    /// Whether every WAL-backed run reached accept/reject/defer totals and
    /// state ratio identical to the ephemeral run's, and every recovery row
    /// recovered byte-identically (they must).
    pub decisions_match: bool,
    /// Whether the crash-restart scenario recovered byte-identical durable
    /// state *and* finished with decisions identical to the uninterrupted
    /// baseline (it must).
    pub crash_restart_decisions_match: bool,
    /// Wall-clock microseconds of the crash-restart scenario's recovery
    /// (snapshot load + WAL replay at the crash point).
    pub crash_recover_micros: u64,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDurableReport {
    /// Per-mode rows.
    pub rows: Vec<ChurnDurableRow>,
    /// Recovery latency vs. log length, per codec.
    pub recovery: Vec<RecoveryRow>,
    /// The parallel commit stress, per segment layout.
    pub commit_stress: Vec<CommitStressRow>,
    /// Headline comparison.
    pub summary: ChurnDurableSummary,
}

/// The churn configuration used at each scale (the same schedule as
/// `BENCH_churn.json`, so the trajectory stays comparable).
pub fn churn_durable_config(scale: FigureScale) -> ChurnConfig {
    churn_config(scale)
}

#[allow(clippy::too_many_arguments)]
fn row(
    mode: &str,
    codec: &str,
    segments: usize,
    result: &ChurnResult,
    wall: Duration,
    wal_records: u64,
    wal_bytes: u64,
) -> ChurnDurableRow {
    ChurnDurableRow {
        mode: mode.to_string(),
        codec: codec.to_string(),
        segments,
        reconciliations: result.reconciliations,
        epochs: result.epochs,
        store_seconds: result.store_time.as_secs_f64(),
        local_seconds: result.local_time.as_secs_f64(),
        wall_seconds: wall.as_secs_f64(),
        accepted: result.accepted,
        rejected: result.rejected,
        deferred: result.deferred,
        state_ratio: result.state_ratio,
        wal_records,
        wal_bytes,
    }
}

/// A scratch directory under the system temp dir, wiped before use.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("orchestra-churn-durable-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Recovers `dir` `repeats` times, returning the best wall-clock
/// milliseconds and the last recovered store (recovery is read-only, so
/// repeating it is sound — `recovery_is_idempotent` in the integration suite
/// pins that down).
fn timed_recover(dir: &Path, repeats: usize) -> (f64, CentralStore) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let recovered = CentralStore::recover(dir).expect("recovery succeeds");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(recovered);
    }
    (best_ms, last.expect("at least one recovery"))
}

/// Measures recovery latency for one history length in one codec:
/// replay-only, then snapshot-based.
fn measure_recovery(config: &ChurnConfig, rounds: usize, codec: Codec) -> RecoveryRow {
    let mut config = config.clone();
    config.rounds = rounds;
    let dir = scratch_dir(&format!("recover-{}-{rounds}", codec.label()));
    let options = WalOptions { codec, per_shard: true };
    let store = CentralStore::durable_with(bioinformatics_schema(), &dir, options)
        .expect("fresh scratch dir");
    let result = run_churn_scenario(store, &config);

    // Replay-only: the WAL still holds the entire history.
    let (replay_ms, replayed) = timed_recover(&dir, 3);
    let live = format!("{:?}", replayed.catalog());
    let backend = replayed.catalog().durability().file_backend().expect("durable");
    let (wal_records, wal_bytes) = (backend.wal_records(), backend.wal_bytes());
    let segments = backend.segment_count();
    let generation = backend.generation();

    // Codec-side share of that replay: merge the segments and decode every
    // record, applying none of them.
    let mut decode_ms = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let (_, records) =
            orchestra_storage::segment::SegmentedWal::open(backend.dir(), generation, None, true)
                .expect("segments open");
        decode_ms = decode_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(records.len() as u64, wal_records, "decode saw every record");
    }

    // Snapshot-based: compact, then recover again from the snapshot plus an
    // empty WAL tail.
    replayed.snapshot().expect("snapshot succeeds");
    let snapshot_bytes = std::fs::metadata(orchestra_storage::snapshot::snapshot_path(&dir))
        .map(|m| m.len())
        .unwrap_or(0);
    drop(replayed);
    let (snapshot_ms, snapped) = timed_recover(&dir, 3);
    let recovered_identical = format!("{:?}", snapped.catalog()) == live;
    drop(snapped);
    std::fs::remove_dir_all(&dir).ok();
    RecoveryRow {
        codec: codec.label().to_string(),
        rounds,
        epochs: result.epochs,
        segments,
        wal_records,
        wal_bytes,
        replay_ms,
        decode_ms,
        snapshot_ms,
        snapshot_bytes,
        recovered_identical,
    }
}

/// Threads of the parallel commit stress (the benchmark's headline uses 8).
pub const STRESS_THREADS: usize = 8;

/// Runs the parallel durable-commit stress for one segment layout:
/// `STRESS_THREADS` participants each committing `commits_per_thread`
/// reconciliations against one shared store under per-append `fsync` — the
/// flush is what a shared segment serialises on, so this is the
/// layout-sensitive part of a durable commit.
fn run_commit_stress(per_shard: bool, commits_per_thread: usize) -> CommitStressRow {
    let layout = if per_shard { "per_shard" } else { "single_segment" };
    let dir = scratch_dir(&format!("stress-{layout}"));
    let options = WalOptions { codec: Codec::Binary, per_shard };
    let store = CentralStore::durable_with(bioinformatics_schema(), &dir, options)
        .expect("fresh scratch dir");
    for policy in mutual_trust_policies(STRESS_THREADS, 1) {
        store.register_participant(policy);
    }
    store
        .catalog()
        .durability()
        .file_backend()
        .expect("durable")
        .set_flush_policy(FlushPolicy::EveryAppend);
    // A little published history so every session pins a non-zero epoch
    // (untimed — the stress measures the commit path alone).
    for i in 0..STRESS_THREADS as u32 {
        let publisher = ParticipantId(i + 1);
        let tuple = Tuple::of_text(&["rat", &format!("prot{i}"), "stress"]);
        let txn = Transaction::from_parts(
            publisher,
            0,
            vec![Update::insert("Function", tuple, publisher)],
        )
        .expect("valid transaction");
        store.publish(publisher, vec![txn]).expect("publish succeeds");
    }

    let start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..STRESS_THREADS as u32 {
            let store = &store;
            scope.spawn(move || {
                let participant = ParticipantId(i + 1);
                for _ in 0..commits_per_thread {
                    let session =
                        ReconciliationSession::open(store, participant).expect("session opens");
                    // An empty commit still durably records the
                    // reconciliation (recno + cursor) — one WAL append +
                    // fsync on the participant's shard.
                    session.commit(&[], &[]).expect("commit succeeds");
                }
            });
        }
    });
    let wall = start.elapsed();
    let commits = (STRESS_THREADS * commits_per_thread) as u64;
    let segments = store.catalog().durability().file_backend().expect("durable").segment_count();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    CommitStressRow {
        layout: layout.to_string(),
        threads: STRESS_THREADS,
        commits,
        wall_seconds: wall.as_secs_f64(),
        commits_per_second: commits as f64 / wall.as_secs_f64().max(f64::EPSILON),
        segments,
    }
}

/// Runs one WAL-backed churn schedule and probes its durable footprint.
fn run_wal_mode(mode: &str, options: WalOptions, config: &ChurnConfig) -> ChurnDurableRow {
    let dir = scratch_dir(&format!("overhead-{mode}"));
    let store = CentralStore::durable_with(bioinformatics_schema(), &dir, options)
        .expect("fresh scratch dir");
    let wal_start = Instant::now();
    let result = run_churn_scenario(store, config);
    let wall = wal_start.elapsed();
    let probe = CentralStore::recover(&dir).expect("footprint probe");
    let backend = probe.catalog().durability().file_backend().expect("durable");
    let (wal_records, wal_bytes) = (backend.wal_records(), backend.wal_bytes());
    let segments = backend.segment_count();
    drop(probe);
    std::fs::remove_dir_all(&dir).ok();
    row(mode, options.codec.label(), segments, &result, wall, wal_records, wal_bytes)
}

/// Runs the durable-churn benchmark over an explicit configuration.
pub fn run_churn_durable_bench_with(config: &ChurnConfig) -> ChurnDurableReport {
    // Warmup: one discarded ephemeral run, so neither measured run pays the
    // process's cold caches.
    let _ = run_churn_scenario(CentralStore::new(bioinformatics_schema()), config);

    let eph_start = Instant::now();
    let ephemeral = run_churn_scenario(CentralStore::new(bioinformatics_schema()), config);
    let eph_wall = eph_start.elapsed();
    let eph_row = row("ephemeral", "-", 0, &ephemeral, eph_wall, 0, 0);

    // WAL-backed runs across the codec × layout matrix. The binary
    // per-shard run is the default mode the overhead headline uses.
    let wal_rows = vec![
        run_wal_mode("wal", WalOptions { codec: Codec::Binary, per_shard: true }, config),
        run_wal_mode("wal_single", WalOptions { codec: Codec::Binary, per_shard: false }, config),
        run_wal_mode("wal_json", WalOptions { codec: Codec::Json, per_shard: true }, config),
    ];

    // Recovery latency against growing histories, per codec: thirds of the
    // schedule.
    let lengths: Vec<usize> = [config.rounds / 3, 2 * config.rounds / 3, config.rounds]
        .into_iter()
        .filter(|&r| r > 0)
        .collect();
    let mut recovery = Vec::new();
    for codec in [Codec::Binary, Codec::Json] {
        for &rounds in &lengths {
            recovery.push(measure_recovery(config, rounds, codec));
        }
    }

    // The 8-thread parallel commit stress, both layouts. Scale the per-
    // thread commit count with the schedule so reduced test configurations
    // stay fast.
    let commits_per_thread = config.rounds.clamp(10, 60);
    let commit_stress = vec![
        run_commit_stress(true, commits_per_thread),
        run_commit_stress(false, commits_per_thread),
    ];

    // The crash-restart scenario end to end, at the benchmark scale.
    let crash_dir = scratch_dir("crash");
    let crash =
        run_crash_restart_scenario(&crash_dir, &CrashChurnConfig::for_churn(config.clone()));
    std::fs::remove_dir_all(&crash_dir).ok();

    let longest = |codec: &str| -> Option<&RecoveryRow> {
        recovery.iter().filter(|r| r.codec == codec).max_by_key(|r| r.rounds)
    };
    let (replay_speedup, codec_decode_speedup, wal_shrink) =
        match (longest("binary"), longest("json")) {
            (Some(binary), Some(json)) => (
                json.replay_ms / binary.replay_ms.max(f64::EPSILON),
                json.decode_ms / binary.decode_ms.max(f64::EPSILON),
                json.wal_bytes as f64 / (binary.wal_bytes as f64).max(f64::EPSILON),
            ),
            _ => (1.0, 1.0, 1.0),
        };
    let commit_scaling =
        commit_stress[0].commits_per_second / commit_stress[1].commits_per_second.max(f64::EPSILON);
    let wal_row = &wal_rows[0];
    let summary = ChurnDurableSummary {
        wal_wall_overhead: wal_row.wall_seconds / eph_row.wall_seconds.max(f64::EPSILON),
        replay_speedup,
        codec_decode_speedup,
        wal_shrink,
        commit_scaling,
        snapshot_recovery_ratio: longest("binary")
            .map(|r| r.replay_ms / r.snapshot_ms.max(f64::EPSILON))
            .unwrap_or(1.0),
        decisions_match: wal_rows.iter().all(|r| {
            eph_row.accepted == r.accepted
                && eph_row.rejected == r.rejected
                && eph_row.deferred == r.deferred
                && eph_row.state_ratio == r.state_ratio
        }) && recovery.iter().all(|r| r.recovered_identical),
        crash_restart_decisions_match: crash.decisions_match && crash.durable_state_identical,
        crash_recover_micros: crash.recover_micros,
    };
    let mut rows = vec![eph_row];
    rows.extend(wal_rows);
    ChurnDurableReport { rows, recovery, commit_stress, summary }
}

/// Runs the durable-churn benchmark at the given scale.
pub fn run_churn_durable_bench(scale: FigureScale) -> ChurnDurableReport {
    run_churn_durable_bench_with(&churn_durable_config(scale))
}

/// Writes the benchmark document as pretty-printed JSON: `{"benchmark":
/// "churn_durable", "meta": {...}, "rows": [...], "recovery": [...],
/// "commit_stress": [...], "summary": {...}}`.
pub fn write_churn_durable_json(path: &Path, report: &ChurnDurableReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn_durable".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "recovery".to_string(),
        serde_json::Value::Array(
            report
                .recovery
                .iter()
                .map(|r| serde_json::to_value(r).expect("recovery rows serialise"))
                .collect(),
        ),
    );
    doc.insert(
        "commit_stress".to_string(),
        serde_json::Value::Array(
            report
                .commit_stress
                .iter()
                .map(|r| serde_json::to_value(r).expect("stress rows serialise"))
                .collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_workload::WorkloadConfig;

    #[test]
    fn mini_durable_bench_matches_decisions_and_recovers() {
        // A reduced history so the test stays fast in debug builds; the
        // committed BENCH_churn_durable.json records the full quick run.
        let config = ChurnConfig {
            participants: 5,
            rounds: 18,
            transactions_per_publish: 1,
            max_reconcile_interval: 4,
            resolve_every: 4,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 60,
                function_pool: 20,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.9,
                xref_mean: 7.3,
            },
            seed: 20060627,
        };
        let report = run_churn_durable_bench_with(&config);
        assert_eq!(report.rows.len(), 4, "ephemeral + three WAL modes");
        assert!(report.summary.decisions_match, "modes diverged: {report:?}");
        assert!(report.summary.crash_restart_decisions_match, "crash diverged: {report:?}");
        for wal_row in &report.rows[1..] {
            assert!(wal_row.wal_records > 0);
            assert!(wal_row.wal_bytes > 0);
        }
        // The binary WAL is smaller than the JSON one for the same schedule.
        let by_mode =
            |mode: &str| report.rows.iter().find(|r| r.mode == mode).expect("mode row present");
        assert!(by_mode("wal").wal_bytes < by_mode("wal_json").wal_bytes);
        assert_eq!(by_mode("wal").wal_records, by_mode("wal_json").wal_records);
        // Both layouts log the same records; only the file layout differs.
        assert_eq!(by_mode("wal").wal_records, by_mode("wal_single").wal_records);
        assert!(by_mode("wal").segments > by_mode("wal_single").segments);

        assert_eq!(report.recovery.len(), 6, "three lengths x two codecs");
        assert!(report.recovery.iter().all(|r| r.recovered_identical));
        assert!(report.recovery.iter().all(|r| r.replay_ms > 0.0 && r.snapshot_ms > 0.0));
        assert!(report.recovery.iter().all(|r| r.decode_ms > 0.0 && r.decode_ms < r.replay_ms));
        assert!(report.summary.replay_speedup > 1.0, "binary replay not faster: {report:?}");
        assert!(
            report.summary.codec_decode_speedup > report.summary.replay_speedup,
            "decode-only ratio should beat the apply-diluted one: {report:?}"
        );
        assert!(report.summary.wal_shrink > 1.0, "binary WAL not smaller: {report:?}");

        assert_eq!(report.commit_stress.len(), 2);
        let stress_commits = (STRESS_THREADS * 18) as u64;
        for stress in &report.commit_stress {
            assert_eq!(stress.commits, stress_commits);
            assert!(stress.commits_per_second > 0.0);
        }
        assert!(report.commit_stress[0].segments > report.commit_stress[1].segments);
        assert!(report.summary.commit_scaling > 0.0);
    }
}
