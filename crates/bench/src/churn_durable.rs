//! The durable-churn benchmark: what durability costs on the hot path and
//! what it buys at recovery time.
//!
//! This is the `BENCH_churn_durable.json` entry of the repository's
//! benchmark trajectory. The same churn schedule runs twice — over the
//! ephemeral in-memory store and over a WAL-backed one — so the per-call
//! store-time overhead of logging every publish and decision commit is
//! measured directly (decisions must be identical; durability is invisible
//! to the algorithm). Recovery cost is then measured against log length:
//! histories of increasing size are recovered once by replaying the full WAL
//! and once from a compacting snapshot plus an (empty) WAL tail, pinning
//! down the latency the snapshot saves. Finally the crash-restart scenario
//! ([`orchestra_workload::run_crash_restart_scenario`]) runs end to end,
//! asserting that a mid-wave crash recovers to byte-identical durable state
//! and finishes the schedule with decisions identical to an uninterrupted
//! run.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_store::CentralStore;
use orchestra_workload::{
    run_churn_scenario, run_crash_restart_scenario, ChurnConfig, ChurnResult, CrashChurnConfig,
};
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::churn::churn_config;
use crate::figures::FigureScale;

/// One row of the durable-churn benchmark: a store mode's aggregate cost
/// over the full schedule.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDurableRow {
    /// `"ephemeral"` or `"wal"`.
    pub mode: String,
    /// Reconciliations performed.
    pub reconciliations: usize,
    /// Epochs published over the run.
    pub epochs: u64,
    /// Total store-side seconds across all reconciliations. NOTE: on small
    /// hosts this sampled figure is dominated by allocator-locality effects
    /// (the WAL run's encode churn measurably *speeds up* unrelated reads),
    /// so the headline overhead is the wall-clock ratio, not this.
    pub store_seconds: f64,
    /// Total local seconds across all reconciliations.
    pub local_seconds: f64,
    /// Wall-clock seconds of the whole schedule (the honest basis for the
    /// durability overhead: it includes the WAL work charged to publishes).
    pub wall_seconds: f64,
    /// Accepted / rejected / deferred root totals (must match across modes).
    pub accepted: usize,
    /// Total rejected roots.
    pub rejected: usize,
    /// Total deferred roots.
    pub deferred: usize,
    /// Final state ratio over `Function` (must match across modes).
    pub state_ratio: f64,
    /// WAL records appended by the run (0 for the ephemeral store).
    pub wal_records: u64,
    /// WAL bytes appended by the run (0 for the ephemeral store).
    pub wal_bytes: u64,
}

/// One recovery measurement: the same history recovered by full WAL replay
/// and from a compacting snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRow {
    /// Publish rounds of the history (the log-length axis).
    pub rounds: usize,
    /// Epochs in the history.
    pub epochs: u64,
    /// WAL records replayed on the replay-only path.
    pub wal_records: u64,
    /// WAL bytes replayed on the replay-only path.
    pub wal_bytes: u64,
    /// Milliseconds to recover by replaying the full WAL.
    pub replay_ms: f64,
    /// Milliseconds to recover from the snapshot (plus the empty WAL tail).
    pub snapshot_ms: f64,
    /// Snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Whether both recovery paths produced durable state byte-identical to
    /// the live store (they must).
    pub recovered_identical: bool,
}

/// Headline comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDurableSummary {
    /// WAL-run wall clock divided by ephemeral wall clock — the end-to-end
    /// price of durability (expected a little above 1).
    pub wal_wall_overhead: f64,
    /// Full-WAL-replay recovery time divided by snapshot recovery time on
    /// the longest history. Informative rather than gated: with this
    /// workload's state growing as fast as its history (the log retains
    /// every transaction), snapshot load parses as many bytes as a full
    /// replay, so the ratio hovers near 1 — what compaction robustly buys
    /// here is the bounded on-disk footprint, not restart latency.
    pub snapshot_recovery_ratio: f64,
    /// Whether the ephemeral and WAL-backed runs reached identical
    /// accept/reject/defer totals and state ratio (they must).
    pub decisions_match: bool,
    /// Whether the crash-restart scenario recovered byte-identical durable
    /// state *and* finished with decisions identical to the uninterrupted
    /// baseline (it must).
    pub crash_restart_decisions_match: bool,
    /// Wall-clock microseconds of the crash-restart scenario's recovery
    /// (snapshot load + WAL replay at the crash point).
    pub crash_recover_micros: u64,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDurableReport {
    /// Per-mode rows.
    pub rows: Vec<ChurnDurableRow>,
    /// Recovery latency vs. log length.
    pub recovery: Vec<RecoveryRow>,
    /// Headline comparison.
    pub summary: ChurnDurableSummary,
}

/// The churn configuration used at each scale (the same schedule as
/// `BENCH_churn.json`, so the trajectory stays comparable).
pub fn churn_durable_config(scale: FigureScale) -> ChurnConfig {
    churn_config(scale)
}

fn row(
    mode: &str,
    result: &ChurnResult,
    wall: Duration,
    wal_records: u64,
    wal_bytes: u64,
) -> ChurnDurableRow {
    ChurnDurableRow {
        mode: mode.to_string(),
        reconciliations: result.reconciliations,
        epochs: result.epochs,
        store_seconds: result.store_time.as_secs_f64(),
        local_seconds: result.local_time.as_secs_f64(),
        wall_seconds: wall.as_secs_f64(),
        accepted: result.accepted,
        rejected: result.rejected,
        deferred: result.deferred,
        state_ratio: result.state_ratio,
        wal_records,
        wal_bytes,
    }
}

/// A scratch directory under the system temp dir, wiped before use.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("orchestra-churn-durable-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Measures recovery latency for one history length: replay-only, then
/// snapshot-based.
fn measure_recovery(config: &ChurnConfig, rounds: usize) -> RecoveryRow {
    let mut config = config.clone();
    config.rounds = rounds;
    let dir = scratch_dir(&format!("recover-{rounds}"));
    let store = CentralStore::durable(bioinformatics_schema(), &dir).expect("fresh scratch dir");
    let result = run_churn_scenario(store, &config);

    // Replay-only: the WAL still holds the entire history.
    let replay_start = Instant::now();
    let replayed = CentralStore::recover(&dir).expect("replay recovery");
    let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;
    let live = format!("{:?}", replayed.catalog());
    let backend = replayed.catalog().durability().file_backend().expect("durable");
    let (wal_records, wal_bytes) = (backend.wal_records(), backend.wal_bytes());

    // Snapshot-based: compact, then recover again from the snapshot plus an
    // empty WAL tail.
    replayed.snapshot().expect("snapshot succeeds");
    let snapshot_bytes = std::fs::metadata(orchestra_storage::snapshot::snapshot_path(&dir))
        .map(|m| m.len())
        .unwrap_or(0);
    drop(replayed);
    let snap_start = Instant::now();
    let snapped = CentralStore::recover(&dir).expect("snapshot recovery");
    let snapshot_ms = snap_start.elapsed().as_secs_f64() * 1e3;
    let recovered_identical = format!("{:?}", snapped.catalog()) == live;
    drop(snapped);
    std::fs::remove_dir_all(&dir).ok();
    RecoveryRow {
        rounds,
        epochs: result.epochs,
        wal_records,
        wal_bytes,
        replay_ms,
        snapshot_ms,
        snapshot_bytes,
        recovered_identical,
    }
}

/// Runs the durable-churn benchmark over an explicit configuration.
pub fn run_churn_durable_bench_with(config: &ChurnConfig) -> ChurnDurableReport {
    // Warmup: one discarded ephemeral run, so neither measured run pays the
    // process's cold caches.
    let _ = run_churn_scenario(CentralStore::new(bioinformatics_schema()), config);

    let eph_start = Instant::now();
    let ephemeral = run_churn_scenario(CentralStore::new(bioinformatics_schema()), config);
    let eph_wall = eph_start.elapsed();

    let dir = scratch_dir("overhead");
    let store = CentralStore::durable(bioinformatics_schema(), &dir).expect("fresh scratch dir");
    let wal_start = Instant::now();
    let durable = run_churn_scenario(store, config);
    let wal_wall = wal_start.elapsed();
    let probe = CentralStore::recover(&dir).expect("footprint probe");
    let backend = probe.catalog().durability().file_backend().expect("durable");
    let (wal_records, wal_bytes) = (backend.wal_records(), backend.wal_bytes());
    drop(probe);
    std::fs::remove_dir_all(&dir).ok();

    // Recovery latency against growing histories: thirds of the schedule.
    let recovery: Vec<RecoveryRow> = [config.rounds / 3, 2 * config.rounds / 3, config.rounds]
        .into_iter()
        .filter(|&r| r > 0)
        .map(|rounds| measure_recovery(config, rounds))
        .collect();

    // The crash-restart scenario end to end, at the benchmark scale.
    let crash_dir = scratch_dir("crash");
    let crash =
        run_crash_restart_scenario(&crash_dir, &CrashChurnConfig::for_churn(config.clone()));
    std::fs::remove_dir_all(&crash_dir).ok();

    let eph_row = row("ephemeral", &ephemeral, eph_wall, 0, 0);
    let wal_row = row("wal", &durable, wal_wall, wal_records, wal_bytes);
    let longest = recovery.last();
    let summary = ChurnDurableSummary {
        wal_wall_overhead: wal_row.wall_seconds / eph_row.wall_seconds.max(f64::EPSILON),
        snapshot_recovery_ratio: longest
            .map(|r| r.replay_ms / r.snapshot_ms.max(f64::EPSILON))
            .unwrap_or(1.0),
        decisions_match: eph_row.accepted == wal_row.accepted
            && eph_row.rejected == wal_row.rejected
            && eph_row.deferred == wal_row.deferred
            && eph_row.state_ratio == wal_row.state_ratio
            && recovery.iter().all(|r| r.recovered_identical),
        crash_restart_decisions_match: crash.decisions_match && crash.durable_state_identical,
        crash_recover_micros: crash.recover_micros,
    };
    ChurnDurableReport { rows: vec![eph_row, wal_row], recovery, summary }
}

/// Runs the durable-churn benchmark at the given scale.
pub fn run_churn_durable_bench(scale: FigureScale) -> ChurnDurableReport {
    run_churn_durable_bench_with(&churn_durable_config(scale))
}

/// Writes the benchmark document as pretty-printed JSON: `{"benchmark":
/// "churn_durable", "meta": {...}, "rows": [...], "recovery": [...],
/// "summary": {...}}`.
pub fn write_churn_durable_json(path: &Path, report: &ChurnDurableReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn_durable".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "recovery".to_string(),
        serde_json::Value::Array(
            report
                .recovery
                .iter()
                .map(|r| serde_json::to_value(r).expect("recovery rows serialise"))
                .collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_workload::WorkloadConfig;

    #[test]
    fn mini_durable_bench_matches_decisions_and_recovers() {
        // A reduced history so the test stays fast in debug builds; the
        // committed BENCH_churn_durable.json records the full quick run.
        let config = ChurnConfig {
            participants: 5,
            rounds: 18,
            transactions_per_publish: 1,
            max_reconcile_interval: 4,
            resolve_every: 4,
            workload: WorkloadConfig {
                transaction_size: 1,
                key_universe: 60,
                function_pool: 20,
                value_zipf_exponent: 1.5,
                key_zipf_exponent: 0.9,
                xref_mean: 7.3,
            },
            seed: 20060627,
        };
        let report = run_churn_durable_bench_with(&config);
        assert_eq!(report.rows.len(), 2);
        assert!(report.summary.decisions_match, "modes diverged: {report:?}");
        assert!(report.summary.crash_restart_decisions_match, "crash diverged: {report:?}");
        assert!(report.rows[1].wal_records > 0);
        assert!(report.rows[1].wal_bytes > 0);
        assert_eq!(report.recovery.len(), 3);
        assert!(report.recovery.iter().all(|r| r.recovered_identical));
        assert!(report.recovery.iter().all(|r| r.replay_ms > 0.0 && r.snapshot_ms > 0.0));
    }
}
