//! Rendering figure series as aligned text tables, CSV files and JSON
//! documents (the `fig*.json` files are the seed of the benchmark
//! trajectory format).

use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Host metadata stamped into every benchmark-trajectory document, so
/// entries recorded on different machines (a laptop, the CI runner) can be
/// told apart when the trajectory is compared over time. `BENCH_churn.json`
/// originally omitted the hardware parallelism that
/// `BENCH_churn_parallel.json` recorded ad hoc; this helper is the single
/// source for all of it.
#[derive(Debug, Clone, Serialize)]
pub struct BenchMeta {
    /// Hardware threads available to the run.
    pub available_parallelism: usize,
    /// Short git revision of the working tree (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// Cargo profile the binary was built with (`debug`/`release`).
    pub cargo_profile: String,
}

/// Collects the host metadata for the current process.
pub fn bench_meta() -> BenchMeta {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    BenchMeta {
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        git_rev,
        cargo_profile: if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
    }
}

/// Serialises the host metadata as a JSON value ready to be inserted under a
/// document's `"meta"` key.
pub fn meta_value() -> serde_json::Value {
    serde_json::to_value(bench_meta()).expect("metadata serialises")
}

/// Renders a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut header_line = String::new();
    for (i, h) in header.iter().enumerate() {
        header_line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push_str(header_line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Writes a slice of serialisable rows as a CSV file (header derived from the
/// JSON field names of the first row).
pub fn write_csv<T: Serialize>(path: &Path, rows: &[T]) -> io::Result<()> {
    let mut csv = String::new();
    let values: Vec<serde_json::Value> =
        rows.iter().map(|r| serde_json::to_value(r).expect("figure rows serialise")).collect();
    if let Some(serde_json::Value::Object(first)) = values.first() {
        let columns: Vec<String> = first.keys().cloned().collect();
        csv.push_str(&columns.join(","));
        csv.push('\n');
        for value in &values {
            if let serde_json::Value::Object(map) = value {
                let row: Vec<String> = columns
                    .iter()
                    .map(|c| match map.get(c) {
                        Some(serde_json::Value::String(s)) => s.clone(),
                        Some(other) => other.to_string(),
                        None => String::new(),
                    })
                    .collect();
                csv.push_str(&row.join(","));
                csv.push('\n');
            }
        }
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, csv)
}

/// Writes a slice of serialisable rows as a pretty-printed JSON document:
/// `{"figure": <label>, "rows": [...]}`.
pub fn write_json<T: Serialize>(path: &Path, figure: &str, rows: &[T]) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("figure".to_string(), serde_json::Value::String(figure.to_string()));
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            rows.iter().map(|r| serde_json::to_value(r).expect("figure rows serialise")).collect(),
        ),
    );
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut text = serde_json::to_string_pretty(&serde_json::Value::Object(doc))
        .expect("figure document serialises");
    text.push('\n');
    fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        x: usize,
        label: String,
        y: f64,
    }

    #[test]
    fn tables_are_aligned_and_complete() {
        let table = render_table(
            "Figure X",
            &["size", "ratio"],
            &[vec!["1".into(), "1.25".into()], vec!["10".into(), "2.5".into()]],
        );
        assert!(table.contains("Figure X"));
        assert!(table.contains("size"));
        assert!(table.contains("2.5"));
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn csv_round_trips_field_names_and_values() {
        let dir = std::env::temp_dir().join("orchestra-bench-test");
        let path = dir.join("rows.csv");
        let rows = vec![
            Row { x: 1, label: "central".into(), y: 0.5 },
            Row { x: 2, label: "distributed".into(), y: 1.5 },
        ];
        write_csv(&path, &rows).unwrap();
        let contents = fs::read_to_string(&path).unwrap();
        assert!(contents.lines().next().unwrap().contains("x"));
        assert!(contents.contains("distributed"));
        assert_eq!(contents.lines().count(), 3);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn json_documents_carry_label_and_rows() {
        let dir = std::env::temp_dir().join("orchestra-bench-test");
        let path = dir.join("rows.json");
        let rows = vec![
            Row { x: 1, label: "central".into(), y: 0.5 },
            Row { x: 2, label: "distributed".into(), y: 1.5 },
        ];
        write_json(&path, "fig99", &rows).unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        let obj = doc.as_object().unwrap();
        assert_eq!(obj.get("figure").unwrap().as_str(), Some("fig99"));
        let parsed_rows = obj.get("rows").unwrap().as_array().unwrap();
        assert_eq!(parsed_rows.len(), 2);
        let first = parsed_rows[0].as_object().unwrap();
        assert_eq!(first.get("x").unwrap().as_u64(), Some(1));
        assert_eq!(first.get("label").unwrap().as_str(), Some("central"));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_meta_is_complete() {
        let meta = bench_meta();
        assert!(meta.available_parallelism >= 1);
        assert!(!meta.git_rev.is_empty());
        assert!(meta.cargo_profile == "debug" || meta.cargo_profile == "release");
        let value = meta_value();
        let obj = value.as_object().unwrap();
        assert!(obj.get("available_parallelism").unwrap().as_u64().unwrap() >= 1);
        assert!(obj.contains_key("git_rev"));
        assert!(obj.contains_key("cargo_profile"));
    }

    #[test]
    fn empty_rows_produce_empty_csv() {
        let dir = std::env::temp_dir().join("orchestra-bench-test");
        let path = dir.join("empty.csv");
        let rows: Vec<Row> = vec![];
        write_csv(&path, &rows).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "");
        fs::remove_file(&path).ok();
    }
}
