//! The confederation-scale service benchmark: the store-service and
//! sharded-fabric drivers versus the thread-per-participant and sequential
//! drivers on the same churn schedule at ≥ 4000 participants.
//!
//! This is the `BENCH_churn_scale.json` entry of the repository's benchmark
//! trajectory. All four drivers run the *same* Zipf-skewed publish/
//! reconcile schedule ([`orchestra_workload::run_churn_scale`]) and must
//! reach bit-identical decision fingerprints:
//!
//! * **sequential** runs against a plain in-memory store with no simulated
//!   latency — decisions are latency-independent, so this is the cheap
//!   decision baseline;
//! * **threads** runs against a store that sleeps the full frame round trip
//!   (`2 × frame_latency + store_latency`) on every call — the
//!   pre-service deployment model, one OS thread per due participant
//!   overlapping those real sleeps;
//! * **service** runs through the framed store service on the
//!   single-threaded runtime, where the same latencies are charged to the
//!   *virtual* clock: real wall-clock pays only the compute, and the
//!   virtual session latencies (begin to commit, including queueing and
//!   admission-control backoff) come out of the run as a distribution;
//! * **fabric** runs through a confederation of shard services
//!   ([`orchestra_workload::run_churn_scale_fabric`]): the publication log
//!   is replicated across [`ScaleConfig::fabric_shards`] store services,
//!   relevance is partitioned by home shard, publishes fan out to every
//!   replica, and each session pages candidates from every shard into one
//!   virtual timeline.
//!
//! The headline comparison is reconcile throughput (sessions per wall
//! second) service versus threads, plus the service's and the fabric's
//! request rates and virtual session-latency percentiles; the fabric's p99
//! (`fabric_p99_ms`) is gated lower-is-better by the trajectory check.

use orchestra_model::schema::bioinformatics_schema;
use orchestra_obs::{HistogramSnapshot, MetricsSnapshot, Obs};
use orchestra_store::CentralStore;
use orchestra_workload::{
    run_churn_scale, run_churn_scale_fabric, run_churn_scale_fabric_observed, ScaleConfig,
    ScaleDriver, ScaleRunResult,
};
use serde::Serialize;
use std::io;
use std::path::Path;
use std::time::Duration;

use crate::figures::FigureScale;

/// One row of the churn-scale benchmark: a driver's aggregate cost.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnScaleRow {
    /// `"sequential"`, `"threads"`, `"service"` or `"fabric"`.
    pub driver: String,
    /// Reconciliation sessions completed.
    pub sessions: u64,
    /// Publishes that assigned an epoch.
    pub publishes: u64,
    /// Transactions published.
    pub transactions: u64,
    /// Updates published.
    pub updates: u64,
    /// Wall-clock seconds of the reconciliation waves alone.
    pub reconcile_wall_seconds: f64,
    /// Wall-clock seconds of the whole run.
    pub total_wall_seconds: f64,
    /// Service request frames served (service row only, else 0).
    pub requests: u64,
    /// `Begin` frames shed by admission control (service row only).
    pub busy_rejections: u64,
    /// Worker wake-ups (service row only); `requests / batches` is the
    /// achieved batching factor.
    pub batches: u64,
    /// Simulated-network messages (service row only).
    pub net_messages: u64,
    /// Simulated-network bytes (service row only).
    pub net_bytes: u64,
    /// Virtual milliseconds consumed by the service rounds (service row
    /// only).
    pub virtual_elapsed_ms: f64,
    /// Frames delivered to each shard's server endpoint (fabric row only);
    /// the spread is the shard-load skew.
    pub shard_frames: Vec<u64>,
    /// `Begin` frames shed by each shard's admission control (fabric row
    /// only), counted directly by the shard services rather than inferred
    /// from frame deltas.
    pub shard_busy: Vec<u64>,
    /// Order-invariant decision fingerprint, hex (must match across rows).
    pub decision_fingerprint: String,
    /// Final state ratio over `Function` (must match across rows).
    pub state_ratio: f64,
}

/// Headline comparison of the drivers.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnScaleSummary {
    /// Confederation size.
    pub participants: usize,
    /// Publish/reconcile rounds.
    pub rounds: usize,
    /// Updates published per driver run.
    pub published_updates: u64,
    /// Reconciliation sessions per driver run.
    pub sessions_per_driver: u64,
    /// Service request frames served per real wall-clock second of the
    /// whole service run.
    pub requests_per_second: f64,
    /// Median virtual session latency (begin to commit, including queueing
    /// and admission backoff), milliseconds.
    pub session_p50_ms: f64,
    /// 99th-percentile virtual session latency, milliseconds. Gated
    /// lower-is-better by the trajectory check.
    pub session_p99_ms: f64,
    /// Service reconcile throughput: sessions per wall second of the
    /// reconciliation waves.
    pub service_sessions_per_second: f64,
    /// Thread-per-participant reconcile throughput, same schedule.
    pub threads_sessions_per_second: f64,
    /// Service reconcile throughput divided by the threaded driver's (the
    /// acceptance bar is ≥ 1 at full scale).
    pub service_vs_threads_reconcile_ratio: f64,
    /// Frames served per worker wake-up.
    pub batching_factor: f64,
    /// `Begin` frames shed by admission control across the service run.
    pub busy_rejections: u64,
    /// Shards in the store fabric.
    pub fabric_shards: usize,
    /// Request frames served across all shard services per real wall-clock
    /// second of the whole fabric run.
    pub fabric_requests_per_second: f64,
    /// Median virtual session latency of the fabric driver (begin to
    /// commit across every shard), milliseconds.
    pub fabric_p50_ms: f64,
    /// 99th-percentile virtual session latency of the fabric driver,
    /// milliseconds. Gated lower-is-better by the trajectory check.
    pub fabric_p99_ms: f64,
    /// Fabric reconcile throughput: sessions per wall second of the
    /// reconciliation waves.
    pub fabric_sessions_per_second: f64,
    /// Frames delivered to each shard's server endpoint across the fabric
    /// run; the spread is the shard-load skew.
    pub fabric_shard_frames: Vec<u64>,
    /// `Begin` frames shed by each shard's admission control across the
    /// fabric run. The fabric client opens its per-shard sessions in shard
    /// order, so shard 0 acts as the admission gate and absorbs nearly all
    /// of the sheds.
    pub fabric_shard_busy: Vec<u64>,
    /// Whether all four drivers reached identical decision fingerprints,
    /// session counts and state ratio (they must).
    pub decisions_match: bool,
    /// One-way frame latency charged per message, microseconds.
    pub frame_latency_us: u64,
    /// Store access latency charged per worker batch, microseconds.
    pub store_latency_us: u64,
    /// Hardware threads available to the run (context: on a single-core
    /// host the threaded driver overlaps only its sleeps, not its compute).
    pub available_parallelism: usize,
}

/// The whole benchmark document.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnScaleReport {
    /// Per-driver rows.
    pub rows: Vec<ChurnScaleRow>,
    /// Headline comparison.
    pub summary: ChurnScaleSummary,
    /// Metrics-registry snapshot of the service run (requests, sheds,
    /// batches, network traffic, participant timing, batch-size histogram).
    /// Serialised under the document's top-level `"metrics"` key — outside
    /// `"summary"` so the numeric trajectory gates (Rules 2/3) do not bind
    /// raw counters, while Rule 4 gates key presence.
    #[serde(skip)]
    pub service_metrics: MetricsSnapshot,
    /// Metrics-registry snapshot of the fabric run; per-shard keys are
    /// labelled `service.requests{shard=N}` and friends.
    #[serde(skip)]
    pub fabric_metrics: MetricsSnapshot,
}

/// The churn-scale configuration used at each scale: [`ScaleConfig::quick`]
/// for CI, [`ScaleConfig::full`] (4096 participants across 4 shards,
/// ≈ 213k updates) for the committed trajectory document.
pub fn churn_scale_config(scale: FigureScale) -> ScaleConfig {
    match scale {
        FigureScale::Quick => ScaleConfig::quick(),
        FigureScale::Full => ScaleConfig::full(),
    }
}

fn row(driver: &str, result: &ScaleRunResult) -> ChurnScaleRow {
    ChurnScaleRow {
        driver: driver.to_string(),
        sessions: result.sessions,
        publishes: result.publishes,
        transactions: result.transactions,
        updates: result.updates,
        reconcile_wall_seconds: result.reconcile_wall.as_secs_f64(),
        total_wall_seconds: result.total_wall.as_secs_f64(),
        requests: result.requests,
        busy_rejections: result.busy_rejections,
        batches: result.batches,
        net_messages: result.net_messages,
        net_bytes: result.net_bytes,
        virtual_elapsed_ms: result.virtual_elapsed_us as f64 / 1_000.0,
        shard_frames: result.shard_frames.clone(),
        shard_busy: result.shard_busy.clone(),
        decision_fingerprint: format!("{:016x}", result.decision_fingerprint),
        state_ratio: result.state_ratio,
    }
}

/// Virtual-latency percentile (nearest-rank on the sorted sample), in
/// milliseconds.
fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1_000.0
}

/// Runs the benchmark over an explicit configuration (used by tests and by
/// callers that want custom scales).
pub fn run_churn_scale_bench_with(config: &ScaleConfig) -> ChurnScaleReport {
    // The per-call sleep the threaded driver pays is the latency the
    // service charges virtually per request: the frame round trip plus the
    // store access (amortised to one call here — a *favourable* model for
    // the threaded driver, which the service must beat anyway).
    let per_call = Duration::from_micros(2 * config.frame_latency_us + config.store_latency_us);

    let sequential = run_churn_scale(
        CentralStore::new(bioinformatics_schema()),
        config,
        ScaleDriver::Sequential,
    );
    let threads = run_churn_scale(
        CentralStore::with_simulated_latency(bioinformatics_schema(), per_call),
        config,
        ScaleDriver::Threads,
    );
    let service =
        run_churn_scale(CentralStore::new(bioinformatics_schema()), config, ScaleDriver::Service);
    let fabric = run_churn_scale_fabric(config);

    let mut latencies = service.latencies_us.clone();
    latencies.sort_unstable();
    let mut fabric_latencies = fabric.latencies_us.clone();
    fabric_latencies.sort_unstable();

    let seq_row = row("sequential", &sequential);
    let thr_row = row("threads", &threads);
    let svc_row = row("service", &service);
    let fab_row = row("fabric", &fabric);
    let summary = ChurnScaleSummary {
        participants: config.participants,
        rounds: config.rounds,
        published_updates: svc_row.updates,
        sessions_per_driver: svc_row.sessions,
        requests_per_second: svc_row.requests as f64 / svc_row.total_wall_seconds.max(f64::EPSILON),
        session_p50_ms: percentile_ms(&latencies, 0.50),
        session_p99_ms: percentile_ms(&latencies, 0.99),
        service_sessions_per_second: svc_row.sessions as f64
            / svc_row.reconcile_wall_seconds.max(f64::EPSILON),
        threads_sessions_per_second: thr_row.sessions as f64
            / thr_row.reconcile_wall_seconds.max(f64::EPSILON),
        service_vs_threads_reconcile_ratio: thr_row.reconcile_wall_seconds
            / svc_row.reconcile_wall_seconds.max(f64::EPSILON),
        batching_factor: svc_row.requests as f64 / (svc_row.batches as f64).max(1.0),
        busy_rejections: svc_row.busy_rejections,
        fabric_shards: config.fabric_shards,
        fabric_requests_per_second: fab_row.requests as f64
            / fab_row.total_wall_seconds.max(f64::EPSILON),
        fabric_p50_ms: percentile_ms(&fabric_latencies, 0.50),
        fabric_p99_ms: percentile_ms(&fabric_latencies, 0.99),
        fabric_sessions_per_second: fab_row.sessions as f64
            / fab_row.reconcile_wall_seconds.max(f64::EPSILON),
        fabric_shard_frames: fab_row.shard_frames.clone(),
        fabric_shard_busy: fab_row.shard_busy.clone(),
        decisions_match: seq_row.decision_fingerprint == thr_row.decision_fingerprint
            && seq_row.decision_fingerprint == svc_row.decision_fingerprint
            && seq_row.decision_fingerprint == fab_row.decision_fingerprint
            && seq_row.sessions == thr_row.sessions
            && seq_row.sessions == svc_row.sessions
            && seq_row.sessions == fab_row.sessions
            && seq_row.state_ratio == thr_row.state_ratio
            && seq_row.state_ratio == svc_row.state_ratio
            && seq_row.state_ratio == fab_row.state_ratio,
        frame_latency_us: config.frame_latency_us,
        store_latency_us: config.store_latency_us,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    ChurnScaleReport {
        rows: vec![seq_row, thr_row, svc_row, fab_row],
        summary,
        service_metrics: service.metrics,
        fabric_metrics: fabric.metrics,
    }
}

/// Reruns the fabric driver with tracing enabled and returns the captured
/// trace in the v1 text format (ready for `trace_dump`). The tracer is bound
/// to the round's virtual clock inside the driver, so the capture is
/// deterministic; enabling it does not change any decision (the bench's
/// fingerprint tests assert as much).
pub fn capture_fabric_trace(config: &ScaleConfig) -> String {
    let obs = Obs::enabled();
    let _ = run_churn_scale_fabric_observed(config, &obs);
    obs.tracer.export()
}

fn number(value: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::from_u64(value))
}

/// One histogram of the metrics snapshot as a JSON object: count, sum and
/// the derived p50/p99/mean (the 65 raw power-of-two buckets stay out of the
/// document; the quantiles are what the trajectory reads).
fn histogram_value(histogram: &HistogramSnapshot) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    map.insert("count".to_string(), number(histogram.count));
    map.insert("sum".to_string(), number(histogram.sum));
    map.insert("p50".to_string(), number(histogram.p50()));
    map.insert("p99".to_string(), number(histogram.p99()));
    map.insert("mean".to_string(), number(histogram.mean()));
    serde_json::Value::Object(map)
}

/// A [`MetricsSnapshot`] as a JSON object with `counters`, `gauges` and
/// `histograms` maps. `orchestra-obs` is dependency-free, so the conversion
/// lives here rather than as a `Serialize` impl.
pub fn metrics_snapshot_value(snapshot: &MetricsSnapshot) -> serde_json::Value {
    let mut counters = serde_json::Map::new();
    for (key, value) in &snapshot.counters {
        counters.insert(key.clone(), number(*value));
    }
    let mut gauges = serde_json::Map::new();
    for (key, value) in &snapshot.gauges {
        gauges.insert(key.clone(), serde_json::Value::Number(serde_json::Number::from_i64(*value)));
    }
    let mut histograms = serde_json::Map::new();
    for (key, histogram) in &snapshot.histograms {
        histograms.insert(key.clone(), histogram_value(histogram));
    }
    let mut map = serde_json::Map::new();
    map.insert("counters".to_string(), serde_json::Value::Object(counters));
    map.insert("gauges".to_string(), serde_json::Value::Object(gauges));
    map.insert("histograms".to_string(), serde_json::Value::Object(histograms));
    serde_json::Value::Object(map)
}

/// Runs the churn-scale benchmark at the given scale.
pub fn run_churn_scale_bench(scale: FigureScale) -> ChurnScaleReport {
    run_churn_scale_bench_with(&churn_scale_config(scale))
}

/// Writes the benchmark document as pretty-printed JSON:
/// `{"benchmark": "churn_scale", "meta": {...}, "rows": [...],
/// "summary": {...}, "metrics": {"service": {...}, "fabric": {...}}}`.
/// Once committed, the leaf keys under `"metrics"` are gated by the
/// trajectory check: a key that disappears from a fresh run fails the gate.
pub fn write_churn_scale_json(path: &Path, report: &ChurnScaleReport) -> io::Result<()> {
    let mut doc = serde_json::Map::new();
    doc.insert("benchmark".to_string(), serde_json::Value::String("churn_scale".to_string()));
    doc.insert("meta".to_string(), crate::output::meta_value());
    doc.insert(
        "rows".to_string(),
        serde_json::Value::Array(
            report.rows.iter().map(|r| serde_json::to_value(r).expect("rows serialise")).collect(),
        ),
    );
    doc.insert(
        "summary".to_string(),
        serde_json::to_value(&report.summary).expect("summary serialises"),
    );
    let mut metrics = serde_json::Map::new();
    metrics.insert("service".to_string(), metrics_snapshot_value(&report.service_metrics));
    metrics.insert("fabric".to_string(), metrics_snapshot_value(&report.fabric_metrics));
    doc.insert("metrics".to_string(), serde_json::Value::Object(metrics));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("document serialises");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_scale_bench_matches_decisions_and_reports_latencies() {
        // A reduced schedule so the test stays fast in debug builds; the
        // committed BENCH_churn_scale.json records the full-scale run
        // (1024 participants).
        let mut config = ScaleConfig::quick();
        config.participants = 16;
        config.rounds = 2;
        config.service_max_open_sessions = 16;
        let report = run_churn_scale_bench_with(&config);
        assert_eq!(report.rows.len(), 4);
        assert!(report.summary.decisions_match, "drivers diverged: {report:?}");
        assert!(report.summary.published_updates > 0);
        assert!(report.summary.sessions_per_driver > 0);
        assert!(report.summary.requests_per_second > 0.0);
        assert!(report.summary.session_p99_ms >= report.summary.session_p50_ms);
        assert!(report.summary.session_p50_ms > 0.0);
        assert!(report.summary.batching_factor >= 1.0);
        assert!(report.summary.fabric_requests_per_second > 0.0);
        assert!(report.summary.fabric_p99_ms >= report.summary.fabric_p50_ms);
        assert!(report.summary.fabric_p50_ms > 0.0);
        assert_eq!(report.summary.fabric_shard_frames.len(), config.fabric_shards);
        assert!(report.summary.fabric_shard_frames.iter().all(|&frames| frames > 0));
        // The per-shard shed counts are first-class now and reconcile with
        // the fabric row's aggregate.
        assert_eq!(report.summary.fabric_shard_busy.len(), config.fabric_shards);
        let fab_row = &report.rows[3];
        assert_eq!(fab_row.shard_busy.iter().sum::<u64>(), fab_row.busy_rejections);
        // Both run snapshots populated (counters are live even without
        // tracing) and the fabric's keys are shard-labelled.
        assert!(report.service_metrics.counters.contains_key("service.requests"));
        assert_eq!(report.service_metrics.counters["service.requests"], report.rows[2].requests);
        assert!(report.fabric_metrics.counters.contains_key(&orchestra_obs::key_with(
            "service.requests",
            "shard",
            0
        )));
    }

    #[test]
    fn json_document_carries_a_metrics_section() {
        let mut config = ScaleConfig::quick();
        config.participants = 8;
        config.rounds = 1;
        config.service_max_open_sessions = 8;
        let report = run_churn_scale_bench_with(&config);
        let dir = std::env::temp_dir().join("orchestra-bench-scale-test");
        let path = dir.join("BENCH_churn_scale.json");
        write_churn_scale_json(&path, &report).unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let metrics = doc.as_object().unwrap().get("metrics").unwrap().as_object().unwrap();
        let service = metrics.get("service").unwrap().as_object().unwrap();
        let counters = service.get("counters").unwrap().as_object().unwrap();
        assert!(counters.get("service.requests").unwrap().as_u64().unwrap() > 0);
        assert!(service
            .get("histograms")
            .unwrap()
            .as_object()
            .unwrap()
            .get("service.batch_frames")
            .unwrap()
            .as_object()
            .unwrap()
            .contains_key("p99"));
        let fabric = metrics.get("fabric").unwrap().as_object().unwrap();
        let fabric_counters = fabric.get("counters").unwrap().as_object().unwrap();
        assert!(fabric_counters.contains_key("service.requests{shard=0}"));
        // The fabric rows carry the per-shard shed counts too.
        let rows = doc.as_object().unwrap().get("rows").unwrap().as_array().unwrap();
        assert!(rows[3].as_object().unwrap().get("shard_busy").unwrap().as_array().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn captured_fabric_traces_parse_and_name_every_shard() {
        let mut config = ScaleConfig::quick();
        config.participants = 8;
        config.rounds = 1;
        config.service_max_open_sessions = 8;
        let trace = capture_fabric_trace(&config);
        let events = orchestra_obs::export::parse_text(&trace).unwrap();
        assert!(!events.is_empty());
        // Per-shard service events are stamped with their shard.
        for shard in 0..config.fabric_shards as u64 {
            assert!(
                events
                    .iter()
                    .any(|e| e.fields.iter().any(|(k, v)| k.as_str() == "shard" && *v == shard)),
                "no event stamped shard={shard}"
            );
        }
        // Captures are deterministic: the virtual clock stamps them.
        assert_eq!(trace, capture_fabric_trace(&config));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).map(|v| v * 1_000).collect();
        assert!((percentile_ms(&sorted, 0.50) - 50.0).abs() < 1.5);
        assert!((percentile_ms(&sorted, 0.99) - 99.0).abs() < 1.5);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
    }
}
