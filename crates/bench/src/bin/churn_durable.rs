//! Runs the durable-churn benchmark (WAL-on vs ephemeral store overhead,
//! recovery latency vs log length, and the crash-restart scenario) and
//! writes the benchmark-trajectory document.
//!
//! Usage:
//!
//! ```text
//! churn_durable [--full] [--out FILE]
//! ```
//!
//! The default output path is `BENCH_churn_durable.json` in the current
//! directory.

use orchestra_bench::{
    render_table, run_churn_durable_bench, write_churn_durable_json, FigureScale,
};
use std::path::PathBuf;

fn main() {
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("BENCH_churn_durable.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--help" | "-h" => {
                println!("usage: churn_durable [--full] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run_churn_durable_bench(scale);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.codec.clone(),
                format!("{}", r.segments),
                format!("{}", r.reconciliations),
                format!("{}", r.epochs),
                format!("{:.4}", r.store_seconds),
                format!("{:.4}", r.wall_seconds),
                format!("{}", r.wal_records),
                format!("{}", r.wal_bytes),
                format!("{}/{}/{}", r.accepted, r.rejected, r.deferred),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Durable churn: ephemeral vs WAL-backed store",
            &[
                "mode",
                "codec",
                "segs",
                "recons",
                "epochs",
                "store s",
                "wall s",
                "wal recs",
                "wal bytes",
                "acc/rej/def"
            ],
            &rows,
        )
    );
    let recovery_rows: Vec<Vec<String>> = report
        .recovery
        .iter()
        .map(|r| {
            vec![
                r.codec.clone(),
                format!("{}", r.rounds),
                format!("{}", r.epochs),
                format!("{}", r.segments),
                format!("{}", r.wal_records),
                format!("{:.2}", r.replay_ms),
                format!("{:.2}", r.decode_ms),
                format!("{:.2}", r.snapshot_ms),
                format!("{}", r.snapshot_bytes),
                format!("{}", r.recovered_identical),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Recovery latency vs log length",
            &[
                "codec",
                "rounds",
                "epochs",
                "segs",
                "wal recs",
                "replay ms",
                "decode ms",
                "snapshot ms",
                "snap bytes",
                "identical"
            ],
            &recovery_rows,
        )
    );
    let stress_rows: Vec<Vec<String>> = report
        .commit_stress
        .iter()
        .map(|r| {
            vec![
                r.layout.clone(),
                format!("{}", r.threads),
                format!("{}", r.commits),
                format!("{:.3}", r.wall_seconds),
                format!("{:.0}", r.commits_per_second),
                format!("{}", r.segments),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Parallel durable commits (fsync per append)",
            &["layout", "threads", "commits", "wall s", "commits/s", "segs"],
            &stress_rows,
        )
    );
    println!(
        "wal wall overhead: {:.2}x   replay speedup (binary vs json): {:.2}x   codec decode speedup: {:.2}x   wal shrink: {:.2}x",
        report.summary.wal_wall_overhead,
        report.summary.replay_speedup,
        report.summary.codec_decode_speedup,
        report.summary.wal_shrink,
    );
    println!(
        "commit scaling (per-shard vs single): {:.2}x   snapshot recovery ratio: {:.2}x   decisions match: {}   crash-restart match: {}",
        report.summary.commit_scaling,
        report.summary.snapshot_recovery_ratio,
        report.summary.decisions_match,
        report.summary.crash_restart_decisions_match
    );
    if !report.summary.decisions_match || !report.summary.crash_restart_decisions_match {
        eprintln!("FATAL: durability changed decisions or recovery diverged");
        std::process::exit(1);
    }
    write_churn_durable_json(&out, &report).expect("write benchmark JSON");
    println!("wrote {}", out.display());
}
