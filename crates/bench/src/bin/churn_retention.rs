//! Runs the retention benchmark (KeepAll versus ConvergedOnly pruning over
//! the same churn schedule) and writes the benchmark-trajectory document.
//!
//! Usage:
//!
//! ```text
//! churn_retention [--full] [--out FILE]
//! ```
//!
//! The default output path is `BENCH_churn_retention.json` in the current
//! directory.

use orchestra_bench::{
    render_table, run_churn_retention_bench, write_churn_retention_json, FigureScale,
};
use std::path::PathBuf;

fn main() {
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("BENCH_churn_retention.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--help" | "-h" => {
                println!("usage: churn_retention [--full] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run_churn_retention_bench(scale);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{}", r.total_published),
                format!("{}", r.mid_live_set),
                format!("{}", r.final_live_set),
                format!("{}", r.peak_live_set),
                format!("{}", r.prunes),
                format!("{}", r.pruned_log_entries),
                format!("{:.3}", r.wall_seconds),
                format!("{}/{}/{}", r.accepted, r.rejected, r.deferred),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Retention: KeepAll vs ConvergedOnly live set",
            &[
                "mode",
                "published",
                "mid live",
                "final live",
                "peak live",
                "prunes",
                "pruned",
                "wall s",
                "acc/rej/def"
            ],
            &rows,
        )
    );
    println!(
        "live-set speedup: {:.2}x   bounded: {}   wall ratio: {:.2}x   decisions match: {}",
        report.summary.live_set_speedup,
        report.summary.live_set_bounded,
        report.summary.wall_ratio,
        report.summary.decisions_match
    );
    if !report.summary.decisions_match {
        eprintln!("FATAL: retention policies disagreed on decisions");
        std::process::exit(1);
    }
    if !report.summary.live_set_bounded {
        eprintln!("FATAL: the ConvergedOnly live set kept growing with history");
        std::process::exit(1);
    }
    write_churn_retention_json(&out, &report).expect("write benchmark JSON");
    println!("wrote {}", out.display());
}
