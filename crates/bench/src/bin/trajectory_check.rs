//! The benchmark-trajectory regression gate.
//!
//! Compares freshly generated `BENCH_*.json` documents against the copies
//! committed to the repository and fails (exit code 1) if the fresh run
//! regressed:
//!
//! * any `decisions_match` (or `*_decisions_match`) flag anywhere in a fresh
//!   document is `false` — the perf machinery is only trusted while every
//!   mode/driver/recovery path reaches identical decisions;
//! * any numeric `summary` field whose name ends in `speedup` dropped more
//!   than the tolerance (default 25%) below the committed value. Ratios are
//!   compared rather than absolute times, so the gate is meaningful across
//!   hosts of different speeds;
//! * any leaf key under a committed document's `metrics` section (metric
//!   names and histogram quantiles from the observability registry) is
//!   missing from the fresh document — instrumentation coverage may grow
//!   but never silently shrink.
//!
//! Usage:
//!
//! ```text
//! trajectory_check --fresh DIR --committed DIR [--tolerance 0.25]
//! ```
//!
//! Every `BENCH_*.json` present in the committed directory must exist in the
//! fresh directory (a missing fresh file is itself a failure: a bench bin
//! that stopped producing its document would otherwise silently drop out of
//! the gate).

use std::path::PathBuf;

fn main() {
    let mut fresh_dir = PathBuf::new();
    let mut committed_dir = PathBuf::new();
    let mut tolerance = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => fresh_dir = PathBuf::from(args.next().expect("--fresh DIR")),
            "--committed" => committed_dir = PathBuf::from(args.next().expect("--committed DIR")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance FRACTION")
                    .parse()
                    .expect("tolerance parses as f64")
            }
            "--help" | "-h" => {
                println!("usage: trajectory_check --fresh DIR --committed DIR [--tolerance 0.25]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if fresh_dir.as_os_str().is_empty() || committed_dir.as_os_str().is_empty() {
        eprintln!("usage: trajectory_check --fresh DIR --committed DIR [--tolerance 0.25]");
        std::process::exit(2);
    }

    match orchestra_bench::trajectory::check_trajectory(&fresh_dir, &committed_dir, tolerance) {
        Ok(report) => {
            print!("{report}");
            if report.failed() {
                eprintln!("trajectory regression detected");
                std::process::exit(1);
            }
            println!("trajectory OK ({} document(s) checked)", report.documents);
        }
        Err(e) => {
            eprintln!("trajectory check could not run: {e}");
            std::process::exit(1);
        }
    }
}
