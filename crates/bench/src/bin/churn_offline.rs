//! Runs the offline-churn benchmark (scalar versus causal epoch mode, a
//! partitioned causal run with heal, and the concurrent-publish
//! microbenchmark) and writes the benchmark-trajectory document.
//!
//! Usage:
//!
//! ```text
//! churn_offline [--full] [--out FILE]
//! ```
//!
//! The default output path is `BENCH_churn_offline.json` in the current
//! directory.

use orchestra_bench::{
    render_table, run_churn_offline_bench, write_churn_offline_json, FigureScale,
};
use std::path::PathBuf;

fn main() {
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("BENCH_churn_offline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--help" | "-h" => {
                println!("usage: churn_offline [--full] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run_churn_offline_bench(scale);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{}", r.publishes),
                format!("{}/{}/{}", r.accepted, r.rejected, r.deferred),
                format!("{:.3}", r.state_ratio),
                format!("{}", r.partitions),
                format!("{}", r.healed_batches),
                format!("{}", r.final_epoch),
                format!("{}", r.convergence_horizon),
                format!("{:.3}", r.wall_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Offline churn: scalar vs causal epochs, partition and heal",
            &[
                "mode",
                "publishes",
                "acc/rej/def",
                "ratio",
                "partitions",
                "healed",
                "stable",
                "horizon",
                "wall s"
            ],
            &rows,
        )
    );
    println!(
        "decisions match: {}   converged after heal: {}   publish concurrency speedup: {:.2}x \
         (scalar {:.3}s vs causal {:.3}s)",
        report.summary.decisions_match,
        report.summary.converged_after_heal,
        report.summary.publish_concurrency_speedup,
        report.summary.scalar_publish_wall_seconds,
        report.summary.causal_publish_wall_seconds,
    );
    if !report.summary.decisions_match {
        eprintln!("FATAL: epoch modes disagreed on decisions over the same schedule");
        std::process::exit(1);
    }
    if !report.summary.converged_after_heal {
        eprintln!("FATAL: the partitioned run did not converge after healing");
        std::process::exit(1);
    }
    write_churn_offline_json(&out, &report).expect("write benchmark JSON");
    println!("wrote {}", out.display());
}
