//! Runs the concurrent-churn benchmark (parallel confederation driver versus
//! the sequential one against one shared store) and writes the
//! benchmark-trajectory document.
//!
//! Usage:
//!
//! ```text
//! churn_parallel [--full] [--out FILE]
//! ```
//!
//! The default output path is `BENCH_churn_parallel.json` in the current
//! directory.

use orchestra_bench::{
    render_table, run_churn_parallel_bench, write_churn_parallel_json, FigureScale,
};
use std::path::PathBuf;

fn main() {
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("BENCH_churn_parallel.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--help" | "-h" => {
                println!("usage: churn_parallel [--full] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run_churn_parallel_bench(scale);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.driver.clone(),
                format!("{}", r.reconciliations),
                format!("{:.4}", r.reconcile_wall_seconds),
                format!("{:.4}", r.total_wall_seconds),
                format!("{:.4}", r.store_seconds),
                format!("{:.4}", r.local_seconds),
                format!("{}/{}/{}", r.accepted, r.rejected, r.deferred),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Concurrent churn: sequential vs parallel confederation driver",
            &[
                "driver",
                "recons",
                "recon wall s",
                "total wall s",
                "store s",
                "local s",
                "acc/rej/def"
            ],
            &rows,
        )
    );
    println!(
        "reconcile-wall speedup: {:.2}x   total-wall speedup: {:.2}x   decisions match: {}   \
         ({} participants, {} µs simulated store latency, {} hw threads)",
        report.summary.reconcile_wall_speedup,
        report.summary.total_wall_speedup,
        report.summary.decisions_match,
        report.summary.participants,
        report.summary.simulated_store_latency_us,
        report.summary.available_parallelism,
    );
    if !report.summary.decisions_match {
        eprintln!("FATAL: drivers disagreed on decisions");
        std::process::exit(1);
    }
    if report.summary.reconcile_wall_speedup <= 1.0 {
        eprintln!("WARNING: parallel driver showed no reconcile-wall speedup");
    }
    write_churn_parallel_json(&out, &report).expect("write benchmark JSON");
    println!("wrote {}", out.display());
}
