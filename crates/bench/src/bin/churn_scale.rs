//! Runs the confederation-scale service benchmark (store-service and
//! sharded-fabric drivers versus thread-per-participant and sequential
//! drivers) and writes the benchmark-trajectory document.
//!
//! Usage:
//!
//! ```text
//! churn_scale [--full] [--out FILE] [--trace FILE]
//! ```
//!
//! The default output path is `BENCH_churn_scale.json` in the current
//! directory. `--full` runs the committed trajectory scale (4096
//! participants across a 4-shard fabric, ≈ 213k published updates).
//! `--trace FILE` additionally reruns the fabric driver with tracing
//! enabled and writes the captured trace (v1 text format, stamped by the
//! virtual clock) for `trace_dump` to render.

use orchestra_bench::{
    capture_fabric_trace, churn_scale_config, render_table, run_churn_scale_bench,
    write_churn_scale_json, FigureScale,
};
use std::path::PathBuf;

fn main() {
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("BENCH_churn_scale.json");
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--trace" => {
                if let Some(path) = args.next() {
                    trace_out = Some(PathBuf::from(path));
                }
            }
            "--help" | "-h" => {
                println!("usage: churn_scale [--full] [--out FILE] [--trace FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run_churn_scale_bench(scale);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.driver.clone(),
                format!("{}", r.sessions),
                format!("{}", r.updates),
                format!("{:.4}", r.reconcile_wall_seconds),
                format!("{:.4}", r.total_wall_seconds),
                format!("{}", r.requests),
                format!("{}", r.busy_rejections),
                r.decision_fingerprint.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Churn at confederation scale: sequential vs threads vs service vs fabric",
            &[
                "driver",
                "sessions",
                "updates",
                "recon wall s",
                "total wall s",
                "requests",
                "busy",
                "fingerprint"
            ],
            &rows,
        )
    );
    println!(
        "service {:.0} req/s, session latency p50 {:.1} ms / p99 {:.1} ms (virtual), \
         reconcile throughput service {:.0} vs threads {:.0} sessions/s ({:.2}x), \
         batching {:.1} frames/wake-up, {} Begins shed, decisions match: {}",
        report.summary.requests_per_second,
        report.summary.session_p50_ms,
        report.summary.session_p99_ms,
        report.summary.service_sessions_per_second,
        report.summary.threads_sessions_per_second,
        report.summary.service_vs_threads_reconcile_ratio,
        report.summary.batching_factor,
        report.summary.busy_rejections,
        report.summary.decisions_match,
    );
    println!(
        "fabric ({} shards) {:.0} req/s, session latency p50 {:.1} ms / p99 {:.1} ms (virtual), \
         {:.0} sessions/s, shard frames {:?}, shard sheds {:?}",
        report.summary.fabric_shards,
        report.summary.fabric_requests_per_second,
        report.summary.fabric_p50_ms,
        report.summary.fabric_p99_ms,
        report.summary.fabric_sessions_per_second,
        report.summary.fabric_shard_frames,
        report.summary.fabric_shard_busy,
    );
    if !report.summary.decisions_match {
        eprintln!("FATAL: drivers disagreed on decisions");
        std::process::exit(1);
    }
    if report.summary.service_vs_threads_reconcile_ratio < 1.0 {
        eprintln!("WARNING: service driver fell below thread-per-participant throughput");
    }
    write_churn_scale_json(&out, &report).expect("write benchmark JSON");
    println!("wrote {}", out.display());
    if let Some(trace_path) = trace_out {
        let trace = capture_fabric_trace(&churn_scale_config(scale));
        if let Some(parent) = trace_path.parent() {
            std::fs::create_dir_all(parent).expect("create trace directory");
        }
        std::fs::write(&trace_path, trace).expect("write fabric trace");
        println!("wrote {}", trace_path.display());
    }
}
