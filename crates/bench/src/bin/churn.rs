//! Runs the churn benchmark (incremental cursor-based retrieval versus the
//! full-log rescan baseline) and writes the benchmark-trajectory document.
//!
//! Usage:
//!
//! ```text
//! churn [--full] [--out FILE]
//! ```
//!
//! The default output path is `BENCH_churn.json` in the current directory —
//! the first entry of the repository's benchmark trajectory.

use orchestra_bench::{render_table, run_churn_bench, write_churn_json, FigureScale};
use std::path::PathBuf;

fn main() {
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("BENCH_churn.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--help" | "-h" => {
                println!("usage: churn [--full] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = run_churn_bench(scale);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{}", r.reconciliations),
                format!("{}", r.epochs),
                format!("{:.4}", r.store_seconds),
                format!("{:.1}", r.early_store_micros_per_epoch),
                format!("{:.1}", r.late_store_micros_per_epoch),
                format!("{}/{}/{}", r.accepted, r.rejected, r.deferred),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Churn: incremental vs rescan-baseline retrieval",
            &[
                "mode",
                "recons",
                "epochs",
                "store s",
                "early us/epoch",
                "late us/epoch",
                "acc/rej/def"
            ],
            &rows,
        )
    );
    println!(
        "store speedup: {:.2}x   late per-epoch speedup: {:.2}x   decisions match: {}",
        report.summary.store_speedup,
        report.summary.late_per_epoch_speedup,
        report.summary.decisions_match
    );
    if !report.summary.decisions_match {
        eprintln!("FATAL: retrieval modes disagreed on decisions");
        std::process::exit(1);
    }
    write_churn_json(&out, &report).expect("write benchmark JSON");
    println!("wrote {}", out.display());
}
