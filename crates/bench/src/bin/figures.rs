//! Regenerates every figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! figures [--fig N]... [--full] [--out DIR]
//! ```
//!
//! With no `--fig` arguments, every figure is regenerated. `--full` uses the
//! paper's parameter ranges (slower); the default "quick" scale finishes in a
//! few seconds. CSV and JSON output is written under `--out` (default
//! `target/figures`); the `fig*.json` documents are the machine-readable
//! benchmark trajectory.

use orchestra_bench::{
    fig08_transaction_size, fig09_recon_interval_ratio, fig10_recon_interval_time,
    fig11_participants_ratio, fig12_participants_time, render_table, write_csv, write_json,
    FigureScale,
};
use std::path::PathBuf;

struct Args {
    figures: Vec<u32>,
    scale: FigureScale,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut figures = Vec::new();
    let mut scale = FigureScale::Quick;
    let mut out = PathBuf::from("target/figures");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    figures.push(n);
                }
            }
            "--full" => scale = FigureScale::Full,
            "--out" => {
                if let Some(dir) = args.next() {
                    out = PathBuf::from(dir);
                }
            }
            "--help" | "-h" => {
                println!("usage: figures [--fig N]... [--full] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures = vec![8, 9, 10, 11, 12];
    }
    Args { figures, scale, out }
}

fn main() {
    let args = parse_args();
    for fig in &args.figures {
        match fig {
            8 => {
                let rows = fig08_transaction_size(args.scale);
                let table = render_table(
                    "Figure 8: transaction size vs. state ratio (10 peers, constant updates per reconciliation)",
                    &["txn_size", "txns/recon", "state_ratio"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.transaction_size.to_string(),
                                r.transactions_per_reconciliation.to_string(),
                                format!("{:.3}", r.state_ratio),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                println!("{table}");
                write_csv(&args.out.join("fig08.csv"), &rows).expect("write fig08.csv");
                write_json(&args.out.join("fig08.json"), "fig08", &rows).expect("write fig08.json");
            }
            9 => {
                let rows = fig09_recon_interval_ratio(args.scale);
                let table = render_table(
                    "Figure 9: reconciliation interval vs. state ratio (10 peers, txn size 1)",
                    &["interval", "state_ratio"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.reconciliation_interval.to_string(),
                                format!("{:.3}", r.state_ratio),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                println!("{table}");
                write_csv(&args.out.join("fig09.csv"), &rows).expect("write fig09.csv");
                write_json(&args.out.join("fig09.json"), "fig09", &rows).expect("write fig09.json");
            }
            10 => {
                let rows = fig10_recon_interval_time(args.scale);
                let table = render_table(
                    "Figure 10: reconciliation interval vs. total reconciliation time per participant",
                    &["interval", "store", "store_time_s", "local_time_s"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.reconciliation_interval.to_string(),
                                r.store_kind.clone(),
                                format!("{:.6}", r.store_time_secs),
                                format!("{:.6}", r.local_time_secs),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                println!("{table}");
                write_csv(&args.out.join("fig10.csv"), &rows).expect("write fig10.csv");
                write_json(&args.out.join("fig10.json"), "fig10", &rows).expect("write fig10.json");
            }
            11 => {
                let rows = fig11_participants_ratio(args.scale);
                let table = render_table(
                    "Figure 11: number of participants vs. state ratio",
                    &["participants", "state_ratio"],
                    &rows
                        .iter()
                        .map(|r| vec![r.participants.to_string(), format!("{:.3}", r.state_ratio)])
                        .collect::<Vec<_>>(),
                );
                println!("{table}");
                write_csv(&args.out.join("fig11.csv"), &rows).expect("write fig11.csv");
                write_json(&args.out.join("fig11.json"), "fig11", &rows).expect("write fig11.json");
            }
            12 => {
                let rows = fig12_participants_time(args.scale);
                let table = render_table(
                    "Figure 12: number of participants vs. average time per reconciliation",
                    &["participants", "store", "store_time_s", "local_time_s"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.participants.to_string(),
                                r.store_kind.clone(),
                                format!("{:.6}", r.store_time_secs),
                                format!("{:.6}", r.local_time_secs),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                println!("{table}");
                write_csv(&args.out.join("fig12.csv"), &rows).expect("write fig12.csv");
                write_json(&args.out.join("fig12.json"), "fig12", &rows).expect("write fig12.json");
            }
            other => eprintln!("unknown figure {other}; available: 8, 9, 10, 11, 12"),
        }
    }
}
